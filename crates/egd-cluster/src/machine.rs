//! Machine descriptions of the paper's target systems.
//!
//! The constants come from §VI of the paper and the cited Blue Gene hardware
//! papers: Blue Gene/Q nodes have 16 compute cores with 4 hardware threads
//! each, 16 GB of memory, a 204.8 GFlop/s peak and a 5-D torus at 32 GB/s;
//! Blue Gene/P nodes have 4 cores, 2–4 GB of memory and a 3-D torus, with the
//! machine used in the paper scaling to 294,912 cores (72 racks).

use crate::network::{CollectiveNetwork, TorusNetwork};
use serde::{Deserialize, Serialize};

/// Description of a (simulated) parallel machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: String,
    /// Compute cores per node.
    pub cores_per_node: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Memory per node in GiB.
    pub memory_per_node_gib: f64,
    /// Peak node performance in GFlop/s (used only for reporting).
    pub peak_gflops_per_node: f64,
    /// Relative serial compute speed of one core (1.0 = the calibration
    /// machine). Blue Gene cores are slow embedded cores, so both presets use
    /// a value below 1.
    pub core_speed_factor: f64,
    /// The torus interconnect used for point-to-point messages.
    pub torus: TorusNetwork,
    /// The collective network used for broadcasts / reductions.
    pub collective: CollectiveNetwork,
    /// Largest number of processors (cores) the paper used on this machine.
    pub max_processors: usize,
}

impl MachineSpec {
    /// IBM Blue Gene/P (the 294,912-core system of the large-scale runs).
    pub fn blue_gene_p() -> Self {
        MachineSpec {
            name: "IBM Blue Gene/P".to_string(),
            cores_per_node: 4,
            threads_per_core: 1,
            memory_per_node_gib: 2.0,
            peak_gflops_per_node: 13.6,
            core_speed_factor: 0.45,
            torus: TorusNetwork::new(vec![72, 32, 32], 0.425, 3.5),
            collective: CollectiveNetwork::new(0.85, 2.5),
            max_processors: 294_912,
        }
    }

    /// IBM Blue Gene/Q (512-node / 16,384-task configuration of the paper).
    pub fn blue_gene_q() -> Self {
        MachineSpec {
            name: "IBM Blue Gene/Q".to_string(),
            cores_per_node: 16,
            threads_per_core: 4,
            memory_per_node_gib: 16.0,
            peak_gflops_per_node: 204.8,
            core_speed_factor: 0.6,
            torus: TorusNetwork::new(vec![8, 8, 8, 8, 2], 2.0, 0.6),
            collective: CollectiveNetwork::new(2.0, 1.2),
            max_processors: 16_384,
        }
    }

    /// A generic commodity cluster preset, useful for what-if studies.
    pub fn commodity_cluster(nodes_per_dim: u32) -> Self {
        MachineSpec {
            name: "Commodity cluster".to_string(),
            cores_per_node: 32,
            threads_per_core: 2,
            memory_per_node_gib: 128.0,
            peak_gflops_per_node: 1500.0,
            core_speed_factor: 1.0,
            torus: TorusNetwork::new(vec![nodes_per_dim, nodes_per_dim, nodes_per_dim], 1.5, 1.0),
            collective: CollectiveNetwork::new(1.0, 5.0),
            max_processors: (nodes_per_dim as usize).pow(3) * 32,
        }
    }

    /// Hardware threads per node.
    pub fn threads_per_node(&self) -> u32 {
        self.cores_per_node * self.threads_per_core
    }

    /// Total number of nodes implied by the torus dimensions.
    pub fn num_nodes(&self) -> usize {
        self.torus.num_nodes()
    }

    /// Total number of cores in the full machine.
    pub fn total_cores(&self) -> usize {
        self.num_nodes() * self.cores_per_node as usize
    }

    /// Memory available per MPI rank, given `ranks_per_node`, in GiB.
    pub fn memory_per_rank_gib(&self, ranks_per_node: u32) -> f64 {
        self.memory_per_node_gib / ranks_per_node.max(1) as f64
    }

    /// Estimates whether a per-rank strategy view of `num_ssets` memory-`n`
    /// strategies fits into a rank's memory (the constraint that capped the
    /// paper at memory-six). The estimate counts `4^n` bits per strategy plus
    /// bookkeeping overhead.
    pub fn strategy_view_fits(
        &self,
        num_ssets: usize,
        num_states: usize,
        ranks_per_node: u32,
    ) -> bool {
        let bytes_per_strategy = num_states.div_ceil(8) + 64;
        let view_bytes = num_ssets as f64 * bytes_per_strategy as f64;
        let budget = self.memory_per_rank_gib(ranks_per_node) * 0.8 * 1024.0 * 1024.0 * 1024.0;
        view_bytes <= budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blue_gene_p_shape() {
        let bgp = MachineSpec::blue_gene_p();
        assert_eq!(bgp.cores_per_node, 4);
        assert_eq!(bgp.threads_per_node(), 4);
        assert_eq!(bgp.torus.dimensions().len(), 3);
        // 72 racks * 1024 nodes = 73,728 nodes = 294,912 cores.
        assert_eq!(bgp.num_nodes(), 72 * 32 * 32);
        assert_eq!(bgp.total_cores(), 294_912);
        assert_eq!(bgp.max_processors, 294_912);
    }

    #[test]
    fn blue_gene_q_shape() {
        let bgq = MachineSpec::blue_gene_q();
        assert_eq!(bgq.cores_per_node, 16);
        assert_eq!(bgq.threads_per_core, 4);
        assert_eq!(bgq.threads_per_node(), 64);
        assert_eq!(bgq.torus.dimensions().len(), 5);
        assert_eq!(bgq.memory_per_node_gib, 16.0);
    }

    #[test]
    fn memory_per_rank_divides_node_memory() {
        let bgq = MachineSpec::blue_gene_q();
        assert_eq!(bgq.memory_per_rank_gib(32), 0.5);
        assert_eq!(bgq.memory_per_rank_gib(1), 16.0);
        assert_eq!(bgq.memory_per_rank_gib(0), 16.0);
    }

    #[test]
    fn memory_six_fits_but_not_absurd_views() {
        let bgq = MachineSpec::blue_gene_q();
        // 4,096 SSets per rank at memory six (4096 states) easily fits.
        assert!(bgq.strategy_view_fits(4_096, 4_096, 32));
        // A billion SSets of memory-six strategies per rank does not.
        assert!(!bgq.strategy_view_fits(1_000_000_000, 4_096, 32));
    }

    #[test]
    fn commodity_cluster_is_configurable() {
        let cluster = MachineSpec::commodity_cluster(4);
        assert_eq!(cluster.num_nodes(), 64);
        assert_eq!(cluster.total_cores(), 64 * 32);
        assert_eq!(cluster.core_speed_factor, 1.0);
    }
}
