//! An in-process message-passing communicator with cooperative ranks.
//!
//! [`SimWorld::run`] executes one *task* per simulated rank — not one OS
//! thread — and gives each a [`Communicator`] with the primitives the paper's
//! MPI code uses: point-to-point send/receive (the non-blocking fitness
//! returns along the torus), root broadcasts (the collective-network
//! `MPI_Bcast` of PC selections, mutations and strategy updates), gather,
//! all-reduce and barriers. Payloads are serialised with serde so any message
//! type can be exchanged.
//!
//! Rank bodies are `async`: a blocking receive is an `.await` that parks the
//! *task* (registering a waker with the rank's mailbox), never a pool
//! thread, so a small fixed worker pool ([`SimWorld::workers`], default =
//! available parallelism) multiplexes worlds of 10³–10⁴ ranks — the regime
//! the retired thread-per-rank backend could not reach. The executor behind
//! this is [`crate::taskexec`]; it reports panics with the failing rank's
//! index and payload and detects protocol deadlocks instead of hanging.
//!
//! The communicator preserves the *communication pattern* of the paper
//! exactly; the transport is in-memory mailboxes instead of a torus, which is
//! why wall-clock communication costs are charged separately by the cost
//! model in [`crate::cost`] rather than measured here.

use crate::taskexec::{self, ExecError};
use egd_core::error::{EgdError, EgdResult};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::VecDeque;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Poll, Waker};

/// A tagged, serialised message between ranks.
#[derive(Debug, Clone)]
struct Packet {
    from: usize,
    tag: u64,
    payload: Vec<u8>,
}

/// Statistics of the traffic a communicator generated.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Number of point-to-point messages sent.
    pub p2p_messages: AtomicU64,
    /// Total point-to-point payload bytes.
    pub p2p_bytes: AtomicU64,
    /// Number of broadcast operations initiated (counted once per root call).
    pub broadcasts: AtomicU64,
    /// Total broadcast payload bytes (per operation, not per recipient).
    pub broadcast_bytes: AtomicU64,
    /// Number of barrier operations.
    pub barriers: AtomicU64,
}

impl TrafficStats {
    /// Snapshot of the counters as plain numbers
    /// `(p2p msgs, p2p bytes, broadcasts, broadcast bytes, barriers)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.p2p_messages.load(Ordering::Relaxed),
            self.p2p_bytes.load(Ordering::Relaxed),
            self.broadcasts.load(Ordering::Relaxed),
            self.broadcast_bytes.load(Ordering::Relaxed),
            self.barriers.load(Ordering::Relaxed),
        )
    }
}

/// One rank's inbox: arrived packets plus the waker of a receive awaiting a
/// match. Everything sits under a single lock so a send can never slip
/// between "receiver found nothing" and "receiver registered its waker".
#[derive(Debug, Default)]
struct MailboxInner {
    queue: VecDeque<Packet>,
    waker: Option<Waker>,
    /// Set when the owning rank's task has completed: later sends error,
    /// mirroring the channel-disconnect semantics of the retired
    /// thread-per-rank transport.
    closed: bool,
}

#[derive(Debug, Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
}

/// Mailboxes of every rank in a world.
#[derive(Debug)]
struct WorldShared {
    mailboxes: Vec<Mailbox>,
}

impl WorldShared {
    /// Delivers a packet to `dest` and wakes its task if it is waiting.
    fn deliver(&self, dest: usize, packet: Packet) -> EgdResult<()> {
        let waker = {
            let mut inner = self.mailboxes[dest].inner.lock().expect("mailbox poisoned");
            if inner.closed {
                return Err(EgdError::Communication {
                    reason: format!("rank {dest} has completed"),
                });
            }
            inner.queue.push_back(packet);
            inner.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        Ok(())
    }

    /// Marks `rank`'s mailbox closed (its task completed).
    fn close(&self, rank: usize) {
        self.mailboxes[rank]
            .inner
            .lock()
            .expect("mailbox poisoned")
            .closed = true;
    }
}

/// The per-rank endpoint of the simulated communicator.
pub struct Communicator {
    rank: usize,
    size: usize,
    shared: Arc<WorldShared>,
    /// Messages received while waiting for a different `(from, tag)`.
    pending: VecDeque<Packet>,
    stats: Arc<TrafficStats>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

impl Communicator {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Shared traffic statistics of the whole world.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    fn serialize<T: Serialize>(value: &T) -> EgdResult<Vec<u8>> {
        serde_json::to_vec(value).map_err(|e| EgdError::Communication {
            reason: format!("serialisation failed: {e}"),
        })
    }

    fn deserialize<T: DeserializeOwned>(bytes: &[u8]) -> EgdResult<T> {
        serde_json::from_slice(bytes).map_err(|e| EgdError::Communication {
            reason: format!("deserialisation failed: {e}"),
        })
    }

    /// Sends `value` to `dest` with `tag`. Non-blocking (the paper's
    /// `MPI_Isend` of fitness values): the call only enqueues the message.
    pub fn send<T: Serialize>(&self, dest: usize, tag: u64, value: &T) -> EgdResult<()> {
        if dest >= self.size {
            return Err(EgdError::Communication {
                reason: format!("destination rank {dest} out of range (size {})", self.size),
            });
        }
        let payload = Self::serialize(value)?;
        self.stats.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .p2p_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.shared.deliver(
            dest,
            Packet {
                from: self.rank,
                tag,
                payload,
            },
        )
    }

    /// Receives the next message matching `from` and `tag`. Awaiting parks
    /// this rank's *task* (a cooperative yield), never a pool thread.
    pub async fn recv<T: DeserializeOwned>(&mut self, from: usize, tag: u64) -> EgdResult<T> {
        // First look through messages that arrived out of order.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|p| p.from == from && p.tag == tag)
        {
            let packet = self.pending.remove(pos).expect("position just found");
            return Self::deserialize(&packet.payload);
        }
        let Communicator {
            rank,
            shared,
            pending,
            ..
        } = self;
        let rank = *rank;
        let packet = std::future::poll_fn(|cx| {
            let mut inner = shared.mailboxes[rank]
                .inner
                .lock()
                .expect("mailbox poisoned");
            // Drain new arrivals, returning the first match and buffering the
            // rest for later receives.
            while let Some(packet) = inner.queue.pop_front() {
                if packet.from == from && packet.tag == tag {
                    return Poll::Ready(packet);
                }
                pending.push_back(packet);
            }
            // No match: register the waker *under the same lock* the sender
            // takes, so a concurrent send cannot slip past unnoticed.
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        })
        .await;
        Self::deserialize(&packet.payload)
    }

    /// Broadcast from `root`: the root passes `Some(value)`, every other rank
    /// passes `None` and receives the root's value. Mirrors `MPI_Bcast`.
    pub async fn broadcast<T: Serialize + DeserializeOwned + Clone>(
        &mut self,
        root: usize,
        value: Option<T>,
    ) -> EgdResult<T> {
        const BCAST_TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            let value = value.ok_or_else(|| EgdError::Communication {
                reason: "broadcast root must supply a value".to_string(),
            })?;
            let payload = Self::serialize(&value)?;
            self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
            self.stats
                .broadcast_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            for dest in 0..self.size {
                if dest == self.rank {
                    continue;
                }
                self.shared.deliver(
                    dest,
                    Packet {
                        from: root,
                        tag: BCAST_TAG,
                        payload: payload.clone(),
                    },
                )?;
            }
            Ok(value)
        } else {
            self.recv(root, BCAST_TAG).await
        }
    }

    /// Gather: every rank sends `value` to `root`; the root receives the
    /// values ordered by rank (its own value included), other ranks get an
    /// empty vector.
    pub async fn gather<T: Serialize + DeserializeOwned + Clone>(
        &mut self,
        root: usize,
        value: &T,
    ) -> EgdResult<Vec<T>> {
        const GATHER_TAG: u64 = u64::MAX - 2;
        if self.rank == root {
            let mut values = Vec::with_capacity(self.size);
            for from in 0..self.size {
                if from == self.rank {
                    values.push(value.clone());
                } else {
                    values.push(self.recv(from, GATHER_TAG).await?);
                }
            }
            Ok(values)
        } else {
            self.send(root, GATHER_TAG, value)?;
            Ok(Vec::new())
        }
    }

    /// All-reduce sum of a float vector: every rank contributes `values` and
    /// receives the element-wise sum across ranks.
    pub async fn allreduce_sum(&mut self, values: &[f64]) -> EgdResult<Vec<f64>> {
        let gathered = self.gather(0, &values.to_vec()).await?;
        let summed = if self.rank == 0 {
            let mut total = vec![0.0; values.len()];
            for contribution in &gathered {
                if contribution.len() != values.len() {
                    return Err(EgdError::Communication {
                        reason: "allreduce contributions have mismatched lengths".to_string(),
                    });
                }
                for (t, v) in total.iter_mut().zip(contribution) {
                    *t += v;
                }
            }
            Some(total)
        } else {
            None
        };
        self.broadcast(0, summed).await
    }

    /// Barrier: no rank leaves before every rank has entered.
    pub async fn barrier(&mut self) -> EgdResult<()> {
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        let token = 0u8;
        let _ = self.gather(0, &token).await?;
        let _ = self
            .broadcast(0, if self.rank == 0 { Some(token) } else { None })
            .await?;
        Ok(())
    }
}

/// The simulated world: schedules ranks as cooperative tasks and wires their
/// communicators.
#[derive(Debug, Clone, Copy)]
pub struct SimWorld {
    num_ranks: usize,
    workers: usize,
}

impl SimWorld {
    /// Creates a world of `num_ranks` simulated ranks.
    pub fn new(num_ranks: usize) -> EgdResult<Self> {
        if num_ranks == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "a world needs at least one rank".to_string(),
            });
        }
        Ok(SimWorld {
            num_ranks,
            workers: 0,
        })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Sets the worker-pool size multiplexing the rank tasks
    /// (`0` = available parallelism). Any rank count runs on any pool size —
    /// including thousands of ranks on a single worker, cooperatively.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// Runs `body` on every rank — each as a cooperatively scheduled task on
    /// the world's worker pool — and returns the per-rank results in rank
    /// order, plus the world's traffic statistics.
    ///
    /// If a rank body panics, the error names the rank and carries the panic
    /// payload; if the protocol deadlocks (a rank waits for a message nobody
    /// sends), the error names the blocked ranks instead of hanging.
    ///
    /// Rank bodies must only `.await` [`Communicator`] operations (or
    /// futures woken from within this world's tasks). The deadlock detector
    /// relies on every wake-up originating inside a rank's poll: a future
    /// woken by an *external* thread (timer, channel fed from outside the
    /// world) can be misreported as a protocol deadlock if every rank is
    /// simultaneously parked on one.
    pub fn run<T, F, Fut>(&self, body: F) -> EgdResult<(Vec<T>, Arc<TrafficStats>)>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> Fut,
        Fut: Future<Output = EgdResult<T>> + Send + 'static,
    {
        let stats = Arc::new(TrafficStats::default());
        let shared = Arc::new(WorldShared {
            mailboxes: (0..self.num_ranks).map(|_| Mailbox::default()).collect(),
        });
        let mut tasks: Vec<taskexec::TaskFuture<EgdResult<T>>> = Vec::with_capacity(self.num_ranks);
        for rank in 0..self.num_ranks {
            let comm = Communicator {
                rank,
                size: self.num_ranks,
                shared: Arc::clone(&shared),
                pending: VecDeque::new(),
                stats: Arc::clone(&stats),
            };
            let future = body(comm);
            let shared = Arc::clone(&shared);
            tasks.push(Box::pin(async move {
                let result = future.await;
                // Completed ranks stop accepting traffic, mirroring the old
                // channel-disconnect behaviour.
                shared.close(rank);
                result
            }));
        }

        let (results, fatal) = taskexec::run_tasks(self.effective_workers(), tasks);
        if let Some(error) = fatal {
            return Err(match error {
                ExecError::Panicked { task, message } => EgdError::Communication {
                    reason: format!("rank {task} panicked: {message}"),
                },
                ExecError::Stalled { waiting } => {
                    // A rank that failed early often strands its peers inside
                    // a collective: surface the root cause, not the symptom.
                    if let Some(root_cause) =
                        results.iter().flatten().find_map(|r| r.as_ref().err())
                    {
                        root_cause.clone()
                    } else {
                        EgdError::Communication {
                            reason: format!(
                                "protocol deadlock: ranks {waiting:?} are blocked waiting \
                                 for messages no rank will send"
                            ),
                        }
                    }
                }
            });
        }
        let mut out = Vec::with_capacity(self.num_ranks);
        for result in results {
            out.push(result.expect("completed world is missing a rank result")?);
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_validation() {
        assert!(SimWorld::new(0).is_err());
        assert_eq!(SimWorld::new(4).unwrap().num_ranks(), 4);
    }

    #[test]
    fn point_to_point_ring() {
        // Every rank sends its rank number to the next rank and checks what
        // it receives from the previous one.
        let world = SimWorld::new(5).unwrap();
        let (results, stats) = world
            .run(|mut comm| async move {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, 7, &comm.rank())?;
                let received: usize = comm.recv(prev, 7).await?;
                Ok(received)
            })
            .unwrap();
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
        let (p2p, bytes, _, _, _) = stats.snapshot();
        assert_eq!(p2p, 5);
        assert!(bytes > 0);
    }

    #[test]
    fn many_ranks_multiplex_on_one_worker() {
        // 128 ranks on a single pool thread: the ring can only complete if
        // blocked receives yield cooperatively instead of parking the worker.
        let world = SimWorld::new(128).unwrap().workers(1);
        let (results, _) = world
            .run(|mut comm| async move {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, 3, &comm.rank())?;
                let received: usize = comm.recv(prev, 3).await?;
                comm.barrier().await?;
                Ok(received)
            })
            .unwrap();
        assert_eq!(results.len(), 128);
        for (rank, received) in results.iter().enumerate() {
            assert_eq!(*received, (rank + 128 - 1) % 128);
        }
    }

    #[test]
    fn broadcast_delivers_root_value() {
        let world = SimWorld::new(6).unwrap();
        let (results, stats) = world
            .run(|mut comm| async move {
                let value = if comm.rank() == 2 {
                    Some(vec![1.0f64, 2.0, 3.0])
                } else {
                    None
                };
                comm.broadcast(2, value).await
            })
            .unwrap();
        for r in results {
            assert_eq!(r, vec![1.0, 2.0, 3.0]);
        }
        let (_, _, broadcasts, _, _) = stats.snapshot();
        assert_eq!(broadcasts, 1);
    }

    #[test]
    fn gather_orders_by_rank() {
        let world = SimWorld::new(4).unwrap();
        let (results, _) = world
            .run(|mut comm| async move {
                let value = comm.rank() * 10;
                comm.gather(0, &value).await
            })
            .unwrap();
        assert_eq!(results[0], vec![0, 10, 20, 30]);
        for r in &results[1..] {
            assert!(r.is_empty());
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let world = SimWorld::new(4).unwrap();
        let (results, _) = world
            .run(|mut comm| async move {
                let values = vec![comm.rank() as f64, 1.0];
                comm.allreduce_sum(&values).await
            })
            .unwrap();
        for r in results {
            assert_eq!(r, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn barrier_completes() {
        let world = SimWorld::new(8).unwrap();
        let (results, stats) = world
            .run(|mut comm| async move {
                comm.barrier().await?;
                comm.barrier().await?;
                Ok(comm.rank())
            })
            .unwrap();
        assert_eq!(results.len(), 8);
        let (_, _, _, _, barriers) = stats.snapshot();
        assert_eq!(barriers, 16);
    }

    #[test]
    fn out_of_order_messages_are_buffered() {
        // Rank 0 sends two differently-tagged messages; rank 1 receives them
        // in the opposite order.
        let world = SimWorld::new(2).unwrap();
        let (results, _) = world
            .run(|mut comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 1, &"first".to_string())?;
                    comm.send(1, 2, &"second".to_string())?;
                    Ok(("".to_string(), "".to_string()))
                } else {
                    let second: String = comm.recv(0, 2).await?;
                    let first: String = comm.recv(0, 1).await?;
                    Ok((first, second))
                }
            })
            .unwrap();
        assert_eq!(results[1], ("first".to_string(), "second".to_string()));
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let world = SimWorld::new(2).unwrap();
        let (results, _) = world
            .run(|comm| async move { Ok(comm.send(5, 0, &1u32).is_err()) })
            .unwrap();
        assert!(results.iter().all(|&r| r));
    }

    #[test]
    fn rank_panic_names_rank_and_payload() {
        let world = SimWorld::new(4).unwrap();
        let err = world
            .run(|comm| async move {
                if comm.rank() == 2 {
                    panic!("rank body exploded");
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("rank 2"), "{message}");
        assert!(message.contains("rank body exploded"), "{message}");
        // The pool is not poisoned: the same world value runs again cleanly.
        let (results, _) = world.run(|comm| async move { Ok(comm.rank()) }).unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn protocol_deadlock_is_detected_not_hung() {
        let world = SimWorld::new(3).unwrap();
        let err = world
            .run(|mut comm| async move {
                if comm.rank() == 0 {
                    // Waits for a message nobody sends.
                    let _: u32 = comm.recv(1, 999).await?;
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("deadlock"), "{message}");
        assert!(message.contains('0'), "{message}");
    }

    #[test]
    fn send_to_completed_rank_errors() {
        // Rank 1's body is empty, so its mailbox closes almost immediately;
        // rank 0 retries the send until it observes the closed-mailbox error.
        let world = SimWorld::new(2).unwrap().workers(2);
        let (results, _) = world
            .run(|comm| async move {
                if comm.rank() == 0 {
                    // Spin until rank 1's mailbox closes (its body is empty,
                    // so this terminates quickly).
                    loop {
                        match comm.send(1, 7, &1u32) {
                            Err(e) => {
                                return Ok(e.to_string().contains("completed"));
                            }
                            Ok(()) => std::thread::yield_now(),
                        }
                    }
                }
                Ok(true)
            })
            .unwrap();
        assert!(results[0]);
    }
}
