//! An in-process message-passing communicator with cooperative ranks.
//!
//! [`SimWorld::run`] executes one *task* per simulated rank — not one OS
//! thread — and gives each a [`Communicator`] with the primitives the paper's
//! MPI code uses: point-to-point send/receive (the non-blocking fitness
//! returns along the torus), root broadcasts (the collective-network
//! `MPI_Bcast` of PC selections, mutations and strategy updates), gather,
//! all-reduce and barriers. Payloads are serialised with serde so any message
//! type can be exchanged.
//!
//! Rank bodies are `async`: a blocking receive is an `.await` that parks the
//! *task* (registering a waker with the rank's mailbox), never a pool
//! thread, so a small fixed worker pool ([`SimWorld::workers`], default =
//! available parallelism) multiplexes worlds of 10³–10⁴ ranks — the regime
//! the retired thread-per-rank backend could not reach. The executor behind
//! this is [`crate::taskexec`]; it reports panics with the failing rank's
//! index and payload and detects protocol deadlocks instead of hanging.
//!
//! Collectives are **tree-structured** over the binomial tree of
//! [`crate::collective`] — the same shape the cost model's
//! [`crate::network::CollectiveNetwork`] prices. A broadcast walks the tree
//! root-down (every node forwards the root's `Arc`-shared payload to its
//! ≤ ⌈log₂ P⌉ children), a gather walks it leaves-up (every node merges its
//! children's contiguous virtual-rank segments and sends *one* message to
//! its parent), `allreduce_sum` is a gather whose root sums in strict rank
//! order (bit-identical to the sequential fold, independent of tree shape
//! and pool size) followed by a broadcast, and `barrier` is the
//! reduce + broadcast pair with empty payloads. The root of a collective
//! therefore touches `O(log P)` messages instead of `P - 1` — the retired
//! flat implementation queued `P - 1` packets in the root's mailbox and
//! re-scanned the unmatched queue per strictly rank-ordered `recv`,
//! quadratic head-of-line blocking that capped worlds near 10⁴ ranks.
//!
//! The communicator preserves the *communication pattern* of the paper
//! exactly; the transport is in-memory mailboxes instead of a torus, which is
//! why wall-clock communication costs are charged separately by the cost
//! model in [`crate::cost`] rather than measured here.
//!
//! ## Fault injection
//!
//! When an [`egd_fault`] injection session is armed, every delivery consults
//! the fault plan: a message can be silently dropped or held back for a
//! number of delivery ticks (released in per-channel FIFO order so a delayed
//! packet is never overtaken by a later one on the same `(from, dest)`
//! channel — tags are reused across generations, so overtaking would feed a
//! later generation's payload to an earlier receive). Packets are stamped
//! with the world's *epoch*; a supervisor that replays a run under a new
//! epoch is guaranteed that stragglers from the failed attempt are rejected
//! at the mailbox door. When no session is armed the entire machinery is one
//! relaxed atomic load on the delivery path.

use crate::collective;
use crate::taskexec::{self, ExecError};
use egd_core::error::{EgdError, EgdResult};
use egd_obs::{SpanKind, SpanTimer};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::VecDeque;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Poll, Waker};

/// Collective tags live at the top of the tag space, away from user tags.
const BCAST_TAG: u64 = u64::MAX - 1;
const GATHER_TAG: u64 = u64::MAX - 2;
const BARRIER_UP_TAG: u64 = u64::MAX - 3;
const BARRIER_DOWN_TAG: u64 = u64::MAX - 4;

/// A tagged, serialised message between ranks. The payload is reference
/// counted so a broadcast serialises its value once and every tree edge
/// forwards the same allocation — a 10⁵-rank broadcast used to clone the
/// full byte vector per destination.
#[derive(Debug, Clone)]
struct Packet {
    from: usize,
    tag: u64,
    /// Recovery epoch the sender belonged to. Deliveries whose epoch does
    /// not match the world's are stragglers from a pre-recovery attempt and
    /// are rejected (only ever observable with fault injection armed).
    epoch: u64,
    payload: Arc<[u8]>,
}

/// A packet held back by an injected delay: released after `remaining`
/// further delivery ticks world-wide.
#[derive(Debug)]
struct HeldPacket {
    dest: usize,
    packet: Packet,
    remaining: u64,
}

/// Statistics of the traffic a communicator generated.
///
/// Collective-internal tree messages are *not* double-counted as
/// point-to-point traffic, and each collective increments exactly one
/// operation counter: a barrier is a barrier, not the gather + broadcast it
/// is built from.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Number of point-to-point messages sent.
    pub p2p_messages: AtomicU64,
    /// Total point-to-point payload bytes.
    pub p2p_bytes: AtomicU64,
    /// Number of broadcast operations initiated (counted once per root call).
    pub broadcasts: AtomicU64,
    /// Total broadcast payload bytes (per operation, not per recipient).
    pub broadcast_bytes: AtomicU64,
    /// Number of gather operations initiated (counted once per root call).
    pub gathers: AtomicU64,
    /// Total bytes of merged tree messages received by gather roots.
    pub gather_bytes: AtomicU64,
    /// Number of barrier operations.
    pub barriers: AtomicU64,
    /// Largest number of tree messages any collective root sent or received
    /// in a single operation. Bounded by ⌈log₂ size⌉ for the binomial tree;
    /// the scale-smoke CI gate asserts this stays O(log ranks).
    pub max_root_fanout: AtomicU64,
}

/// A point-in-time copy of [`TrafficStats`], with plain-number fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Point-to-point payload bytes.
    pub p2p_bytes: u64,
    /// Broadcast operations (once per root call).
    pub broadcasts: u64,
    /// Broadcast payload bytes (per operation, not per recipient).
    pub broadcast_bytes: u64,
    /// Gather operations (once per root call).
    pub gathers: u64,
    /// Bytes of merged tree messages received by gather roots.
    pub gather_bytes: u64,
    /// Barrier operations.
    pub barriers: u64,
    /// Largest per-collective root fan-out observed (tree messages at the
    /// root of a single operation).
    pub max_root_fanout: u64,
}

impl TrafficSnapshot {
    /// This snapshot as the metrics-registry mirror struct, ready to merge
    /// into an [`egd_obs::MetricsSnapshot`].
    pub fn metrics(&self) -> egd_obs::TrafficMetrics {
        egd_obs::TrafficMetrics {
            p2p_messages: self.p2p_messages,
            p2p_bytes: self.p2p_bytes,
            broadcasts: self.broadcasts,
            broadcast_bytes: self.broadcast_bytes,
            gathers: self.gathers,
            gather_bytes: self.gather_bytes,
            barriers: self.barriers,
            max_root_fanout: self.max_root_fanout,
        }
    }
}

impl TrafficStats {
    /// Snapshot of the counters as a plain-number [`TrafficSnapshot`].
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            gathers: self.gathers.load(Ordering::Relaxed),
            gather_bytes: self.gather_bytes.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            max_root_fanout: self.max_root_fanout.load(Ordering::Relaxed),
        }
    }

    fn note_root_fanout(&self, fanout: u64) {
        self.max_root_fanout.fetch_max(fanout, Ordering::Relaxed);
    }
}

/// The blocking operation a rank is parked on. Rendered into the protocol
/// deadlock report so the error names *what* each blocked rank was waiting
/// for (and on whom), not just that it was blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingOp {
    /// A point-to-point receive.
    Recv {
        /// Sender rank awaited.
        from: usize,
        /// Message tag awaited.
        tag: u64,
    },
    /// A broadcast rooted at `root`.
    Broadcast {
        /// Root rank of the collective.
        root: usize,
    },
    /// A gather rooted at `root`.
    Gather {
        /// Root rank of the collective.
        root: usize,
    },
    /// An allreduce-sum over the world.
    AllreduceSum,
    /// A barrier over the world.
    Barrier,
}

impl std::fmt::Display for PendingOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PendingOp::Recv { from, tag } => write!(f, "recv(from={from}, tag={tag})"),
            PendingOp::Broadcast { root } => write!(f, "broadcast(root={root})"),
            PendingOp::Gather { root } => write!(f, "gather(root={root})"),
            PendingOp::AllreduceSum => write!(f, "allreduce"),
            PendingOp::Barrier => write!(f, "barrier"),
        }
    }
}

/// One rank's inbox: arrived packets plus the waker of a receive awaiting a
/// match. Everything sits under a single lock so a send can never slip
/// between "receiver found nothing" and "receiver registered its waker".
#[derive(Debug, Default)]
struct MailboxInner {
    queue: VecDeque<Packet>,
    waker: Option<Waker>,
    /// Set when the owning rank's task has completed: later sends error,
    /// mirroring the channel-disconnect semantics of the retired
    /// thread-per-rank transport.
    closed: bool,
}

#[derive(Debug, Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
}

/// Mailboxes of every rank in a world.
#[derive(Debug)]
struct WorldShared {
    mailboxes: Vec<Mailbox>,
    /// What each rank is currently blocked on (outermost operation wins):
    /// the deadlock report reads these to name the pending operations.
    pending_ops: Vec<Mutex<Option<PendingOp>>>,
    /// Recovery epoch of this world: packets stamped with a different epoch
    /// are stragglers from a pre-recovery attempt and are rejected.
    epoch: u64,
    /// Fault-injection domain this world belongs to (an armed plan only
    /// touches worlds tagged with its seed).
    fault_domain: u64,
    /// Packets held back by injected delays, in arrival order.
    held: Mutex<Vec<HeldPacket>>,
}

impl WorldShared {
    /// The operation `rank` is currently blocked on, if any.
    fn pending_op(&self, rank: usize) -> Option<PendingOp> {
        *self.pending_ops[rank].lock().expect("pending-op poisoned")
    }

    /// Delivers a packet to `dest` and wakes its task if it is waiting.
    ///
    /// The fault-injection detour costs exactly one relaxed atomic load when
    /// no injection session is armed — the same fast-path discipline as
    /// egd-obs tracing.
    fn deliver(&self, dest: usize, packet: Packet) -> EgdResult<()> {
        if egd_fault::injection_armed() {
            return self.deliver_injected(dest, packet);
        }
        self.deliver_now(dest, packet)
    }

    /// The armed-injection delivery path: rejects stale-epoch packets, ages
    /// and releases held packets, and applies the fault plan's fate for this
    /// message (drop / delay / deliver).
    #[cold]
    fn deliver_injected(&self, dest: usize, packet: Packet) -> EgdResult<()> {
        if packet.epoch != self.epoch {
            // A straggler from a pre-recovery attempt: reject at the door so
            // a replayed collective epoch never consumes a stale payload.
            egd_fault::note_stale_rejected();
            return Ok(());
        }
        // Every delivery is one tick of virtual network time: age held
        // packets and release the expired ones first, in arrival order.
        let released: Vec<HeldPacket> = {
            let mut held = self.held.lock().expect("held queue poisoned");
            for entry in held.iter_mut() {
                entry.remaining = entry.remaining.saturating_sub(1);
            }
            let mut out = Vec::new();
            let mut i = 0;
            while i < held.len() {
                if held[i].remaining == 0 {
                    out.push(held.remove(i));
                } else {
                    i += 1;
                }
            }
            out
        };
        for entry in released {
            // The destination may have completed while the packet was held —
            // that is the injected fault playing out, not a transport error.
            let _ = self.deliver_now(entry.dest, entry.packet);
        }
        match egd_fault::message_fate(self.fault_domain, packet.from, dest) {
            egd_fault::MessageFate::Deliver => {
                // Preserve per-channel FIFO: if an earlier packet on this
                // (from, dest) channel is still held, queue behind it rather
                // than overtake it.
                let queued_behind = {
                    let mut held = self.held.lock().expect("held queue poisoned");
                    let channel_max = held
                        .iter()
                        .filter(|e| e.packet.from == packet.from && e.dest == dest)
                        .map(|e| e.remaining)
                        .max();
                    match channel_max {
                        Some(remaining) => {
                            held.push(HeldPacket {
                                dest,
                                packet: packet.clone(),
                                remaining,
                            });
                            true
                        }
                        None => false,
                    }
                };
                if queued_behind {
                    Ok(())
                } else {
                    self.deliver_now(dest, packet)
                }
            }
            egd_fault::MessageFate::Drop { event } => {
                if let Some(span) = SpanTimer::start_on(packet.from as u32, SpanKind::FaultInjected)
                {
                    span.finish(event as u64);
                }
                Ok(())
            }
            egd_fault::MessageFate::Delay { event, held_for } => {
                if let Some(span) = SpanTimer::start_on(packet.from as u32, SpanKind::FaultInjected)
                {
                    span.finish(event as u64);
                }
                self.held
                    .lock()
                    .expect("held queue poisoned")
                    .push(HeldPacket {
                        dest,
                        packet,
                        remaining: held_for.max(1),
                    });
                Ok(())
            }
        }
    }

    /// Unconditional mailbox delivery (the pre-injection `deliver`).
    fn deliver_now(&self, dest: usize, packet: Packet) -> EgdResult<()> {
        let waker = {
            let mut inner = self.mailboxes[dest].inner.lock().expect("mailbox poisoned");
            if inner.closed {
                return Err(EgdError::Communication {
                    reason: format!("rank {dest} has completed"),
                });
            }
            inner.queue.push_back(packet);
            inner.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        Ok(())
    }

    /// Marks `rank`'s mailbox closed (its task completed).
    fn close(&self, rank: usize) {
        self.mailboxes[rank]
            .inner
            .lock()
            .expect("mailbox poisoned")
            .closed = true;
    }
}

/// Marks a rank blocked on an operation for the lifetime of the guard. The
/// *outermost* operation wins the slot — the `recv` inside a collective does
/// not overwrite the collective's label — and only the guard that claimed
/// the slot clears it (also when an error unwinds out of the operation).
struct OpGuard {
    shared: Arc<WorldShared>,
    rank: usize,
    claimed: bool,
}

impl OpGuard {
    fn claim(shared: Arc<WorldShared>, rank: usize, op: PendingOp) -> OpGuard {
        let claimed = {
            let mut slot = shared.pending_ops[rank]
                .lock()
                .expect("pending-op poisoned");
            slot.is_none() && {
                *slot = Some(op);
                true
            }
        };
        OpGuard {
            shared,
            rank,
            claimed,
        }
    }
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if self.claimed {
            *self.shared.pending_ops[self.rank]
                .lock()
                .expect("pending-op poisoned") = None;
        }
    }
}

/// The per-rank endpoint of the simulated communicator.
pub struct Communicator {
    rank: usize,
    size: usize,
    shared: Arc<WorldShared>,
    /// Messages received while waiting for a different `(from, tag)`.
    pending: VecDeque<Packet>,
    stats: Arc<TrafficStats>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

impl Communicator {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Shared traffic statistics of the whole world.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The fault-injection domain of this rank's world (see
    /// [`SimWorld::fault_domain`]).
    pub fn fault_domain(&self) -> u64 {
        self.shared.fault_domain
    }

    fn serialize<T: Serialize>(value: &T) -> EgdResult<Vec<u8>> {
        serde_json::to_vec(value).map_err(|e| EgdError::Communication {
            reason: format!("serialisation failed: {e}"),
        })
    }

    fn deserialize<T: DeserializeOwned>(bytes: &[u8]) -> EgdResult<T> {
        serde_json::from_slice(bytes).map_err(|e| EgdError::Communication {
            reason: format!("deserialisation failed: {e}"),
        })
    }

    /// Sends `value` to `dest` with `tag`. Non-blocking (the paper's
    /// `MPI_Isend` of fitness values): the call only enqueues the message.
    pub fn send<T: Serialize>(&self, dest: usize, tag: u64, value: &T) -> EgdResult<()> {
        if dest >= self.size {
            return Err(EgdError::Communication {
                reason: format!("destination rank {dest} out of range (size {})", self.size),
            });
        }
        let payload: Arc<[u8]> = Self::serialize(value)?.into();
        self.stats.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .p2p_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.shared.deliver(
            dest,
            Packet {
                from: self.rank,
                tag,
                epoch: self.shared.epoch,
                payload,
            },
        )
    }

    /// Receives the next message matching `from` and `tag`. Awaiting parks
    /// this rank's *task* (a cooperative yield), never a pool thread.
    pub async fn recv<T: DeserializeOwned>(&mut self, from: usize, tag: u64) -> EgdResult<T> {
        let packet = self.recv_packet(from, tag).await;
        Self::deserialize(&packet.payload)
    }

    /// Receives the raw packet matching `from` and `tag` — the transport
    /// layer under [`Self::recv`] and the tree collectives (which forward
    /// payload bytes without re-serialising them).
    async fn recv_packet(&mut self, from: usize, tag: u64) -> Packet {
        // First look through messages that arrived out of order.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|p| p.from == from && p.tag == tag)
        {
            return self.pending.remove(pos).expect("position just found");
        }
        let _op = OpGuard::claim(
            Arc::clone(&self.shared),
            self.rank,
            PendingOp::Recv { from, tag },
        );
        let wait = SpanTimer::start_on(self.rank as u32, SpanKind::MailboxWait);
        let Communicator {
            rank,
            shared,
            pending,
            ..
        } = self;
        let rank = *rank;
        let packet = std::future::poll_fn(|cx| {
            let mut inner = shared.mailboxes[rank]
                .inner
                .lock()
                .expect("mailbox poisoned");
            // Drain new arrivals, returning the first match and buffering the
            // rest for later receives.
            while let Some(packet) = inner.queue.pop_front() {
                if packet.from == from && packet.tag == tag {
                    return Poll::Ready(packet);
                }
                pending.push_back(packet);
            }
            // No match: register the waker *under the same lock* the sender
            // takes, so a concurrent send cannot slip past unnoticed.
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        })
        .await;
        if let Some(wait) = wait {
            wait.finish(from as u64);
        }
        packet
    }

    fn check_collective_root(&self, root: usize) -> EgdResult<()> {
        if root >= self.size {
            return Err(EgdError::Communication {
                reason: format!("collective root {root} out of range (size {})", self.size),
            });
        }
        Ok(())
    }

    /// Forwards `payload` down the binomial tree rooted at `root`: one send
    /// per child of this rank's virtual rank, largest sub-tree first so the
    /// deepest chain starts earliest (the classic binomial schedule).
    fn send_down_tree(&self, root: usize, tag: u64, payload: &Arc<[u8]>) -> EgdResult<()> {
        let v = collective::vrank(self.rank, root, self.size);
        let children: Vec<usize> = collective::children(v, self.size).collect();
        for &child in children.iter().rev() {
            self.shared.deliver(
                collective::actual_rank(child, root, self.size),
                Packet {
                    from: self.rank,
                    tag,
                    epoch: self.shared.epoch,
                    payload: Arc::clone(payload),
                },
            )?;
        }
        Ok(())
    }

    /// Broadcast from `root`: the root passes `Some(value)`, every other rank
    /// passes `None` and receives the root's value. Mirrors `MPI_Bcast` on
    /// the collective network: the payload descends a binomial tree, so the
    /// root sends O(log size) messages and every rank forwards the same
    /// shared byte buffer without re-serialising it.
    pub async fn broadcast<T: Serialize + DeserializeOwned + Clone>(
        &mut self,
        root: usize,
        value: Option<T>,
    ) -> EgdResult<T> {
        self.check_collective_root(root)?;
        let _op = OpGuard::claim(
            Arc::clone(&self.shared),
            self.rank,
            PendingOp::Broadcast { root },
        );
        let span = SpanTimer::start_on(self.rank as u32, SpanKind::Broadcast);
        let result = if self.rank == root {
            let value = value.ok_or_else(|| EgdError::Communication {
                reason: "broadcast root must supply a value".to_string(),
            })?;
            let payload: Arc<[u8]> = Self::serialize(&value)?.into();
            self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
            self.stats
                .broadcast_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            self.stats
                .note_root_fanout(collective::root_fanout(self.size));
            self.send_down_tree(root, BCAST_TAG, &payload)?;
            value
        } else {
            let v = collective::vrank(self.rank, root, self.size);
            let parent_v = collective::parent(v).expect("non-root has a parent");
            let parent = collective::actual_rank(parent_v, root, self.size);
            let packet = self.recv_packet(parent, BCAST_TAG).await;
            self.send_down_tree(root, BCAST_TAG, &packet.payload)?;
            Self::deserialize(&packet.payload)?
        };
        if let Some(span) = span {
            span.finish(root as u64);
        }
        Ok(result)
    }

    /// Gather: every rank sends `value` to `root`; the root receives the
    /// values ordered by rank (its own value included), other ranks get an
    /// empty vector.
    ///
    /// The values ascend a binomial reduction tree: every inner node merges
    /// its children's contiguous virtual-rank segments with its own value and
    /// sends its parent *one* message, so the root receives O(log size)
    /// merged messages instead of `size - 1` strictly rank-ordered ones —
    /// the head-of-line blocking that capped the flat implementation.
    pub async fn gather<T: Serialize + DeserializeOwned + Clone>(
        &mut self,
        root: usize,
        value: &T,
    ) -> EgdResult<Vec<T>> {
        self.check_collective_root(root)?;
        let _op = OpGuard::claim(
            Arc::clone(&self.shared),
            self.rank,
            PendingOp::Gather { root },
        );
        let span = SpanTimer::start_on(self.rank as u32, SpanKind::Gather);
        let size = self.size;
        let v = collective::vrank(self.rank, root, size);
        // This node's merged segment, in virtual-rank order. Ascending child
        // order keeps the concatenation contiguous: [v] ++ [v+1, v+2) ++
        // [v+2, v+4) ++ … — see `collective::children`.
        let mut segment: Vec<T> = Vec::with_capacity(collective::subtree_span(v, size).min(size));
        segment.push(value.clone());
        let mut root_messages = 0u64;
        let mut root_bytes = 0u64;
        let children: Vec<usize> = collective::children(v, size).collect();
        for child in children {
            let packet = self
                .recv_packet(collective::actual_rank(child, root, size), GATHER_TAG)
                .await;
            root_messages += 1;
            root_bytes += packet.payload.len() as u64;
            let mut child_segment: Vec<T> = Self::deserialize(&packet.payload)?;
            segment.append(&mut child_segment);
        }
        let result = match collective::parent(v) {
            Some(parent_v) => {
                let payload: Arc<[u8]> = Self::serialize(&segment)?.into();
                self.shared.deliver(
                    collective::actual_rank(parent_v, root, size),
                    Packet {
                        from: self.rank,
                        tag: GATHER_TAG,
                        epoch: self.shared.epoch,
                        payload,
                    },
                )?;
                Vec::new()
            }
            None => {
                self.stats.gathers.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .gather_bytes
                    .fetch_add(root_bytes, Ordering::Relaxed);
                self.stats.note_root_fanout(root_messages);
                debug_assert_eq!(segment.len(), size);
                // segment[v] holds virtual rank v's value; rotate back to
                // actual-rank order (actual rank = (v + root) % size).
                segment.rotate_right(root);
                segment
            }
        };
        if let Some(span) = span {
            span.finish(root as u64);
        }
        Ok(result)
    }

    /// All-reduce sum of a float vector: every rank contributes `values` and
    /// receives the element-wise sum across ranks.
    ///
    /// Contributions are tree-gathered *unsummed* and folded at rank 0 in
    /// strict rank order, so the float result is bit-identical regardless of
    /// tree shape, worker-pool size or scheduling — summing partial results
    /// inside the tree would make totals world-shape-dependent.
    pub async fn allreduce_sum(&mut self, values: &[f64]) -> EgdResult<Vec<f64>> {
        let _op = OpGuard::claim(Arc::clone(&self.shared), self.rank, PendingOp::AllreduceSum);
        let span = SpanTimer::start_on(self.rank as u32, SpanKind::AllreduceSum);
        let gathered = self.gather(0, &values.to_vec()).await?;
        let summed = if self.rank == 0 {
            let mut total = vec![0.0; values.len()];
            for contribution in &gathered {
                if contribution.len() != values.len() {
                    return Err(EgdError::Communication {
                        reason: "allreduce contributions have mismatched lengths".to_string(),
                    });
                }
                for (t, v) in total.iter_mut().zip(contribution) {
                    *t += v;
                }
            }
            Some(total)
        } else {
            None
        };
        let result = self.broadcast(0, summed).await?;
        if let Some(span) = span {
            span.finish(self.size as u64);
        }
        Ok(result)
    }

    /// Barrier: no rank leaves before every rank has entered. Implemented as
    /// the classic reduce + broadcast pair over the binomial tree with empty
    /// payloads; counted only as a barrier (its internal tree messages touch
    /// no other counter).
    pub async fn barrier(&mut self) -> EgdResult<()> {
        let _op = OpGuard::claim(Arc::clone(&self.shared), self.rank, PendingOp::Barrier);
        let span = SpanTimer::start_on(self.rank as u32, SpanKind::Barrier);
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        let size = self.size;
        let v = collective::vrank(self.rank, 0, size);
        let empty: Arc<[u8]> = Arc::from(&[][..]);
        // Reduce phase: wait for every child's token, then notify the parent.
        let children: Vec<usize> = collective::children(v, size).collect();
        for &child in &children {
            self.recv_packet(child, BARRIER_UP_TAG).await;
        }
        match collective::parent(v) {
            Some(parent_v) => {
                self.shared.deliver(
                    parent_v,
                    Packet {
                        from: self.rank,
                        tag: BARRIER_UP_TAG,
                        epoch: self.shared.epoch,
                        payload: Arc::clone(&empty),
                    },
                )?;
                // Release phase: wait for the root's go-ahead.
                self.recv_packet(parent_v, BARRIER_DOWN_TAG).await;
            }
            None => self.stats.note_root_fanout(children.len() as u64),
        }
        self.send_down_tree(0, BARRIER_DOWN_TAG, &empty)?;
        if let Some(span) = span {
            span.finish(size as u64);
        }
        Ok(())
    }
}

/// Ranks blocked at stall-detection time, each paired with the operation it
/// was parked on (if still claimed when the report was captured).
pub type BlockedRanks = Vec<(usize, Option<PendingOp>)>;

/// A structured account of why a world run failed — the raw material fault
/// supervisors classify (crash vs. transient stall) before deciding whether
/// to retry, respawn from a checkpoint, or give up.
#[derive(Debug)]
pub struct WorldFailure {
    /// The error [`SimWorld::run`] would surface for this failure.
    pub error: EgdError,
    /// Ranks whose bodies returned an error, with their errors, in rank
    /// order.
    pub failed_ranks: Vec<(usize, EgdError)>,
    /// The rank whose body panicked, if the failure was a panic.
    pub panicked: Option<usize>,
    /// Ranks blocked at stall-detection time, each with the operation it was
    /// parked on.
    pub blocked: BlockedRanks,
}

/// The simulated world: schedules ranks as cooperative tasks and wires their
/// communicators.
#[derive(Debug, Clone, Copy)]
pub struct SimWorld {
    num_ranks: usize,
    workers: usize,
    epoch: u64,
    fault_domain: u64,
}

impl SimWorld {
    /// Creates a world of `num_ranks` simulated ranks.
    pub fn new(num_ranks: usize) -> EgdResult<Self> {
        if num_ranks == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "a world needs at least one rank".to_string(),
            });
        }
        Ok(SimWorld {
            num_ranks,
            workers: 0,
            epoch: 0,
            fault_domain: 0,
        })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Sets the worker-pool size multiplexing the rank tasks
    /// (`0` = available parallelism). Any rank count runs on any pool size —
    /// including thousands of ranks on a single worker, cooperatively.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the world's recovery epoch (default 0). A supervisor replaying a
    /// failed run bumps the epoch so packets from the previous attempt —
    /// should any machinery ever leak them across — are rejected instead of
    /// consumed by the replayed collective schedule.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Tags this world with a fault-injection domain. An armed
    /// [`egd_fault::FaultPlan`] only injects into worlds whose domain equals
    /// the plan's seed, so concurrent unrelated worlds in the same process
    /// are untouched. Default 0.
    pub fn fault_domain(mut self, domain: u64) -> Self {
        self.fault_domain = domain;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// Runs `body` on every rank — each as a cooperatively scheduled task on
    /// the world's worker pool — and returns the per-rank results in rank
    /// order, plus the world's traffic statistics.
    ///
    /// If a rank body panics, the error names the rank and carries the panic
    /// payload; if the protocol deadlocks (a rank waits for a message nobody
    /// sends), the error names the blocked ranks instead of hanging.
    ///
    /// Rank bodies must only `.await` [`Communicator`] operations (or
    /// futures woken from within this world's tasks). The deadlock detector
    /// relies on every wake-up originating inside a rank's poll: a future
    /// woken by an *external* thread (timer, channel fed from outside the
    /// world) can be misreported as a protocol deadlock if every rank is
    /// simultaneously parked on one.
    pub fn run<T, F, Fut>(&self, body: F) -> EgdResult<(Vec<T>, Arc<TrafficStats>)>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> Fut,
        Fut: Future<Output = EgdResult<T>> + Send + 'static,
    {
        self.run_detailed(body).map_err(|failure| failure.error)
    }

    /// Like [`Self::run`], but failures come back as a structured
    /// [`WorldFailure`] — which ranks errored (and how), which rank panicked,
    /// and what every blocked rank was parked on — instead of a single
    /// flattened error. Fault supervisors use this to tell a crashed rank
    /// (respawn from checkpoint) from a transient stall (retry).
    pub fn run_detailed<T, F, Fut>(
        &self,
        body: F,
    ) -> Result<(Vec<T>, Arc<TrafficStats>), Box<WorldFailure>>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> Fut,
        Fut: Future<Output = EgdResult<T>> + Send + 'static,
    {
        let stats = Arc::new(TrafficStats::default());
        let shared = Arc::new(WorldShared {
            mailboxes: (0..self.num_ranks).map(|_| Mailbox::default()).collect(),
            pending_ops: (0..self.num_ranks).map(|_| Mutex::new(None)).collect(),
            epoch: self.epoch,
            fault_domain: self.fault_domain,
            held: Mutex::new(Vec::new()),
        });
        let mut tasks: Vec<taskexec::TaskFuture<EgdResult<T>>> = Vec::with_capacity(self.num_ranks);
        for rank in 0..self.num_ranks {
            let comm = Communicator {
                rank,
                size: self.num_ranks,
                shared: Arc::clone(&shared),
                pending: VecDeque::new(),
                stats: Arc::clone(&stats),
            };
            let future = body(comm);
            let shared = Arc::clone(&shared);
            tasks.push(Box::pin(async move {
                let result = future.await;
                // Completed ranks stop accepting traffic, mirroring the old
                // channel-disconnect behaviour.
                shared.close(rank);
                result
            }));
        }

        // The pending-op records live inside the suspended rank futures
        // (guard objects), which are dropped when the executor returns — so
        // the blocked-rank list is captured *at stall-detection time*.
        let stall_blocked: Mutex<Option<BlockedRanks>> = Mutex::new(None);
        let (results, fatal) =
            taskexec::run_tasks_observed(self.effective_workers(), tasks, |waiting| {
                *stall_blocked.lock().expect("stall report poisoned") = Some(
                    waiting
                        .iter()
                        .map(|&rank| (rank, shared.pending_op(rank)))
                        .collect(),
                );
            });
        let failed_ranks: Vec<(usize, EgdError)> = results
            .iter()
            .enumerate()
            .filter_map(|(rank, slot)| match slot {
                Some(Err(e)) => Some((rank, e.clone())),
                _ => None,
            })
            .collect();
        if let Some(error) = fatal {
            let mut panicked = None;
            let mut blocked = Vec::new();
            let error = match error {
                ExecError::Panicked { task, message } => {
                    panicked = Some(task);
                    EgdError::Communication {
                        reason: format!("rank {task} panicked: {message}"),
                    }
                }
                ExecError::Stalled { waiting } => {
                    blocked = stall_blocked
                        .lock()
                        .expect("stall report poisoned")
                        .take()
                        .unwrap_or_else(|| {
                            waiting
                                .iter()
                                .map(|&rank| (rank, shared.pending_op(rank)))
                                .collect()
                        });
                    // A rank that failed early often strands its peers inside
                    // a collective: surface the root cause, not the symptom.
                    if let Some((_, root_cause)) = failed_ranks.first() {
                        root_cause.clone()
                    } else {
                        EgdError::Communication {
                            reason: format!(
                                "protocol deadlock: ranks {} are blocked \
                                 waiting for messages no rank will send",
                                format_blocked_ops(&blocked)
                            ),
                        }
                    }
                }
            };
            return Err(Box::new(WorldFailure {
                error,
                failed_ranks,
                panicked,
                blocked,
            }));
        }
        // All tasks completed; any rank-body error still fails the world,
        // with the full per-rank picture attached.
        if let Some((_, first)) = failed_ranks.first() {
            return Err(Box::new(WorldFailure {
                error: first.clone(),
                failed_ranks,
                panicked: None,
                blocked: Vec::new(),
            }));
        }
        let mut out = Vec::with_capacity(self.num_ranks);
        for result in results {
            out.push(
                result
                    .expect("completed world is missing a rank result")
                    .expect("rank errors were collected above"),
            );
        }
        Ok((out, stats))
    }
}

/// Renders a blocked-rank list — every shown rank with the operation it is
/// parked on (`recv`/`broadcast`/`gather`/`allreduce`/`barrier` plus peer or
/// root) — capped at the first 16 entries: a 10⁵-rank deadlock must not
/// build a multi-megabyte string. Shared by the deadlock report and the
/// fault supervisor's failure report.
pub(crate) fn format_blocked_ops(blocked: &[(usize, Option<PendingOp>)]) -> String {
    const SHOWN: usize = 16;
    let shown: Vec<String> = blocked
        .iter()
        .take(SHOWN)
        .map(|(rank, op)| match op {
            Some(op) => format!("{rank} in {op}"),
            None => rank.to_string(),
        })
        .collect();
    let mut out = format!("[{}]", shown.join(", "));
    if blocked.len() > SHOWN {
        use std::fmt::Write;
        let _ = write!(out, " … and {} more", blocked.len() - SHOWN);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_validation() {
        assert!(SimWorld::new(0).is_err());
        assert_eq!(SimWorld::new(4).unwrap().num_ranks(), 4);
    }

    #[test]
    fn point_to_point_ring() {
        // Every rank sends its rank number to the next rank and checks what
        // it receives from the previous one.
        let world = SimWorld::new(5).unwrap();
        let (results, stats) = world
            .run(|mut comm| async move {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, 7, &comm.rank())?;
                let received: usize = comm.recv(prev, 7).await?;
                Ok(received)
            })
            .unwrap();
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
        let snap = stats.snapshot();
        assert_eq!(snap.p2p_messages, 5);
        assert!(snap.p2p_bytes > 0);
    }

    #[test]
    fn many_ranks_multiplex_on_one_worker() {
        // 128 ranks on a single pool thread: the ring can only complete if
        // blocked receives yield cooperatively instead of parking the worker.
        let world = SimWorld::new(128).unwrap().workers(1);
        let (results, _) = world
            .run(|mut comm| async move {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, 3, &comm.rank())?;
                let received: usize = comm.recv(prev, 3).await?;
                comm.barrier().await?;
                Ok(received)
            })
            .unwrap();
        assert_eq!(results.len(), 128);
        for (rank, received) in results.iter().enumerate() {
            assert_eq!(*received, (rank + 128 - 1) % 128);
        }
    }

    #[test]
    fn broadcast_delivers_root_value() {
        let world = SimWorld::new(6).unwrap();
        let (results, stats) = world
            .run(|mut comm| async move {
                let value = if comm.rank() == 2 {
                    Some(vec![1.0f64, 2.0, 3.0])
                } else {
                    None
                };
                comm.broadcast(2, value).await
            })
            .unwrap();
        for r in results {
            assert_eq!(r, vec![1.0, 2.0, 3.0]);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.broadcasts, 1);
        // Tree broadcast: no point-to-point traffic, log-bounded root fan-out.
        assert_eq!(snap.p2p_messages, 0);
        assert!(snap.max_root_fanout <= u64::from(collective::stages(6)));
    }

    #[test]
    fn gather_orders_by_rank() {
        let world = SimWorld::new(4).unwrap();
        let (results, _) = world
            .run(|mut comm| async move {
                let value = comm.rank() * 10;
                comm.gather(0, &value).await
            })
            .unwrap();
        assert_eq!(results[0], vec![0, 10, 20, 30]);
        for r in &results[1..] {
            assert!(r.is_empty());
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let world = SimWorld::new(4).unwrap();
        let (results, _) = world
            .run(|mut comm| async move {
                let values = vec![comm.rank() as f64, 1.0];
                comm.allreduce_sum(&values).await
            })
            .unwrap();
        for r in results {
            assert_eq!(r, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn barrier_completes() {
        let world = SimWorld::new(8).unwrap();
        let (results, stats) = world
            .run(|mut comm| async move {
                comm.barrier().await?;
                comm.barrier().await?;
                Ok(comm.rank())
            })
            .unwrap();
        assert_eq!(results.len(), 8);
        let snap = stats.snapshot();
        assert_eq!(snap.barriers, 16);
        // A barrier is a barrier: its internal reduce + broadcast tree must
        // not inflate the other collective counters (the flat implementation
        // counted every barrier as a broadcast too).
        assert_eq!(snap.broadcasts, 0);
        assert_eq!(snap.gathers, 0);
        assert_eq!(snap.p2p_messages, 0);
    }

    #[test]
    fn gather_counts_once_at_root_with_tree_fanout() {
        let world = SimWorld::new(100).unwrap();
        let (_, stats) = world
            .run(|mut comm| async move {
                let value = comm.rank();
                comm.gather(3, &value).await
            })
            .unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.gathers, 1);
        assert!(snap.gather_bytes > 0);
        assert_eq!(snap.broadcasts, 0);
        // The root saw O(log 100) merged messages, not 99 individual ones.
        assert!(
            (1..=u64::from(collective::stages(100))).contains(&snap.max_root_fanout),
            "fanout {}",
            snap.max_root_fanout
        );
    }

    fn bare_shared(ranks: usize) -> WorldShared {
        WorldShared {
            mailboxes: (0..ranks).map(|_| Mailbox::default()).collect(),
            pending_ops: (0..ranks).map(|_| Mutex::new(None)).collect(),
            epoch: 0,
            fault_domain: 0,
            held: Mutex::new(Vec::new()),
        }
    }

    #[test]
    fn blocked_rank_list_is_capped() {
        let shared = bare_shared(100_000);
        *shared.pending_ops[0].lock().unwrap() = Some(PendingOp::Recv { from: 7, tag: 42 });
        *shared.pending_ops[2].lock().unwrap() = Some(PendingOp::Barrier);

        let pairs = |ranks: std::ops::Range<usize>| -> Vec<(usize, Option<PendingOp>)> {
            ranks.map(|rank| (rank, shared.pending_op(rank))).collect()
        };
        assert_eq!(
            format_blocked_ops(&pairs(0..5)),
            "[0 in recv(from=7, tag=42), 1, 2 in barrier, 3, 4]"
        );
        let rendered = format_blocked_ops(&pairs(0..100_000));
        assert!(rendered.ends_with("… and 99984 more"), "{rendered}");
        assert!(rendered.len() < 400, "{rendered}");
    }

    #[test]
    fn stale_epoch_packets_are_rejected_when_armed() {
        let _session = egd_fault::arm(egd_fault::FaultPlan::new(0));
        let shared = bare_shared(2);
        let before = egd_fault::injection_report().stale_rejected;
        shared
            .deliver(
                1,
                Packet {
                    from: 0,
                    tag: 7,
                    epoch: 99, // world is epoch 0: a pre-recovery straggler
                    payload: Arc::from(&[][..]),
                },
            )
            .unwrap();
        assert!(shared.mailboxes[1].inner.lock().unwrap().queue.is_empty());
        assert_eq!(egd_fault::injection_report().stale_rejected, before + 1);
        // A current-epoch packet still goes through.
        shared
            .deliver(
                1,
                Packet {
                    from: 0,
                    tag: 7,
                    epoch: 0,
                    payload: Arc::from(&[][..]),
                },
            )
            .unwrap();
        assert_eq!(shared.mailboxes[1].inner.lock().unwrap().queue.len(), 1);
    }

    #[test]
    fn injected_drop_surfaces_as_detected_stall() {
        let _session = egd_fault::arm(egd_fault::FaultPlan::new(1).with(
            egd_fault::FaultEvent::DropMessage {
                from: 0,
                to: 1,
                nth: 0,
            },
        ));
        let world = SimWorld::new(2).unwrap().fault_domain(1);
        let failure = world
            .run_detailed(|mut comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 5, &42u32)?;
                } else {
                    let _: u32 = comm.recv(0, 5).await?;
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        // The receiver stalls on the dropped message; no rank errored, so
        // the supervisor will classify this as transient.
        assert!(failure.failed_ranks.is_empty(), "{failure:?}");
        assert!(failure.panicked.is_none());
        assert!(
            failure
                .blocked
                .iter()
                .any(|(rank, op)| *rank == 1
                    && matches!(op, Some(PendingOp::Recv { from: 0, tag: 5 }))),
            "{failure:?}"
        );
        assert_eq!(egd_fault::injection_report().drops, 1);
    }

    #[test]
    fn injected_delay_releases_and_preserves_channel_fifo() {
        let _session = egd_fault::arm(egd_fault::FaultPlan::new(2).with(
            egd_fault::FaultEvent::DelayMessage {
                from: 0,
                to: 1,
                nth: 0,
                held_for: 2,
            },
        ));
        let world = SimWorld::new(2).unwrap().fault_domain(2);
        let (results, _) = world
            .run(|mut comm| async move {
                if comm.rank() == 0 {
                    // Two messages on the same tag: the delayed first message
                    // must still arrive before the second.
                    comm.send(1, 5, &1u32)?;
                    comm.send(1, 5, &2u32)?;
                    comm.send(1, 5, &3u32)?;
                    Ok(vec![])
                } else {
                    let mut got = Vec::new();
                    for _ in 0..3 {
                        got.push(comm.recv::<u32>(0, 5).await?);
                    }
                    Ok(got)
                }
            })
            .unwrap();
        assert_eq!(results[1], vec![1, 2, 3]);
        assert_eq!(egd_fault::injection_report().delays, 1);
    }

    #[test]
    fn pending_op_display_covers_every_kind() {
        assert_eq!(
            PendingOp::Recv { from: 3, tag: 9 }.to_string(),
            "recv(from=3, tag=9)"
        );
        assert_eq!(
            PendingOp::Broadcast { root: 1 }.to_string(),
            "broadcast(root=1)"
        );
        assert_eq!(PendingOp::Gather { root: 2 }.to_string(), "gather(root=2)");
        assert_eq!(PendingOp::AllreduceSum.to_string(), "allreduce");
        assert_eq!(PendingOp::Barrier.to_string(), "barrier");
    }

    #[test]
    fn collective_spans_are_recorded_per_rank() {
        let _session = egd_obs::session_guard();
        egd_obs::enable_tracing();
        let world = SimWorld::new(4).unwrap();
        world
            .run(|mut comm| async move {
                let seed = if comm.rank() == 0 { Some(7u32) } else { None };
                let value = comm.broadcast(0, seed).await?;
                let gathered: Vec<u32> = comm.gather(0, &value).await?;
                let _ = comm.allreduce_sum(&[1.0f64]).await?;
                comm.barrier().await?;
                Ok(gathered.len())
            })
            .unwrap();
        egd_obs::disable_tracing();
        let log = egd_obs::collect();
        let mut histogram = std::collections::BTreeMap::new();
        for e in &log.events {
            *histogram.entry(format!("{:?}", e.kind)).or_insert(0usize) += 1;
        }
        eprintln!(
            "trace session: {} events, {} dropped, kinds {:?}",
            log.events.len(),
            log.dropped,
            histogram
        );

        let count = |kind: egd_obs::SpanKind| log.events.iter().filter(|e| e.kind == kind).count();
        // Every rank records each collective once — the allreduce is a
        // gather + broadcast internally, so those two appear twice per rank
        // (once standalone, once nested under the allreduce). Ranks also
        // record the poll-slice and mailbox-wait spans their awaits go
        // through.
        assert_eq!(count(egd_obs::SpanKind::Broadcast), 8);
        assert_eq!(count(egd_obs::SpanKind::Gather), 8);
        assert_eq!(count(egd_obs::SpanKind::AllreduceSum), 4);
        assert_eq!(count(egd_obs::SpanKind::Barrier), 4);
        assert!(count(egd_obs::SpanKind::RankTask) > 0);
        assert!(count(egd_obs::SpanKind::MailboxWait) > 0);
        // Collective spans land on their rank's track.
        let broadcast_tracks: Vec<u32> = {
            let mut tracks: Vec<u32> = log
                .events
                .iter()
                .filter(|e| e.kind == egd_obs::SpanKind::Broadcast)
                .map(|e| e.track)
                .collect();
            tracks.sort_unstable();
            tracks.dedup();
            tracks
        };
        assert_eq!(broadcast_tracks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_messages_are_buffered() {
        // Rank 0 sends two differently-tagged messages; rank 1 receives them
        // in the opposite order.
        let world = SimWorld::new(2).unwrap();
        let (results, _) = world
            .run(|mut comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 1, &"first".to_string())?;
                    comm.send(1, 2, &"second".to_string())?;
                    Ok(("".to_string(), "".to_string()))
                } else {
                    let second: String = comm.recv(0, 2).await?;
                    let first: String = comm.recv(0, 1).await?;
                    Ok((first, second))
                }
            })
            .unwrap();
        assert_eq!(results[1], ("first".to_string(), "second".to_string()));
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let world = SimWorld::new(2).unwrap();
        let (results, _) = world
            .run(|comm| async move { Ok(comm.send(5, 0, &1u32).is_err()) })
            .unwrap();
        assert!(results.iter().all(|&r| r));
    }

    #[test]
    fn rank_panic_names_rank_and_payload() {
        let world = SimWorld::new(4).unwrap();
        let err = world
            .run(|comm| async move {
                if comm.rank() == 2 {
                    panic!("rank body exploded");
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("rank 2"), "{message}");
        assert!(message.contains("rank body exploded"), "{message}");
        // The pool is not poisoned: the same world value runs again cleanly.
        let (results, _) = world.run(|comm| async move { Ok(comm.rank()) }).unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn protocol_deadlock_is_detected_not_hung() {
        let world = SimWorld::new(3).unwrap();
        let err = world
            .run(|mut comm| async move {
                if comm.rank() == 0 {
                    // Waits for a message nobody sends.
                    let _: u32 = comm.recv(1, 999).await?;
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("deadlock"), "{message}");
        // The report names the operation each blocked rank is parked on.
        assert!(message.contains("0 in recv(from=1, tag=999)"), "{message}");
    }

    #[test]
    fn deadlock_report_names_mixed_operations() {
        // Rank 0 waits on a message nobody sends while ranks 1 and 2 enter a
        // barrier that can never complete without rank 0.
        let world = SimWorld::new(3).unwrap();
        let err = world
            .run(|mut comm| async move {
                if comm.rank() == 0 {
                    let _: u32 = comm.recv(1, 999).await?;
                } else {
                    comm.barrier().await?;
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("recv(from=1, tag=999)"), "{message}");
        assert!(message.contains("barrier"), "{message}");
    }

    #[test]
    fn send_to_completed_rank_errors() {
        // Rank 1's body is empty, so its mailbox closes almost immediately;
        // rank 0 retries the send until it observes the closed-mailbox error.
        let world = SimWorld::new(2).unwrap().workers(2);
        let (results, _) = world
            .run(|comm| async move {
                if comm.rank() == 0 {
                    // Spin until rank 1's mailbox closes (its body is empty,
                    // so this terminates quickly).
                    loop {
                        match comm.send(1, 7, &1u32) {
                            Err(e) => {
                                return Ok(e.to_string().contains("completed"));
                            }
                            Ok(()) => std::thread::yield_now(),
                        }
                    }
                }
                Ok(true)
            })
            .unwrap();
        assert!(results[0]);
    }
}
