//! An in-process message-passing communicator.
//!
//! [`SimWorld::run`] spawns one OS thread per simulated rank and gives each a
//! [`Communicator`] with the primitives the paper's MPI code uses:
//! point-to-point send/receive (the non-blocking fitness returns along the
//! torus), root broadcasts (the collective-network `MPI_Bcast` of PC
//! selections, mutations and strategy updates), gather, all-reduce and
//! barriers. Payloads are serialised with serde so any message type can be
//! exchanged.
//!
//! The communicator preserves the *communication pattern* of the paper
//! exactly; the transport is crossbeam channels instead of a torus, which is
//! why wall-clock communication costs are charged separately by the cost
//! model in [`crate::cost`] rather than measured here.

use crossbeam::channel::{unbounded, Receiver, Sender};
use egd_core::error::{EgdError, EgdResult};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// A tagged, serialised message between ranks.
#[derive(Debug, Clone)]
struct Packet {
    from: usize,
    tag: u64,
    payload: Vec<u8>,
}

/// Statistics of the traffic a communicator generated.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Number of point-to-point messages sent.
    pub p2p_messages: AtomicU64,
    /// Total point-to-point payload bytes.
    pub p2p_bytes: AtomicU64,
    /// Number of broadcast operations initiated (counted once per root call).
    pub broadcasts: AtomicU64,
    /// Total broadcast payload bytes (per operation, not per recipient).
    pub broadcast_bytes: AtomicU64,
    /// Number of barrier operations.
    pub barriers: AtomicU64,
}

impl TrafficStats {
    /// Snapshot of the counters as plain numbers
    /// `(p2p msgs, p2p bytes, broadcasts, broadcast bytes, barriers)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.p2p_messages.load(Ordering::Relaxed),
            self.p2p_bytes.load(Ordering::Relaxed),
            self.broadcasts.load(Ordering::Relaxed),
            self.broadcast_bytes.load(Ordering::Relaxed),
            self.barriers.load(Ordering::Relaxed),
        )
    }
}

/// The per-rank endpoint of the simulated communicator.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    /// Messages received while waiting for a different `(from, tag)`.
    pending: VecDeque<Packet>,
    stats: Arc<TrafficStats>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

impl Communicator {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Shared traffic statistics of the whole world.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    fn serialize<T: Serialize>(value: &T) -> EgdResult<Vec<u8>> {
        serde_json::to_vec(value).map_err(|e| EgdError::Communication {
            reason: format!("serialisation failed: {e}"),
        })
    }

    fn deserialize<T: DeserializeOwned>(bytes: &[u8]) -> EgdResult<T> {
        serde_json::from_slice(bytes).map_err(|e| EgdError::Communication {
            reason: format!("deserialisation failed: {e}"),
        })
    }

    /// Sends `value` to `dest` with `tag`. Non-blocking (the paper's
    /// `MPI_Isend` of fitness values): the call only enqueues the message.
    pub fn send<T: Serialize>(&self, dest: usize, tag: u64, value: &T) -> EgdResult<()> {
        if dest >= self.size {
            return Err(EgdError::Communication {
                reason: format!("destination rank {dest} out of range (size {})", self.size),
            });
        }
        let payload = Self::serialize(value)?;
        self.stats.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .p2p_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.senders[dest]
            .send(Packet {
                from: self.rank,
                tag,
                payload,
            })
            .map_err(|_| EgdError::Communication {
                reason: format!("rank {dest} has shut down"),
            })
    }

    /// Receives the next message matching `from` and `tag` (blocking).
    pub fn recv<T: DeserializeOwned>(&mut self, from: usize, tag: u64) -> EgdResult<T> {
        // First look through messages that arrived out of order.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|p| p.from == from && p.tag == tag)
        {
            let packet = self.pending.remove(pos).expect("position just found");
            return Self::deserialize(&packet.payload);
        }
        loop {
            let packet = self.receiver.recv().map_err(|_| EgdError::Communication {
                reason: "world has shut down".to_string(),
            })?;
            if packet.from == from && packet.tag == tag {
                return Self::deserialize(&packet.payload);
            }
            self.pending.push_back(packet);
        }
    }

    /// Broadcast from `root`: the root passes `Some(value)`, every other rank
    /// passes `None` and receives the root's value. Mirrors `MPI_Bcast`.
    pub fn broadcast<T: Serialize + DeserializeOwned + Clone>(
        &mut self,
        root: usize,
        value: Option<T>,
    ) -> EgdResult<T> {
        const BCAST_TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            let value = value.ok_or_else(|| EgdError::Communication {
                reason: "broadcast root must supply a value".to_string(),
            })?;
            let payload = Self::serialize(&value)?;
            self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
            self.stats
                .broadcast_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            for dest in 0..self.size {
                if dest == self.rank {
                    continue;
                }
                self.senders[dest]
                    .send(Packet {
                        from: root,
                        tag: BCAST_TAG,
                        payload: payload.clone(),
                    })
                    .map_err(|_| EgdError::Communication {
                        reason: format!("rank {dest} has shut down"),
                    })?;
            }
            Ok(value)
        } else {
            self.recv(root, BCAST_TAG)
        }
    }

    /// Gather: every rank sends `value` to `root`; the root receives the
    /// values ordered by rank (its own value included), other ranks get an
    /// empty vector.
    pub fn gather<T: Serialize + DeserializeOwned + Clone>(
        &mut self,
        root: usize,
        value: &T,
    ) -> EgdResult<Vec<T>> {
        const GATHER_TAG: u64 = u64::MAX - 2;
        if self.rank == root {
            let mut values = Vec::with_capacity(self.size);
            for from in 0..self.size {
                if from == self.rank {
                    values.push(value.clone());
                } else {
                    values.push(self.recv(from, GATHER_TAG)?);
                }
            }
            Ok(values)
        } else {
            self.send(root, GATHER_TAG, value)?;
            Ok(Vec::new())
        }
    }

    /// All-reduce sum of a float vector: every rank contributes `values` and
    /// receives the element-wise sum across ranks.
    pub fn allreduce_sum(&mut self, values: &[f64]) -> EgdResult<Vec<f64>> {
        let gathered = self.gather(0, &values.to_vec())?;
        let summed = if self.rank == 0 {
            let mut total = vec![0.0; values.len()];
            for contribution in &gathered {
                if contribution.len() != values.len() {
                    return Err(EgdError::Communication {
                        reason: "allreduce contributions have mismatched lengths".to_string(),
                    });
                }
                for (t, v) in total.iter_mut().zip(contribution) {
                    *t += v;
                }
            }
            Some(total)
        } else {
            None
        };
        self.broadcast(0, summed)
    }

    /// Barrier: no rank leaves before every rank has entered.
    pub fn barrier(&mut self) -> EgdResult<()> {
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        let token = 0u8;
        let _ = self.gather(0, &token)?;
        let _ = self.broadcast(0, if self.rank == 0 { Some(token) } else { None })?;
        Ok(())
    }
}

/// The simulated world: spawns ranks and wires their communicators.
#[derive(Debug, Clone, Copy)]
pub struct SimWorld {
    num_ranks: usize,
}

impl SimWorld {
    /// Creates a world of `num_ranks` simulated ranks.
    pub fn new(num_ranks: usize) -> EgdResult<Self> {
        if num_ranks == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "a world needs at least one rank".to_string(),
            });
        }
        Ok(SimWorld { num_ranks })
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Runs `body` on every rank (each on its own OS thread) and returns the
    /// per-rank results in rank order, plus the world's traffic statistics.
    pub fn run<T, F>(&self, body: F) -> EgdResult<(Vec<T>, Arc<TrafficStats>)>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> EgdResult<T> + Send + Sync + 'static,
    {
        let stats = Arc::new(TrafficStats::default());
        let mut senders = Vec::with_capacity(self.num_ranks);
        let mut receivers = Vec::with_capacity(self.num_ranks);
        for _ in 0..self.num_ranks {
            let (tx, rx) = unbounded::<Packet>();
            senders.push(tx);
            receivers.push(rx);
        }
        let body = Arc::new(body);
        let mut handles = Vec::with_capacity(self.num_ranks);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let comm = Communicator {
                rank,
                size: self.num_ranks,
                senders: senders.clone(),
                receiver,
                pending: VecDeque::new(),
                stats: Arc::clone(&stats),
            };
            let body = Arc::clone(&body);
            handles.push(
                thread::Builder::new()
                    .name(format!("egd-rank-{rank}"))
                    .spawn(move || body(comm))
                    .map_err(|e| EgdError::Communication {
                        reason: format!("failed to spawn rank thread: {e}"),
                    })?,
            );
        }
        let mut results = Vec::with_capacity(self.num_ranks);
        for handle in handles {
            let result = handle.join().map_err(|_| EgdError::Communication {
                reason: "a rank thread panicked".to_string(),
            })??;
            results.push(result);
        }
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_validation() {
        assert!(SimWorld::new(0).is_err());
        assert_eq!(SimWorld::new(4).unwrap().num_ranks(), 4);
    }

    #[test]
    fn point_to_point_ring() {
        // Every rank sends its rank number to the next rank and checks what
        // it receives from the previous one.
        let world = SimWorld::new(5).unwrap();
        let (results, stats) = world
            .run(|mut comm| {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, 7, &comm.rank())?;
                let received: usize = comm.recv(prev, 7)?;
                Ok(received)
            })
            .unwrap();
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
        let (p2p, bytes, _, _, _) = stats.snapshot();
        assert_eq!(p2p, 5);
        assert!(bytes > 0);
    }

    #[test]
    fn broadcast_delivers_root_value() {
        let world = SimWorld::new(6).unwrap();
        let (results, stats) = world
            .run(|mut comm| {
                let value = if comm.rank() == 2 {
                    Some(vec![1.0f64, 2.0, 3.0])
                } else {
                    None
                };
                comm.broadcast(2, value)
            })
            .unwrap();
        for r in results {
            assert_eq!(r, vec![1.0, 2.0, 3.0]);
        }
        let (_, _, broadcasts, _, _) = stats.snapshot();
        assert_eq!(broadcasts, 1);
    }

    #[test]
    fn gather_orders_by_rank() {
        let world = SimWorld::new(4).unwrap();
        let (results, _) = world
            .run(|mut comm| {
                let value = comm.rank() * 10;
                comm.gather(0, &value)
            })
            .unwrap();
        assert_eq!(results[0], vec![0, 10, 20, 30]);
        for r in &results[1..] {
            assert!(r.is_empty());
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let world = SimWorld::new(4).unwrap();
        let (results, _) = world
            .run(|mut comm| {
                let values = vec![comm.rank() as f64, 1.0];
                comm.allreduce_sum(&values)
            })
            .unwrap();
        for r in results {
            assert_eq!(r, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn barrier_completes() {
        let world = SimWorld::new(8).unwrap();
        let (results, stats) = world
            .run(|mut comm| {
                comm.barrier()?;
                comm.barrier()?;
                Ok(comm.rank())
            })
            .unwrap();
        assert_eq!(results.len(), 8);
        let (_, _, _, _, barriers) = stats.snapshot();
        assert_eq!(barriers, 16);
    }

    #[test]
    fn out_of_order_messages_are_buffered() {
        // Rank 0 sends two differently-tagged messages; rank 1 receives them
        // in the opposite order.
        let world = SimWorld::new(2).unwrap();
        let (results, _) = world
            .run(|mut comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, &"first".to_string())?;
                    comm.send(1, 2, &"second".to_string())?;
                    Ok(("".to_string(), "".to_string()))
                } else {
                    let second: String = comm.recv(0, 2)?;
                    let first: String = comm.recv(0, 1)?;
                    Ok((first, second))
                }
            })
            .unwrap();
        assert_eq!(results[1], ("first".to_string(), "second".to_string()));
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let world = SimWorld::new(2).unwrap();
        let (results, _) = world
            .run(|comm| Ok(comm.send(5, 0, &1u32).is_err()))
            .unwrap();
        assert!(results.iter().all(|&r| r));
    }
}
