//! Timing traces of distributed runs.
//!
//! The paper's Fig. 5 splits the per-generation wall-clock time into
//! computation and communication. [`RankTiming`] holds that split for one
//! rank, [`GenerationTrace`] for all ranks of one generation, and
//! [`RunTrace`] aggregates an entire run so harnesses can print the same
//! series the paper plots. [`LoadBalance`] summarises the work-stealing
//! scheduler's view of the same run — steal counts and per-worker busy
//! time — so the Fig. 4 strong-scaling harnesses can report measured load
//! balance next to the modelled efficiency curves.

use egd_sched::SchedStats;
use serde::{Deserialize, Serialize};

/// Compute / communication split for one rank in one generation
/// (times in microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RankTiming {
    /// Time spent in game play.
    pub compute_us: f64,
    /// Time spent in communication (waiting included).
    pub comm_us: f64,
}

impl RankTiming {
    /// Creates a timing sample.
    pub fn new(compute_us: f64, comm_us: f64) -> Self {
        RankTiming {
            compute_us,
            comm_us,
        }
    }

    /// Total time of the sample.
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.comm_us
    }

    /// Adds another sample into this one.
    pub fn merge(&mut self, other: &RankTiming) {
        self.compute_us += other.compute_us;
        self.comm_us += other.comm_us;
    }
}

/// Per-rank timings of one generation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GenerationTrace {
    /// The generation index.
    pub generation: u64,
    /// One entry per rank (the Nature Agent is rank 0).
    pub ranks: Vec<RankTiming>,
}

impl GenerationTrace {
    /// The critical-path time of the generation: the slowest rank.
    pub fn critical_path_us(&self) -> f64 {
        self.ranks
            .iter()
            .map(RankTiming::total_us)
            .fold(0.0, f64::max)
    }

    /// Mean compute time across ranks.
    pub fn mean_compute_us(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.compute_us).sum::<f64>() / self.ranks.len() as f64
    }

    /// Mean communication time across ranks.
    pub fn mean_comm_us(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.comm_us).sum::<f64>() / self.ranks.len() as f64
    }

    /// Load imbalance: max compute time divided by mean compute time
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_compute_us();
        if mean == 0.0 {
            return 1.0;
        }
        let max = self.ranks.iter().map(|r| r.compute_us).fold(0.0, f64::max);
        max / mean
    }
}

/// Work-stealing load-balance summary of a run's parallel sections, derived
/// from the scheduler's [`SchedStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadBalance {
    /// Number of scheduler workers.
    pub workers: usize,
    /// Total successful steals.
    pub steals: u64,
    /// Busiest worker's accumulated busy time (µs) — the critical path an
    /// unloaded machine with `workers` cores would see.
    pub max_worker_us: f64,
    /// Mean per-worker busy time (µs).
    pub mean_worker_us: f64,
    /// Busiest over mean worker time (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl From<&SchedStats> for LoadBalance {
    fn from(stats: &SchedStats) -> Self {
        LoadBalance {
            workers: stats.num_workers(),
            steals: stats.steals,
            max_worker_us: stats.critical_path_ns() as f64 / 1e3,
            mean_worker_us: stats.mean_worker_ns() / 1e3,
            imbalance: stats.imbalance(),
        }
    }
}

/// Aggregated timings of an entire run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunTrace {
    /// Per-generation traces (possibly sub-sampled).
    pub generations: Vec<GenerationTrace>,
    /// Scheduler load-balance summary of the run's parallel sections, when
    /// the run executed on the work-stealing scheduler.
    pub load_balance: Option<LoadBalance>,
}

impl RunTrace {
    /// Adds a generation trace.
    pub fn push(&mut self, trace: GenerationTrace) {
        self.generations.push(trace);
    }

    /// Total critical-path wall-clock of the recorded generations (µs).
    pub fn total_critical_path_us(&self) -> f64 {
        self.generations
            .iter()
            .map(GenerationTrace::critical_path_us)
            .sum()
    }

    /// Total mean compute time across the run (µs).
    pub fn total_compute_us(&self) -> f64 {
        self.generations
            .iter()
            .map(GenerationTrace::mean_compute_us)
            .sum()
    }

    /// Total mean communication time across the run (µs).
    pub fn total_comm_us(&self) -> f64 {
        self.generations
            .iter()
            .map(GenerationTrace::mean_comm_us)
            .sum()
    }

    /// Fraction of the critical path spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_critical_path_us();
        if total == 0.0 {
            0.0
        } else {
            self.total_comm_us() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_timing_merge_and_total() {
        let mut a = RankTiming::new(10.0, 2.0);
        a.merge(&RankTiming::new(5.0, 3.0));
        assert_eq!(a.compute_us, 15.0);
        assert_eq!(a.comm_us, 5.0);
        assert_eq!(a.total_us(), 20.0);
    }

    #[test]
    fn generation_trace_statistics() {
        let trace = GenerationTrace {
            generation: 3,
            ranks: vec![
                RankTiming::new(10.0, 1.0),
                RankTiming::new(20.0, 1.0),
                RankTiming::new(30.0, 4.0),
            ],
        };
        assert_eq!(trace.critical_path_us(), 34.0);
        assert_eq!(trace.mean_compute_us(), 20.0);
        assert_eq!(trace.mean_comm_us(), 2.0);
        assert!((trace.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = GenerationTrace::default();
        assert_eq!(trace.critical_path_us(), 0.0);
        assert_eq!(trace.mean_compute_us(), 0.0);
        assert_eq!(trace.imbalance(), 1.0);
    }

    #[test]
    fn run_trace_aggregates() {
        let mut run = RunTrace::default();
        run.push(GenerationTrace {
            generation: 0,
            ranks: vec![RankTiming::new(10.0, 2.0)],
        });
        run.push(GenerationTrace {
            generation: 1,
            ranks: vec![RankTiming::new(8.0, 4.0)],
        });
        assert_eq!(run.total_critical_path_us(), 24.0);
        assert_eq!(run.total_compute_us(), 18.0);
        assert_eq!(run.total_comm_us(), 6.0);
        assert!((run.comm_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_run_trace() {
        let run = RunTrace::default();
        assert_eq!(run.comm_fraction(), 0.0);
        assert_eq!(run.total_critical_path_us(), 0.0);
        assert!(run.load_balance.is_none());
    }

    #[test]
    fn load_balance_from_sched_stats() {
        use egd_sched::WorkerStats;
        let stats = SchedStats {
            workers: vec![
                WorkerStats {
                    busy_ns: 3_000_000,
                    ..Default::default()
                },
                WorkerStats {
                    busy_ns: 1_000_000,
                    ..Default::default()
                },
            ],
            steals: 5,
            ..Default::default()
        };
        let balance = LoadBalance::from(&stats);
        assert_eq!(balance.workers, 2);
        assert_eq!(balance.steals, 5);
        assert_eq!(balance.max_worker_us, 3_000.0);
        assert_eq!(balance.mean_worker_us, 2_000.0);
        assert!((balance.imbalance - 1.5).abs() < 1e-12);
    }
}
