//! Timing traces of distributed runs.
//!
//! The paper's Fig. 5 splits the per-generation wall-clock time into
//! computation and communication. [`RankTiming`] holds that split for one
//! rank, [`GenerationTrace`] for all ranks of one generation, and
//! [`RunTrace`] aggregates an entire run so harnesses can print the same
//! series the paper plots.

use serde::{Deserialize, Serialize};

/// Compute / communication split for one rank in one generation
/// (times in microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RankTiming {
    /// Time spent in game play.
    pub compute_us: f64,
    /// Time spent in communication (waiting included).
    pub comm_us: f64,
}

impl RankTiming {
    /// Creates a timing sample.
    pub fn new(compute_us: f64, comm_us: f64) -> Self {
        RankTiming {
            compute_us,
            comm_us,
        }
    }

    /// Total time of the sample.
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.comm_us
    }

    /// Adds another sample into this one.
    pub fn merge(&mut self, other: &RankTiming) {
        self.compute_us += other.compute_us;
        self.comm_us += other.comm_us;
    }
}

/// Per-rank timings of one generation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GenerationTrace {
    /// The generation index.
    pub generation: u64,
    /// One entry per rank (the Nature Agent is rank 0).
    pub ranks: Vec<RankTiming>,
}

impl GenerationTrace {
    /// The critical-path time of the generation: the slowest rank.
    pub fn critical_path_us(&self) -> f64 {
        self.ranks
            .iter()
            .map(RankTiming::total_us)
            .fold(0.0, f64::max)
    }

    /// Mean compute time across ranks.
    pub fn mean_compute_us(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.compute_us).sum::<f64>() / self.ranks.len() as f64
    }

    /// Mean communication time across ranks.
    pub fn mean_comm_us(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.comm_us).sum::<f64>() / self.ranks.len() as f64
    }

    /// Load imbalance: max compute time divided by mean compute time
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_compute_us();
        if mean == 0.0 {
            return 1.0;
        }
        let max = self.ranks.iter().map(|r| r.compute_us).fold(0.0, f64::max);
        max / mean
    }
}

/// Aggregated timings of an entire run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunTrace {
    /// Per-generation traces (possibly sub-sampled).
    pub generations: Vec<GenerationTrace>,
}

impl RunTrace {
    /// Adds a generation trace.
    pub fn push(&mut self, trace: GenerationTrace) {
        self.generations.push(trace);
    }

    /// Total critical-path wall-clock of the recorded generations (µs).
    pub fn total_critical_path_us(&self) -> f64 {
        self.generations
            .iter()
            .map(GenerationTrace::critical_path_us)
            .sum()
    }

    /// Total mean compute time across the run (µs).
    pub fn total_compute_us(&self) -> f64 {
        self.generations
            .iter()
            .map(GenerationTrace::mean_compute_us)
            .sum()
    }

    /// Total mean communication time across the run (µs).
    pub fn total_comm_us(&self) -> f64 {
        self.generations
            .iter()
            .map(GenerationTrace::mean_comm_us)
            .sum()
    }

    /// Fraction of the critical path spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_critical_path_us();
        if total == 0.0 {
            0.0
        } else {
            self.total_comm_us() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_timing_merge_and_total() {
        let mut a = RankTiming::new(10.0, 2.0);
        a.merge(&RankTiming::new(5.0, 3.0));
        assert_eq!(a.compute_us, 15.0);
        assert_eq!(a.comm_us, 5.0);
        assert_eq!(a.total_us(), 20.0);
    }

    #[test]
    fn generation_trace_statistics() {
        let trace = GenerationTrace {
            generation: 3,
            ranks: vec![
                RankTiming::new(10.0, 1.0),
                RankTiming::new(20.0, 1.0),
                RankTiming::new(30.0, 4.0),
            ],
        };
        assert_eq!(trace.critical_path_us(), 34.0);
        assert_eq!(trace.mean_compute_us(), 20.0);
        assert_eq!(trace.mean_comm_us(), 2.0);
        assert!((trace.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = GenerationTrace::default();
        assert_eq!(trace.critical_path_us(), 0.0);
        assert_eq!(trace.mean_compute_us(), 0.0);
        assert_eq!(trace.imbalance(), 1.0);
    }

    #[test]
    fn run_trace_aggregates() {
        let mut run = RunTrace::default();
        run.push(GenerationTrace {
            generation: 0,
            ranks: vec![RankTiming::new(10.0, 2.0)],
        });
        run.push(GenerationTrace {
            generation: 1,
            ranks: vec![RankTiming::new(8.0, 4.0)],
        });
        assert_eq!(run.total_critical_path_us(), 24.0);
        assert_eq!(run.total_compute_us(), 18.0);
        assert_eq!(run.total_comm_us(), 6.0);
        assert!((run.comm_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_run_trace() {
        let run = RunTrace::default();
        assert_eq!(run.comm_fraction(), 0.0);
        assert_eq!(run.total_critical_path_us(), 0.0);
    }
}
