//! The distributed algorithm, executed over the simulated communicator.
//!
//! This is the paper's §V protocol made runnable: rank 0 is the Nature Agent
//! and record keeper, every other rank owns a contiguous block of SSets and
//! keeps a full copy of the population's strategy view. Every rank is a
//! *cooperatively scheduled task* on [`SimWorld`]'s worker pool (see
//! [`crate::taskexec`]): blocking collectives are `.await` points that yield
//! the task, so a world of 10³ ranks runs on a handful of pool threads — the
//! thread-per-rank backend this replaced topped out around 10² ranks.
//! Per generation:
//!
//! 1. every worker plays the games of its own SSets against all opponent
//!    strategies (locally, no communication — §V-A),
//! 2. the Nature Agent broadcasts which SSets (if any) were selected for
//!    pairwise comparison (the collective-network announcement),
//! 3. the owners of the selected SSets return their fitness — either as
//!    non-blocking point-to-point messages (the optimised protocol) or via a
//!    blocking all-rank gather (the paper's "Original" communication),
//! 4. the Nature Agent resolves learning and mutation and broadcasts the
//!    resulting [`GenerationDecision`]; every rank applies it to its local
//!    strategy view so all views stay consistent.
//!
//! The executor produces populations identical to the sequential reference —
//! verified by tests — and reports the traffic statistics that feed the
//! Fig. 3 communication-optimisation comparison.

use crate::cost::CommMode;
use crate::mpi::{Communicator, SimWorld, TrafficSnapshot};
use crate::trace::{GenerationTrace, RankTiming, RunTrace};
use egd_core::config::SimulationConfig;
use egd_core::dynamics::GenerationDecision;
use egd_core::error::{EgdError, EgdResult};
use egd_core::population::Population;
use egd_core::simulation::{FitnessMode, PairEvaluator, SimulationState};
use egd_core::sset::OpponentPolicy;
use egd_obs::{SpanKind, SpanTimer};
use egd_parallel::grouping::StrategyGrouping;
use egd_parallel::partition::SSetPartition;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

/// Configuration of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Number of worker ranks (the Nature Agent adds one more rank).
    pub workers: usize,
    /// How fitness values return to the Nature Agent.
    pub comm_mode: CommMode,
    /// How pair payoffs are obtained.
    pub fitness_mode: FitnessMode,
    /// Record a timing trace every `trace_interval` generations
    /// (0 disables tracing).
    pub trace_interval: u64,
    /// Size of the pool multiplexing the rank tasks
    /// (`0` = available parallelism). Independent of `workers`: thousands of
    /// ranks can share a single pool thread.
    pub pool_threads: usize,
}

impl DistributedConfig {
    /// A configuration with `workers` worker ranks and default options.
    pub fn with_workers(workers: usize) -> Self {
        DistributedConfig {
            workers,
            comm_mode: CommMode::NonBlocking,
            fitness_mode: FitnessMode::Simulated,
            trace_interval: 0,
            pool_threads: 0,
        }
    }

    /// Sets the rank-task pool size (`0` = available parallelism).
    pub fn pool_threads(mut self, pool_threads: usize) -> Self {
        self.pool_threads = pool_threads;
        self
    }

    /// Sets the communication mode.
    pub fn comm_mode(mut self, mode: CommMode) -> Self {
        self.comm_mode = mode;
        self
    }

    /// Sets the fitness mode.
    pub fn fitness_mode(mut self, mode: FitnessMode) -> Self {
        self.fitness_mode = mode;
        self
    }

    /// Sets the trace interval.
    pub fn trace_interval(mut self, interval: u64) -> Self {
        self.trace_interval = interval;
        self
    }
}

/// Summary of a completed distributed run.
#[derive(Debug, Clone)]
pub struct DistributedRunSummary {
    /// The final population (identical on every rank).
    pub population: Population,
    /// Number of generations simulated.
    pub generations: u64,
    /// Number of generations in which the population changed.
    pub generations_with_change: u64,
    /// Traffic counters of the whole world (see [`TrafficSnapshot`]).
    pub traffic: TrafficSnapshot,
    /// Per-generation timing traces (sampled at the configured interval).
    pub trace: RunTrace,
    /// Number of ranks (workers + Nature Agent).
    pub ranks: usize,
}

impl DistributedRunSummary {
    /// The unified metrics view of the run: the world's collective traffic
    /// plus one per-generation row per sampled timing trace. Mergeable with
    /// a scheduled run's [`egd_obs::MetricsSnapshot`] — the two backends then
    /// appear on one record.
    pub fn metrics(&self) -> egd_obs::MetricsSnapshot {
        let mut snap = egd_obs::MetricsSnapshot::labelled("distributed");
        snap.run.ranks = self.ranks as u64;
        snap.run.generations = self.generations;
        snap.traffic = self.traffic.metrics();
        for generation in &self.trace.generations {
            snap.record_generation(egd_obs::GenerationMetrics {
                generation: generation.generation,
                items: generation.ranks.len() as u64,
                steals: 0,
                busy_ns: (generation.critical_path_us() * 1e3) as u64,
                compute_us: generation.mean_compute_us(),
                comm_us: generation.mean_comm_us(),
                changed: false,
            });
        }
        snap
    }
}

/// Per-rank result returned from inside the simulated world.
#[derive(Debug)]
pub(crate) struct RankResult {
    pub(crate) population: Population,
    pub(crate) changes: u64,
    pub(crate) timings: Vec<(u64, RankTiming)>,
}

/// Where a rank's per-generation loop starts — generation 0 with the initial
/// population (the default), or a checkpointed state a supervisor is
/// resuming from.
#[derive(Debug, Default, Clone)]
pub(crate) struct RankStart {
    pub(crate) generation: u64,
    pub(crate) changes: u64,
    /// `None` means the config's initial population.
    pub(crate) population: Option<Population>,
}

/// Fault-tolerance hooks a supervisor threads into the rank bodies:
/// a checkpoint store with its cadence, plus a progress marker rank 0
/// publishes so the supervisor can account replayed generations.
pub(crate) struct FaultContext {
    pub(crate) store: Arc<dyn egd_fault::CheckpointStore>,
    /// Checkpoint every `interval` generations (0 disables checkpointing).
    pub(crate) interval: u64,
    /// Last generation rank 0 started, updated as the run advances.
    pub(crate) progress: Arc<AtomicU64>,
}

/// A future that yields to the worker pool `remaining` times before
/// completing — the injected slow-rank stall. It re-wakes itself on every
/// poll, so the cooperative stall detector (which only flags tasks with no
/// pending wake-ups) never mistakes the stall for a deadlock.
struct Yields {
    remaining: u32,
}

impl Future for Yields {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.remaining == 0 {
            Poll::Ready(())
        } else {
            self.remaining -= 1;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// The distributed executor.
#[derive(Debug, Clone)]
pub struct DistributedExecutor {
    sim_config: SimulationConfig,
    dist_config: DistributedConfig,
}

impl DistributedExecutor {
    /// Creates an executor, validating the configurations.
    pub fn new(sim_config: SimulationConfig, dist_config: DistributedConfig) -> EgdResult<Self> {
        sim_config.validate()?;
        if dist_config.workers == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "the distributed executor needs at least one worker rank".to_string(),
            });
        }
        if dist_config.workers > sim_config.num_ssets {
            return Err(EgdError::InvalidTopology {
                reason: format!(
                    "{} workers cannot own {} SSets (at most one worker per SSet)",
                    dist_config.workers, sim_config.num_ssets
                ),
            });
        }
        Ok(DistributedExecutor {
            sim_config,
            dist_config,
        })
    }

    /// The simulation configuration.
    pub fn sim_config(&self) -> &SimulationConfig {
        &self.sim_config
    }

    /// The distributed configuration.
    pub fn dist_config(&self) -> &DistributedConfig {
        &self.dist_config
    }

    /// Runs the full simulation across the simulated ranks (each a
    /// cooperatively scheduled task on the world's pool).
    pub fn run(&self) -> EgdResult<DistributedRunSummary> {
        let sim_config = Arc::new(self.sim_config.clone());
        let dist_config = self.dist_config;
        let world = SimWorld::new(dist_config.workers + 1)?.workers(dist_config.pool_threads);

        let (results, stats) = world.run(move |comm| {
            let sim_config = Arc::clone(&sim_config);
            async move { run_rank(comm, sim_config, dist_config).await }
        })?;

        assemble_summary(results, stats.snapshot(), self.sim_config.generations)
    }
}

/// Checks per-rank consistency and assembles the run summary — shared
/// between the plain executor and the fault supervisor (which assembles the
/// summary of its final, successful attempt).
pub(crate) fn assemble_summary(
    mut results: Vec<RankResult>,
    traffic: TrafficSnapshot,
    generations: u64,
) -> EgdResult<DistributedRunSummary> {
    let ranks = results.len();
    // Every rank must hold the same final population.
    let reference = results[0].population.clone();
    for (rank, result) in results.iter().enumerate() {
        if result.population != reference {
            return Err(EgdError::Communication {
                reason: format!("rank {rank} ended with an inconsistent strategy view"),
            });
        }
    }

    let nature_result = results.remove(0);
    let mut trace = RunTrace::default();
    // Assemble per-generation traces across ranks (nature first).
    let mut by_generation: HashMap<u64, Vec<RankTiming>> = HashMap::new();
    for (generation, timing) in &nature_result.timings {
        by_generation.entry(*generation).or_default().push(*timing);
    }
    for result in &results {
        for (generation, timing) in &result.timings {
            by_generation.entry(*generation).or_default().push(*timing);
        }
    }
    let mut sampled: Vec<u64> = by_generation.keys().copied().collect();
    sampled.sort_unstable();
    for generation in sampled {
        trace.push(GenerationTrace {
            generation,
            ranks: by_generation.remove(&generation).unwrap_or_default(),
        });
    }

    Ok(DistributedRunSummary {
        population: reference,
        generations,
        generations_with_change: nature_result.changes,
        traffic,
        trace,
        ranks,
    })
}

/// Tags used by the per-generation protocol.
fn teacher_tag(generation: u64) -> u64 {
    generation * 4
}
fn learner_tag(generation: u64) -> u64 {
    generation * 4 + 1
}

/// The per-rank program — an async task body whose collectives yield the
/// task instead of parking an OS thread.
async fn run_rank(
    comm: Communicator,
    config: Arc<SimulationConfig>,
    dist: DistributedConfig,
) -> EgdResult<RankResult> {
    run_rank_from(comm, config, dist, RankStart::default(), None).await
}

/// [`run_rank`] generalised over its starting state and fault hooks: a
/// supervisor resumes a failed run by replaying every rank from a common
/// checkpoint ([`RankStart`]) under a fresh world epoch, and threads in a
/// [`FaultContext`] for checkpointing and progress accounting. Fault checks
/// cost one relaxed atomic load per generation when no plan is armed.
pub(crate) async fn run_rank_from(
    mut comm: Communicator,
    config: Arc<SimulationConfig>,
    dist: DistributedConfig,
    start: RankStart,
    fault: Option<Arc<FaultContext>>,
) -> EgdResult<RankResult> {
    let rank = comm.rank();
    let num_workers = comm.size() - 1;
    let nature = config.nature_agent()?;
    let mut population = match start.population {
        Some(population) => population,
        None => config.initial_population()?,
    };
    let partition = SSetPartition::new(config.num_ssets, num_workers)?;
    let mut evaluator = PairEvaluator::new(&config, dist.fitness_mode)?;
    let mut changes = start.changes;
    let mut timings = Vec::new();

    for generation in start.generation..config.generations {
        if egd_fault::injection_armed() {
            let domain = comm.fault_domain();
            if let Some((event, yields)) = egd_fault::slow_fault(domain, rank, generation) {
                if let Some(span) = SpanTimer::start_on(rank as u32, SpanKind::FaultInjected) {
                    span.finish(event as u64);
                }
                Yields { remaining: yields }.await;
            }
            if let Some(event) = egd_fault::crash_fault(domain, rank, generation) {
                if let Some(span) = SpanTimer::start_on(rank as u32, SpanKind::FaultInjected) {
                    span.finish(event as u64);
                }
                return Err(EgdError::Communication {
                    reason: format!(
                        "injected fault #{event}: rank {rank} crashed at generation {generation}"
                    ),
                });
            }
        }
        if let Some(ctx) = &fault {
            if ctx.interval > 0 && generation % ctx.interval == 0 {
                let state = SimulationState::capture(config.seed, generation, changes, &population);
                let span = SpanTimer::start_on(rank as u32, SpanKind::Checkpoint);
                ctx.store.save(rank, generation, &state.to_bytes()?)?;
                if let Some(span) = span {
                    span.finish(generation);
                }
            }
            if rank == 0 {
                ctx.progress.store(generation, Ordering::Relaxed);
            }
        }

        let mut compute_us = 0.0f64;
        let mut comm_us = 0.0f64;

        // --- Game dynamics: workers play the games of their own SSets. ---
        let block_fitness: Vec<(usize, f64)> = if rank == 0 {
            Vec::new()
        } else {
            let start = Instant::now();
            let block = partition.block(rank - 1);
            let fitness =
                fitness_for_block(&population, &mut evaluator, generation, block.clone())?;
            compute_us += start.elapsed().as_secs_f64() * 1e6;
            block.zip(fitness).collect()
        };

        // --- Population dynamics. ---
        let comm_start = Instant::now();

        // 1. The Nature Agent announces the PC selection (if any).
        let selection: Option<(usize, usize)> = if rank == 0 {
            comm.broadcast(0, Some(nature.select_pc_pair(generation, config.num_ssets)))
                .await?
        } else {
            comm.broadcast(0, None).await?
        };

        // 2. Fitness values return to the Nature Agent.
        let mut fitness_view = vec![0.0f64; config.num_ssets];
        match dist.comm_mode {
            CommMode::NonBlocking => {
                if let Some((teacher, learner)) = selection {
                    let teacher_owner = partition.owner_of(teacher) + 1;
                    let learner_owner = partition.owner_of(learner) + 1;
                    if rank == teacher_owner {
                        let value = lookup_fitness(&block_fitness, teacher);
                        comm.send(0, teacher_tag(generation), &value)?;
                    }
                    if rank == learner_owner {
                        let value = lookup_fitness(&block_fitness, learner);
                        comm.send(0, learner_tag(generation), &value)?;
                    }
                    if rank == 0 {
                        fitness_view[teacher] =
                            comm.recv(teacher_owner, teacher_tag(generation)).await?;
                        fitness_view[learner] =
                            comm.recv(learner_owner, learner_tag(generation)).await?;
                    }
                }
            }
            CommMode::Blocking => {
                // Every rank participates in a gather of its whole block,
                // every generation with a selection — the unoptimised
                // protocol of Fig. 3.
                if selection.is_some() {
                    let gathered = comm.gather(0, &block_fitness).await?;
                    if rank == 0 {
                        for block in gathered {
                            for (sset, fitness) in block {
                                fitness_view[sset] = fitness;
                            }
                        }
                    }
                }
            }
        }

        // 3. The Nature Agent decides and broadcasts the decision.
        let decision: GenerationDecision = if rank == 0 {
            comm.broadcast(0, Some(nature.decide(generation, &fitness_view)))
                .await?
        } else {
            comm.broadcast(0, None).await?
        };

        // 4. Every rank applies the decision to its local strategy view.
        nature.apply(&decision, &mut population)?;
        if decision.changes_population() {
            changes += 1;
        }
        comm_us += comm_start.elapsed().as_secs_f64() * 1e6;

        if dist.trace_interval > 0 && generation % dist.trace_interval == 0 {
            timings.push((generation, RankTiming::new(compute_us, comm_us)));
        }
    }

    Ok(RankResult {
        population,
        changes,
        timings,
    })
}

/// Looks up the fitness of an SSet in a worker's block results.
fn lookup_fitness(block: &[(usize, f64)], sset: usize) -> f64 {
    block
        .iter()
        .find(|(index, _)| *index == sset)
        .map(|(_, fitness)| *fitness)
        .unwrap_or(0.0)
}

/// Computes the fitness of the SSets in `block` only, using the same
/// strategy-grouping scheme (and therefore the exact same random streams and
/// cache keys) as the sequential reference, so that distributed and
/// sequential runs agree bit-for-bit.
fn fitness_for_block(
    population: &Population,
    evaluator: &mut PairEvaluator,
    generation: u64,
    block: std::ops::Range<usize>,
) -> EgdResult<Vec<f64>> {
    let strategies = population.strategies();

    // Global grouping (identical on every rank because every rank holds the
    // same strategy view).
    let StrategyGrouping {
        group_of,
        group_rep,
        group_count,
    } = StrategyGrouping::of(strategies);
    let num_groups = group_rep.len();
    let include_self = matches!(
        population.opponent_policy(),
        OpponentPolicy::AllIncludingSelf
    );

    // Only the pay-matrix rows needed by this block are evaluated: these are
    // exactly the games the block's agents would play.
    let mut row_cache: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut fitness = Vec::with_capacity(block.len());
    for i in block {
        let g = group_of[i];
        if let std::collections::hash_map::Entry::Vacant(e) = row_cache.entry(g) {
            let mut row = vec![0.0; num_groups];
            for (h, row_value) in row.iter_mut().enumerate() {
                let (gi, gj) = (group_rep[g], group_rep[h]);
                let (to_g, _) =
                    evaluator.pair_payoff(gi, &strategies[gi], gj, &strategies[gj], generation)?;
                *row_value = to_g;
            }
            e.insert(row);
        }
        let row = &row_cache[&g];
        let mut total = 0.0;
        for h in 0..num_groups {
            total += group_count[h] * row[h];
        }
        if !include_self {
            total -= row[g];
        }
        fitness.push(total);
    }
    Ok(fitness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::simulation::Simulation;
    use egd_core::state::MemoryDepth;

    fn sim_config(seed: u64, generations: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(12)
            .agents_per_sset(2)
            .rounds_per_game(20)
            .generations(generations)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(
            DistributedExecutor::new(sim_config(1, 10), DistributedConfig::with_workers(0))
                .is_err()
        );
        assert!(
            DistributedExecutor::new(sim_config(1, 10), DistributedConfig::with_workers(13))
                .is_err()
        );
        assert!(
            DistributedExecutor::new(sim_config(1, 10), DistributedConfig::with_workers(4)).is_ok()
        );
    }

    #[test]
    fn distributed_run_matches_sequential_reference() {
        let cfg = sim_config(31, 40);
        let mut sequential = Simulation::new(cfg.clone()).unwrap();
        sequential.run();

        let executor = DistributedExecutor::new(cfg, DistributedConfig::with_workers(4)).unwrap();
        let summary = executor.run().unwrap();
        assert_eq!(&summary.population, sequential.population());
        assert_eq!(summary.ranks, 5);
        assert_eq!(summary.generations, 40);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let cfg = sim_config(32, 30);
        let one = DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(1))
            .unwrap()
            .run()
            .unwrap();
        let many = DistributedExecutor::new(cfg, DistributedConfig::with_workers(6))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(one.population, many.population);
        assert_eq!(one.generations_with_change, many.generations_with_change);
    }

    #[test]
    fn blocking_and_nonblocking_protocols_agree_but_traffic_differs() {
        let cfg = sim_config(33, 30);
        let nonblocking = DistributedExecutor::new(
            cfg.clone(),
            DistributedConfig::with_workers(4).comm_mode(CommMode::NonBlocking),
        )
        .unwrap()
        .run()
        .unwrap();
        let blocking = DistributedExecutor::new(
            cfg,
            DistributedConfig::with_workers(4).comm_mode(CommMode::Blocking),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(nonblocking.population, blocking.population);
        // The blocking protocol gathers every worker's whole block every
        // selected generation; the non-blocking one sends two point-to-point
        // fitness values instead.
        assert!(blocking.traffic.gathers > nonblocking.traffic.gathers);
        assert!(blocking.traffic.gather_bytes > nonblocking.traffic.gather_bytes);
        assert!(nonblocking.traffic.p2p_messages > blocking.traffic.p2p_messages);
    }

    #[test]
    fn noisy_distributed_run_matches_sequential() {
        let cfg = SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(10)
            .agents_per_sset(2)
            .rounds_per_game(15)
            .generations(25)
            .noise(0.05)
            .seed(34)
            .build()
            .unwrap();
        let mut sequential = Simulation::new(cfg.clone()).unwrap();
        sequential.run();
        let summary = DistributedExecutor::new(cfg, DistributedConfig::with_workers(3))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(&summary.population, sequential.population());
    }

    #[test]
    fn traces_are_recorded_at_interval() {
        let cfg = sim_config(35, 20);
        let summary =
            DistributedExecutor::new(cfg, DistributedConfig::with_workers(3).trace_interval(5))
                .unwrap()
                .run()
                .unwrap();
        // Generations 0, 5, 10, 15 are traced, each with 4 rank samples.
        assert_eq!(summary.trace.generations.len(), 4);
        for generation_trace in &summary.trace.generations {
            assert_eq!(generation_trace.ranks.len(), 4);
        }
        assert!(summary.trace.total_critical_path_us() > 0.0);
    }

    #[test]
    fn metrics_snapshot_carries_traffic_and_generations() {
        let cfg = sim_config(37, 20);
        let summary =
            DistributedExecutor::new(cfg, DistributedConfig::with_workers(3).trace_interval(5))
                .unwrap()
                .run()
                .unwrap();
        let metrics = summary.metrics();
        assert_eq!(metrics.run.label, "distributed");
        assert_eq!(metrics.run.ranks, 4);
        assert_eq!(metrics.run.generations, 20);
        assert_eq!(metrics.traffic.broadcasts, summary.traffic.broadcasts);
        assert!(metrics.traffic.broadcasts > 0);
        // One row per sampled generation trace (0, 5, 10, 15).
        assert_eq!(metrics.generations.len(), 4);
        assert!(metrics.generations.iter().all(|g| g.items == 4));
        assert!(metrics.generations.iter().all(|g| g.compute_us > 0.0));
    }

    #[test]
    fn traffic_counts_broadcasts_per_generation() {
        let cfg = sim_config(36, 10);
        let summary = DistributedExecutor::new(cfg, DistributedConfig::with_workers(2))
            .unwrap()
            .run()
            .unwrap();
        // Two broadcasts per generation: the PC announcement and the decision.
        assert_eq!(summary.traffic.broadcasts, 20);
    }
}
