//! A cooperative executor for simulated-rank tasks.
//!
//! The retired thread-per-rank backend spawned one OS thread per simulated
//! rank and parked it inside every blocking collective, which caps worlds at
//! roughly 10² ranks before thread creation and context switching dominate.
//! This module multiplexes *rank-count ≫ worker-count*: every rank body is a
//! [`Future`] and a small fixed pool of workers polls whichever ranks are
//! runnable. A blocking collective is expressed as a task yield — the rank's
//! future returns [`Poll::Pending`] after registering a waker with its
//! mailbox — so a waiting rank costs a few hundred bytes of state instead of
//! an OS thread, and 10³–10⁴-rank protocol runs execute on a handful of
//! workers (or a single one, cooperatively, on a one-core host).
//!
//! The executor is deliberately tiny and safe (no `unsafe`, no external
//! runtime): a ready queue under one mutex, one atomic state flag per task
//! (`idle / queued / running / notified / done`) so a task is never polled by
//! two workers at once and wake-ups during a poll are never lost, and
//! [`std::task::Wake`] for waker plumbing.
//!
//! Failure semantics matter more than throughput here:
//!
//! * a **panicking task** is caught with the failing task's index and panic
//!   payload (workers shut down cleanly — the pool is not poisoned, and the
//!   world reports "rank N panicked: …" instead of a bare join error);
//! * a **stalled world** — every task pending, nothing runnable, nothing
//!   running — is a protocol deadlock (a rank awaiting a message nobody will
//!   ever send). Because messages are only sent from inside task polls, this
//!   condition is stable and detected exactly; the blocked task indices are
//!   reported.

use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// A task body: boxed so worlds of heterogeneous closures share one type.
/// (Originally "one future per simulated rank"; `egd-serve` reuses the same
/// executor with one future per simulation *session*.)
pub type TaskFuture<R> = Pin<Box<dyn Future<Output = R> + Send>>;

/// Why a world stopped before every task completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A task body panicked; `message` is the stringified panic payload.
    Panicked {
        /// Index of the panicking task (the rank).
        task: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// Every remaining task is blocked waiting for an event no running task
    /// can produce — a protocol deadlock.
    Stalled {
        /// Indices of the tasks that never completed.
        waiting: Vec<usize>,
    },
}

/// Extracts a printable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-task poll states (stored in an `AtomicU8`).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

struct ExecState {
    ready: VecDeque<usize>,
    running: usize,
    done: usize,
    fatal: Option<ExecError>,
}

struct Exec {
    state: Mutex<ExecState>,
    wakeup: Condvar,
    flags: Vec<AtomicU8>,
}

impl Exec {
    /// Makes task `id` runnable (called by wakers, from any thread).
    fn schedule(&self, id: usize) {
        loop {
            match self.flags[id].load(Ordering::Acquire) {
                IDLE => {
                    if self.flags[id]
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let mut state = self.state.lock().expect("executor state poisoned");
                        state.ready.push_back(id);
                        drop(state);
                        self.wakeup.notify_one();
                        return;
                    }
                }
                RUNNING => {
                    if self.flags[id]
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already notified, or already complete:
                // nothing to do.
                _ => return,
            }
        }
    }
}

struct TaskWaker {
    id: usize,
    exec: Arc<Exec>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.exec.schedule(self.id);
    }
}

/// Runs `tasks` to completion on up to `workers` pool threads.
///
/// Returns the per-task results in task order. On failure the completed
/// prefix is still returned (as `Some`) next to the error so callers can
/// surface a root-cause task error instead of a generic deadlock report.
pub fn run_tasks<R: Send>(
    workers: usize,
    tasks: Vec<TaskFuture<R>>,
) -> (Vec<Option<R>>, Option<ExecError>) {
    run_tasks_observed(workers, tasks, |_| {})
}

/// A future that yields the worker exactly once, then completes. Cooperative
/// task bodies (rank protocol loops, `egd-serve` session generation loops)
/// await this between work quanta so tasks ≫ workers interleave fairly
/// instead of one task monopolising a worker to completion.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
#[must_use = "futures do nothing unless awaited"]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // Requeue ourselves before suspending: the wake-during-poll path
            // in the executor guarantees this is never lost.
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// [`run_tasks`] with a stall observer: `on_stall` is invoked with the
/// blocked task indices *at detection time*, while the suspended futures (and
/// whatever diagnostic state they hold, e.g. pending-operation records) are
/// still alive — by the time `run_tasks` returns they have been dropped.
pub fn run_tasks_observed<R: Send, F: Fn(&[usize]) + Sync>(
    workers: usize,
    tasks: Vec<TaskFuture<R>>,
    on_stall: F,
) -> (Vec<Option<R>>, Option<ExecError>) {
    let n = tasks.len();
    if n == 0 {
        return (Vec::new(), None);
    }
    let exec = Arc::new(Exec {
        state: Mutex::new(ExecState {
            ready: (0..n).collect(),
            running: 0,
            done: 0,
            fatal: None,
        }),
        wakeup: Condvar::new(),
        flags: (0..n).map(|_| AtomicU8::new(QUEUED)).collect(),
    });
    let slots: Vec<Mutex<Option<TaskFuture<R>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // One waker per task for the whole run: task ids are stable, so polls
    // (thousands per generation at 10^4 ranks) clone instead of allocating.
    let wakers: Vec<Waker> = (0..n)
        .map(|id| {
            Waker::from(Arc::new(TaskWaker {
                id,
                exec: Arc::clone(&exec),
            }))
        })
        .collect();

    let workers = workers.max(1).min(n);
    let exec_ref = &exec;
    let slots_ref = &slots;
    let results_ref = &results;
    let wakers_ref = &wakers;
    let on_stall_ref = &on_stall;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                worker_loop(
                    exec_ref,
                    slots_ref,
                    results_ref,
                    wakers_ref,
                    n,
                    on_stall_ref,
                );
                // The scope join unblocks when this closure returns, which
                // can be before thread-local destructors run — flush the
                // span buffer now so a collect() after run() sees our spans.
                egd_obs::flush_thread();
            });
        }
    });

    let fatal = exec
        .state
        .lock()
        .expect("executor state poisoned")
        .fatal
        .clone();
    let out: Vec<Option<R>> = results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned"))
        .collect();
    (out, fatal)
}

fn worker_loop<R: Send, F: Fn(&[usize]) + Sync>(
    exec: &Arc<Exec>,
    slots: &[Mutex<Option<TaskFuture<R>>>],
    results: &[Mutex<Option<R>>],
    wakers: &[Waker],
    n: usize,
    on_stall: &F,
) {
    loop {
        // Acquire a runnable task, or detect completion / failure / stall.
        let id = {
            let mut state = exec.state.lock().expect("executor state poisoned");
            loop {
                if state.fatal.is_some() || state.done == n {
                    return;
                }
                if let Some(id) = state.ready.pop_front() {
                    state.running += 1;
                    break id;
                }
                if state.running == 0 {
                    // Nothing runnable, nothing running, not everyone done:
                    // sends only happen inside polls, so no future wake-up
                    // can arrive. The world is deadlocked.
                    let waiting: Vec<usize> = (0..n)
                        .filter(|&t| exec.flags[t].load(Ordering::Acquire) != DONE)
                        .collect();
                    state.fatal = Some(ExecError::Stalled {
                        waiting: waiting.clone(),
                    });
                    drop(state);
                    exec.wakeup.notify_all();
                    // Observe the stall before returning: the blocked futures
                    // are still parked in their slots here, so the callback
                    // can read diagnostic state they own.
                    on_stall(&waiting);
                    return;
                }
                state = exec.wakeup.wait(state).expect("executor state poisoned");
            }
        };

        exec.flags[id].store(RUNNING, Ordering::Release);
        let mut cx = Context::from_waker(&wakers[id]);
        // One `RankTask` span per poll slice, on the task's own track: the
        // exported timeline shows when each rank actually held a worker.
        let span = egd_obs::SpanTimer::start_on(id as u32, egd_obs::SpanKind::RankTask);
        let poll = {
            let mut slot = slots[id].lock().expect("task slot poisoned");
            let future = slot.as_mut().expect("task polled after completion");
            catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx)))
        };
        if let Some(span) = span {
            span.finish(id as u64);
        }

        match poll {
            Err(payload) => {
                let mut state = exec.state.lock().expect("executor state poisoned");
                state.running -= 1;
                state.fatal = Some(ExecError::Panicked {
                    task: id,
                    message: panic_message(&*payload),
                });
                drop(state);
                exec.wakeup.notify_all();
                return;
            }
            Ok(Poll::Ready(result)) => {
                *results[id].lock().expect("result slot poisoned") = Some(result);
                // Drop the future before taking the state lock so nothing is
                // ever held across both locks.
                slots[id].lock().expect("task slot poisoned").take();
                exec.flags[id].store(DONE, Ordering::Release);
                let mut state = exec.state.lock().expect("executor state poisoned");
                state.running -= 1;
                state.done += 1;
                let all_done = state.done == n;
                drop(state);
                if all_done {
                    exec.wakeup.notify_all();
                }
            }
            Ok(Poll::Pending) => {
                // If a wake arrived while we were polling, requeue instead of
                // idling — otherwise that wake-up would be lost.
                let notified = exec.flags[id]
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err();
                let mut state = exec.state.lock().expect("executor state poisoned");
                state.running -= 1;
                if notified {
                    exec.flags[id].store(QUEUED, Ordering::Release);
                    state.ready.push_back(id);
                    drop(state);
                    exec.wakeup.notify_one();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn boxed<R, F: Future<Output = R> + Send + 'static>(f: F) -> TaskFuture<R> {
        Box::pin(f)
    }

    #[test]
    fn empty_world_completes() {
        let (results, fatal) = run_tasks::<u32>(4, Vec::new());
        assert!(results.is_empty());
        assert!(fatal.is_none());
    }

    #[test]
    fn many_tasks_on_few_workers() {
        let tasks: Vec<TaskFuture<usize>> = (0..500).map(|i| boxed(async move { i * 2 })).collect();
        let (results, fatal) = run_tasks(2, tasks);
        assert!(fatal.is_none());
        let values: Vec<usize> = results.into_iter().map(Option::unwrap).collect();
        assert_eq!(values, (0..500).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pending_tasks_are_resumed_by_wakes() {
        // Task i yields once and is re-woken by its own waker (yield_now
        // pattern): completion proves wake-during-poll is never lost.
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0 {
                    Poll::Ready(())
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<TaskFuture<()>> = (0..64)
            .map(|_| {
                let counter = Arc::clone(&counter);
                boxed(async move {
                    YieldOnce(false).await;
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let (results, fatal) = run_tasks(3, tasks);
        assert!(fatal.is_none());
        assert_eq!(results.len(), 64);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn yield_now_suspends_once_and_resumes() {
        // Each task interleaves N yields; all complete on a single worker,
        // proving yield_now never strands a task.
        let tasks: Vec<TaskFuture<usize>> = (0..16)
            .map(|i| {
                boxed(async move {
                    for _ in 0..10 {
                        yield_now().await;
                    }
                    i
                })
            })
            .collect();
        let (results, fatal) = run_tasks(1, tasks);
        assert!(fatal.is_none());
        let values: Vec<usize> = results.into_iter().map(Option::unwrap).collect();
        assert_eq!(values, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn panic_is_reported_with_task_index() {
        let tasks: Vec<TaskFuture<u32>> = (0..8)
            .map(|i| {
                boxed(async move {
                    if i == 5 {
                        panic!("boom at rank {i}");
                    }
                    i
                })
            })
            .collect();
        let (_, fatal) = run_tasks(2, tasks);
        match fatal {
            Some(ExecError::Panicked { task, message }) => {
                assert_eq!(task, 5);
                assert!(message.contains("boom at rank 5"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn stall_is_detected_and_names_waiting_tasks() {
        // A future that never wakes: the world must report a deadlock, not
        // hang.
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let tasks: Vec<TaskFuture<()>> = vec![
            boxed(async {}),
            boxed(async {
                Never.await;
            }),
        ];
        let (results, fatal) = run_tasks(2, tasks);
        assert!(results[0].is_some());
        match fatal {
            Some(ExecError::Stalled { waiting }) => assert_eq!(waiting, vec![1]),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }
}
