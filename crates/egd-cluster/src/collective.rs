//! The binomial collective tree shared by the transport and the cost model.
//!
//! Blue Gene machines run broadcasts and reductions on a dedicated
//! collective network that is log-depth *by construction* (§V-B), and the
//! analytic model in [`crate::network`] has always priced them that way.
//! This module pins down the one concrete tree both layers now agree on — a
//! **binomial tree over virtual ranks** — so the schedule the simulated
//! transport ([`crate::mpi`]) executes is the schedule the cost model
//! prices:
//!
//! * ranks are rotated so the collective's root sits at virtual rank 0
//!   ([`vrank`] / [`actual_rank`]), which makes every tree shape a pure
//!   function of the world size;
//! * virtual rank `v > 0` hangs off [`parent`] `v - lowbit(v)` and owns the
//!   contiguous virtual-rank segment `[v, v + lowbit(v))` — so a reduction
//!   can ship one *merged, rank-ordered* segment per tree edge;
//! * [`children`] yields `v + 1, v + 2, v + 4, …` (ascending sub-tree
//!   segments), and no node has more than [`stages`]`(size)` = ⌈log₂ size⌉
//!   of them.
//!
//! A broadcast walks the tree root-down (each node forwards to its
//! children), a gather walks it leaves-up (each node merges its children's
//! segments and sends one message to its parent). The root therefore touches
//! `stages(size)` messages per collective instead of `size - 1` — the
//! property that lifts the simulated worlds from the 10³–10⁴ regime to
//! 10⁵⁺ ranks, and that [`crate::mpi::TrafficStats::max_root_fanout`]
//! observes and CI gates.

/// Number of tree stages (rounds of parallel message exchange) needed to
/// span `size` ranks: `ceil(log2 size)`, and 1 for the degenerate worlds of
/// one or two ranks. This is both the depth of the binomial tree and the
/// maximum number of tree edges incident to any node.
pub fn stages(size: usize) -> u32 {
    if size <= 1 {
        1
    } else {
        (usize::BITS - (size - 1).leading_zeros()).max(1)
    }
}

/// The virtual rank of `rank` in a collective rooted at `root`: ranks are
/// rotated so the root is virtual rank 0 and the tree shape depends only on
/// the world size.
pub fn vrank(rank: usize, root: usize, size: usize) -> usize {
    (rank + size - root) % size
}

/// Inverse of [`vrank`]: the actual rank of virtual rank `v`.
pub fn actual_rank(v: usize, root: usize, size: usize) -> usize {
    (v + root) % size
}

/// The parent of virtual rank `v` in the binomial tree (`None` for the
/// root): `v` with its lowest set bit cleared.
pub fn parent(v: usize) -> Option<usize> {
    if v == 0 {
        None
    } else {
        Some(v & (v - 1))
    }
}

/// The sub-tree span of virtual rank `v`: its lowest set bit, i.e. the
/// length bound of the contiguous virtual-rank segment `[v, v + span)` that
/// `v` merges on the way up (the whole world for the root).
pub fn subtree_span(v: usize, size: usize) -> usize {
    if v == 0 {
        size.next_power_of_two()
    } else {
        v & v.wrapping_neg()
    }
}

/// The children of virtual rank `v` in a world of `size` ranks, in
/// ascending order (`v + 1, v + 2, v + 4, …` while inside both the world
/// and `v`'s own sub-tree). Ascending order means the children's sub-tree
/// segments `[v + m, v + 2m)` tile `(v, v + span)` contiguously — a gather
/// can concatenate them and stay virtual-rank-ordered.
pub fn children(v: usize, size: usize) -> impl Iterator<Item = usize> {
    let span = subtree_span(v, size);
    (0..usize::BITS)
        .map(move |k| 1usize << k)
        .take_while(move |&mask| mask < span)
        .map(move |mask| v + mask)
        .filter(move |&child| child < size)
}

/// The number of tree messages the root sends (broadcast) or receives
/// (gather) in one collective over `size` ranks: `O(log size)`, versus the
/// `size - 1` of the retired flat implementation.
pub fn root_fanout(size: usize) -> u64 {
    children(0, size).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_match_collective_network_depths() {
        assert_eq!(stages(1), 1);
        assert_eq!(stages(2), 1);
        assert_eq!(stages(3), 2);
        assert_eq!(stages(1024), 10);
        assert_eq!(stages(100_000), 17);
        assert_eq!(stages(294_912), 19);
    }

    #[test]
    fn vrank_rotation_round_trips() {
        for size in [1usize, 2, 3, 7, 8, 100] {
            for root in [0, 1, size / 2, size - 1] {
                for rank in 0..size {
                    let v = vrank(rank, root, size);
                    assert_eq!(actual_rank(v, root, size), rank);
                }
                assert_eq!(vrank(root, root, size), 0);
            }
        }
    }

    #[test]
    fn every_non_root_has_exactly_one_parent_edge() {
        for size in [1usize, 2, 3, 5, 8, 17, 33, 100, 1024] {
            let mut seen = vec![false; size];
            seen[0] = true;
            for v in 0..size {
                for child in children(v, size) {
                    assert_eq!(parent(child), Some(v), "size {size} child {child}");
                    assert!(!seen[child], "size {size}: {child} reached twice");
                    seen[child] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "size {size}: unreached ranks");
        }
    }

    #[test]
    fn children_segments_tile_the_subtree_contiguously() {
        for size in [5usize, 8, 17, 100] {
            for v in 0..size {
                let mut cursor = v + 1;
                for child in children(v, size) {
                    assert_eq!(child, cursor, "size {size} node {v}");
                    cursor = (child + subtree_span(child, size)).min(size);
                }
                assert_eq!(cursor, (v + subtree_span(v, size)).min(size).max(v + 1));
            }
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        for size in [2usize, 3, 100, 1000, 100_000] {
            let depth_of = |mut v: usize| {
                let mut depth = 0;
                while let Some(p) = parent(v) {
                    v = p;
                    depth += 1;
                }
                depth
            };
            let max_depth = (0..size).map(depth_of).max().unwrap();
            assert!(
                max_depth as u32 <= stages(size),
                "size {size}: depth {max_depth} > {}",
                stages(size)
            );
        }
    }

    #[test]
    fn root_fanout_is_logarithmic() {
        assert_eq!(root_fanout(1), 0);
        assert_eq!(root_fanout(2), 1);
        assert_eq!(root_fanout(8), 3);
        assert_eq!(root_fanout(100_000), 17);
        for size in [3usize, 9, 100, 1000, 100_000] {
            assert!(root_fanout(size) <= stages(size) as u64);
            // Every node, not just the root, stays within the stage bound.
            for v in 0..size.min(256) {
                assert!(children(v, size).count() as u32 <= stages(size));
            }
        }
    }
}
