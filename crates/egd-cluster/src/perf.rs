//! Analytic scaling harness.
//!
//! The paper's scaling studies run on up to 294,912 cores. Spawning that many
//! real threads is impossible, so the scaling figures are regenerated from
//! the cost model of [`crate::cost`]: for every processor count the harness
//! builds the corresponding topology, charges the busiest rank's game-play
//! time plus the expected per-generation communication time, and converts the
//! resulting run times into the speedup / parallel-efficiency series the
//! paper plots (Fig. 4, Fig. 6a/b) and tabulates (Table VI).
//!
//! Two workload knobs capture ambiguities of the paper that matter for the
//! shapes:
//!
//! * [`Workload::opponents_per_sset`] — strong-scaling studies keep the total
//!   game count fixed (`None`: every SSet plays all others), while the weak
//!   scaling runs hold the *per-processor* work constant, which requires each
//!   SSet to play a fixed number of sampled opponents (`Some(k)`), otherwise
//!   per-rank work would grow with the total population and the paper's flat
//!   runtime would be impossible.
//! * [`ScalingHarness::with_sset_splitting`] — when there are more processors
//!   than SSets the paper splits an SSet's games across the processors that
//!   share it ("SSets are being split at suboptimal levels"). With splitting
//!   disabled (the default, used for Fig. 4 / Table VI) the busiest rank
//!   still owns one whole SSet and efficiency collapses towards `R`; with
//!   splitting enabled (used for Fig. 6b) the work divides evenly at a small
//!   overhead penalty, giving the ~82% dip the paper reports at 262,144
//!   processors.

use crate::cost::{CostModel, OptimizationLevel, TopologyCost};
use crate::machine::MachineSpec;
use crate::topology::ClusterTopology;
use egd_core::error::{EgdError, EgdResult};
use egd_core::state::MemoryDepth;
use serde::{Deserialize, Serialize};

/// The scientific workload whose scaling is being studied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Number of SSets in the population.
    pub num_ssets: usize,
    /// Memory depth of the strategies.
    pub memory: MemoryDepth,
    /// Rounds per game.
    pub rounds: u32,
    /// Number of generations.
    pub generations: u64,
    /// Pairwise-comparison rate.
    pub pc_rate: f64,
    /// Mutation rate.
    pub mutation_rate: f64,
    /// How many opponents each SSet plays per generation: `None` means every
    /// other SSet (strong-scaling setting), `Some(k)` means a fixed sample of
    /// `k` opponents (weak-scaling setting).
    pub opponents_per_sset: Option<usize>,
}

impl Workload {
    /// The paper's production parameters (200 rounds, PC 0.1, µ 0.05) for a
    /// given population size, memory depth and generation count, with every
    /// SSet playing all others.
    pub fn paper(num_ssets: usize, memory: MemoryDepth, generations: u64) -> Self {
        Workload {
            num_ssets,
            memory,
            rounds: 200,
            generations,
            pc_rate: 0.1,
            mutation_rate: 0.05,
            opponents_per_sset: None,
        }
    }

    /// Returns the same workload with a different population size (used by
    /// weak-scaling sweeps).
    pub fn with_num_ssets(mut self, num_ssets: usize) -> Self {
        self.num_ssets = num_ssets;
        self
    }

    /// Returns the same workload with a fixed opponent sample size.
    pub fn with_opponents_per_sset(mut self, opponents: usize) -> Self {
        self.opponents_per_sset = Some(opponents);
        self
    }

    /// Opponents each SSet plays under this workload.
    pub fn effective_opponents(&self) -> usize {
        self.opponents_per_sset
            .unwrap_or_else(|| self.num_ssets.saturating_sub(1))
    }
}

/// One point of a scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of processors (worker ranks × threads per rank).
    pub processors: usize,
    /// Number of worker ranks.
    pub worker_ranks: usize,
    /// SSets per processor ratio `R`.
    pub ssets_per_processor: f64,
    /// Estimated wall-clock time of the run in seconds.
    pub time_seconds: f64,
    /// Compute share of the per-generation critical path (seconds over the
    /// whole run).
    pub compute_seconds: f64,
    /// Communication share (seconds over the whole run).
    pub comm_seconds: f64,
    /// Speedup relative to the baseline point of the study.
    pub speedup: f64,
    /// Parallel efficiency in percent (definition depends on the study type).
    pub efficiency_percent: f64,
}

/// Estimated run cost for one topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunEstimate {
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Compute seconds on the critical path.
    pub compute_seconds: f64,
    /// Communication seconds on the critical path.
    pub comm_seconds: f64,
}

/// The analytic scaling harness.
#[derive(Debug, Clone)]
pub struct ScalingHarness {
    machine: MachineSpec,
    cost: CostModel,
    level: OptimizationLevel,
    ranks_per_node: u32,
    threads_per_rank: u32,
    /// `Some(penalty)` enables sub-SSet work splitting when `R < 1`.
    splitting_penalty: Option<f64>,
}

impl ScalingHarness {
    /// Creates a harness for a machine with an explicit cost model and
    /// optimisation level.
    pub fn new(machine: MachineSpec, cost: CostModel, level: OptimizationLevel) -> Self {
        let (ranks_per_node, threads_per_rank) = if machine.name.contains('Q') {
            (32, 2)
        } else {
            (machine.cores_per_node, 1)
        };
        ScalingHarness {
            machine,
            cost,
            level,
            ranks_per_node,
            threads_per_rank,
            splitting_penalty: None,
        }
    }

    /// Harness for Blue Gene/P in virtual-node mode with the default cost
    /// model and full optimisation.
    pub fn blue_gene_p() -> Self {
        Self::new(
            MachineSpec::blue_gene_p(),
            CostModel::blue_gene_like(),
            OptimizationLevel::INSTRUCTION,
        )
    }

    /// Harness for Blue Gene/Q in the paper's 32×2 hybrid mode.
    pub fn blue_gene_q() -> Self {
        Self::new(
            MachineSpec::blue_gene_q(),
            CostModel::blue_gene_like(),
            OptimizationLevel::INSTRUCTION,
        )
    }

    /// Overrides the rank/thread mapping.
    pub fn with_mapping(mut self, ranks_per_node: u32, threads_per_rank: u32) -> Self {
        self.ranks_per_node = ranks_per_node;
        self.threads_per_rank = threads_per_rank;
        self
    }

    /// Overrides the optimisation level.
    pub fn with_level(mut self, level: OptimizationLevel) -> Self {
        self.level = level;
        self
    }

    /// Enables sub-SSet work splitting for `R < 1` with the given overhead
    /// penalty (>= 1). Used for the very large strong-scaling runs (Fig. 6b).
    pub fn with_sset_splitting(mut self, penalty: f64) -> Self {
        self.splitting_penalty = Some(penalty.max(1.0));
        self
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The optimisation level being modelled.
    pub fn level(&self) -> OptimizationLevel {
        self.level
    }

    /// Builds the topology for a given processor count.
    pub fn topology(&self, processors: usize, num_ssets: usize) -> EgdResult<ClusterTopology> {
        if processors == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "processor count must be positive".to_string(),
            });
        }
        let worker_ranks = (processors / self.threads_per_rank as usize).max(1);
        ClusterTopology::new(
            self.machine.clone(),
            worker_ranks,
            self.ranks_per_node,
            self.threads_per_rank,
            num_ssets,
        )
    }

    /// Number of games the busiest rank plays per generation.
    fn games_on_busiest_rank(&self, topology: &ClusterTopology, workload: &Workload) -> f64 {
        let opponents = workload.effective_opponents() as f64;
        let ratio = topology.ssets_per_processor();
        match self.splitting_penalty {
            Some(penalty) if ratio < 1.0 => {
                // Sub-SSet splitting: games divide evenly across ranks at a
                // small duplication / reduction overhead.
                workload.num_ssets as f64 * opponents / topology.worker_ranks() as f64 * penalty
            }
            _ => topology.max_ssets_per_rank() as f64 * opponents,
        }
    }

    /// Per-generation compute time (µs) on the busiest rank.
    fn generation_compute_us(&self, topology: &ClusterTopology, workload: &Workload) -> f64 {
        let game_time = self.cost.game_time_us(
            workload.memory,
            workload.rounds,
            self.level.compute,
            topology.machine().core_speed_factor,
        );
        self.games_on_busiest_rank(topology, workload) * game_time
            / topology.threads_per_rank() as f64
            + self.cost.per_generation_overhead_us
    }

    /// Estimates the wall-clock cost of a workload on a processor count.
    pub fn estimate(&self, processors: usize, workload: &Workload) -> EgdResult<RunEstimate> {
        let topology = self.topology(processors, workload.num_ssets)?;
        let compute_us = self.generation_compute_us(&topology, workload);
        let comm_us = self.cost.generation_comm_time_us(
            &topology,
            workload.memory,
            workload.pc_rate,
            workload.mutation_rate,
            self.level.comm,
        );
        let generations = workload.generations as f64;
        Ok(RunEstimate {
            total_seconds: (compute_us + comm_us) * generations / 1e6,
            compute_seconds: compute_us * generations / 1e6,
            comm_seconds: comm_us * generations / 1e6,
        })
    }

    /// Strong scaling: the workload is fixed and the processor count grows.
    /// Efficiency is the percentage of ideal speedup relative to the first
    /// (smallest) processor count, as in the paper.
    pub fn strong_scaling(
        &self,
        workload: &Workload,
        processor_counts: &[usize],
    ) -> EgdResult<Vec<ScalingPoint>> {
        let base_processors = *processor_counts
            .first()
            .ok_or_else(|| EgdError::InvalidConfig {
                reason: "strong scaling needs at least one processor count \
                         (the first is the speedup baseline)"
                    .to_string(),
            })?;
        let base = self.estimate(base_processors, workload)?;
        processor_counts
            .iter()
            .map(|&p| {
                let estimate = self.estimate(p, workload)?;
                let topology = self.topology(p, workload.num_ssets)?;
                let speedup = base.total_seconds / estimate.total_seconds;
                let ideal = p as f64 / base_processors as f64;
                Ok(ScalingPoint {
                    processors: p,
                    worker_ranks: topology.worker_ranks(),
                    ssets_per_processor: topology.ssets_per_processor(),
                    time_seconds: estimate.total_seconds,
                    compute_seconds: estimate.compute_seconds,
                    comm_seconds: estimate.comm_seconds,
                    speedup,
                    efficiency_percent: 100.0 * speedup / ideal,
                })
            })
            .collect()
    }

    /// Weak scaling: the per-processor workload (`ssets_per_processor` SSets
    /// per processor, each playing a fixed opponent sample of the same size)
    /// is constant and the population grows with the machine. Efficiency is
    /// `T(P0) / T(P)` in percent.
    pub fn weak_scaling(
        &self,
        base_workload: &Workload,
        ssets_per_processor: usize,
        processor_counts: &[usize],
    ) -> EgdResult<Vec<ScalingPoint>> {
        let base_processors = *processor_counts
            .first()
            .ok_or_else(|| EgdError::InvalidConfig {
                reason: "weak scaling needs at least one processor count \
                         (the first is the efficiency baseline)"
                    .to_string(),
            })?;
        let per_point = |p: usize| -> Workload {
            base_workload
                .with_num_ssets(ssets_per_processor * p)
                .with_opponents_per_sset(
                    base_workload
                        .opponents_per_sset
                        .unwrap_or(ssets_per_processor),
                )
        };
        let base = self.estimate(base_processors, &per_point(base_processors))?;
        processor_counts
            .iter()
            .map(|&p| {
                let workload = per_point(p);
                let estimate = self.estimate(p, &workload)?;
                let topology = self.topology(p, workload.num_ssets)?;
                Ok(ScalingPoint {
                    processors: p,
                    worker_ranks: topology.worker_ranks(),
                    ssets_per_processor: topology.ssets_per_processor(),
                    time_seconds: estimate.total_seconds,
                    compute_seconds: estimate.compute_seconds,
                    comm_seconds: estimate.comm_seconds,
                    speedup: base.total_seconds / estimate.total_seconds * p as f64
                        / base_processors as f64,
                    efficiency_percent: 100.0 * base.total_seconds / estimate.total_seconds,
                })
            })
            .collect()
    }

    /// Table VI: parallel efficiency as a function of the SSets-per-processor
    /// ratio `R`, for a fixed processor count. Efficiency compares the actual
    /// (integer, load-imbalanced) busiest-rank time against the ideal
    /// fractional division of the same work.
    pub fn ratio_efficiency(
        &self,
        processors: usize,
        ratios: &[f64],
        workload_template: &Workload,
    ) -> EgdResult<Vec<(f64, f64)>> {
        if ratios.is_empty() {
            return Err(EgdError::InvalidConfig {
                reason: "ratio-efficiency table needs at least one R ratio row".to_string(),
            });
        }
        ratios
            .iter()
            .map(|&ratio| {
                let topology_probe = self.topology(processors, 1)?;
                let workers = topology_probe.worker_ranks();
                let num_ssets = ((ratio * workers as f64).round() as usize).max(1);
                let workload = workload_template.with_num_ssets(num_ssets);
                let topology = self.topology(processors, num_ssets)?;
                let estimate = self.estimate(processors, &workload)?;

                // Ideal: the same total game work divided perfectly evenly
                // (fractional SSets allowed), same communication.
                let game_time = self.cost.game_time_us(
                    workload.memory,
                    workload.rounds,
                    self.level.compute,
                    self.machine.core_speed_factor,
                );
                let total_games = num_ssets as f64 * workload.effective_opponents() as f64;
                let ideal_compute_us = total_games * game_time
                    / (topology.worker_ranks() as f64 * topology.threads_per_rank() as f64)
                    + self.cost.per_generation_overhead_us;
                let ideal_total = (ideal_compute_us
                    + self.cost.generation_comm_time_us(
                        &topology,
                        workload.memory,
                        workload.pc_rate,
                        workload.mutation_rate,
                        self.level.comm,
                    ))
                    * workload.generations as f64
                    / 1e6;
                Ok((ratio, 100.0 * ideal_total / estimate.total_seconds))
            })
            .collect()
    }

    /// Fig. 5: the compute / communication split per generation as the memory
    /// depth varies, for a fixed topology and workload.
    pub fn memory_step_breakdown(
        &self,
        processors: usize,
        workload_template: &Workload,
        memories: &[MemoryDepth],
    ) -> EgdResult<Vec<(MemoryDepth, RunEstimate)>> {
        memories
            .iter()
            .map(|&memory| {
                let workload = Workload {
                    memory,
                    ..*workload_template
                };
                Ok((memory, self.estimate(processors, &workload)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(ssets: usize, memory: MemoryDepth) -> Workload {
        Workload::paper(ssets, memory, 20)
    }

    #[test]
    fn estimate_is_positive_and_split_consistently() {
        let harness = ScalingHarness::blue_gene_p();
        let est = harness
            .estimate(1024, &workload(4096, MemoryDepth::SIX))
            .unwrap();
        assert!(est.total_seconds > 0.0);
        assert!((est.total_seconds - est.compute_seconds - est.comm_seconds).abs() < 1e-9);
    }

    #[test]
    fn effective_opponents() {
        assert_eq!(workload(100, MemoryDepth::ONE).effective_opponents(), 99);
        assert_eq!(
            workload(100, MemoryDepth::ONE)
                .with_opponents_per_sset(10)
                .effective_opponents(),
            10
        );
    }

    #[test]
    fn weak_scaling_is_nearly_flat() {
        // Fig. 6a: 4,096 SSets per processor, memory-six, processors from
        // 1,024 to 294,912 — efficiency stays above 95%.
        let harness = ScalingHarness::blue_gene_p();
        let counts = [1024usize, 4096, 16_384, 65_536, 294_912];
        let points = harness
            .weak_scaling(&workload(0, MemoryDepth::SIX), 4096, &counts)
            .unwrap();
        assert_eq!(points.len(), counts.len());
        assert!((points[0].efficiency_percent - 100.0).abs() < 1e-9);
        for p in &points {
            assert!(
                p.efficiency_percent > 95.0,
                "{} processors: {}%",
                p.processors,
                p.efficiency_percent
            );
        }
        // Per-rank work really is constant: the run time barely moves.
        let t0 = points[0].time_seconds;
        let t_last = points.last().unwrap().time_seconds;
        assert!((t_last - t0).abs() / t0 < 0.05);
    }

    #[test]
    fn strong_scaling_with_splitting_dips_at_huge_scale() {
        // Fig. 6b: 32,768 SSets, near-ideal through 16,384 processors and a
        // dip (paper: 82%) at 262,144 where SSets must be split.
        let harness = ScalingHarness::blue_gene_p().with_sset_splitting(1.2);
        let counts = [1024usize, 2048, 8192, 16_384, 262_144];
        let points = harness
            .strong_scaling(&workload(32_768, MemoryDepth::SIX), &counts)
            .unwrap();
        for p in &points[..4] {
            assert!(
                p.efficiency_percent > 95.0,
                "{} processors: {}%",
                p.processors,
                p.efficiency_percent
            );
        }
        let last = points.last().unwrap();
        assert!(last.ssets_per_processor < 1.0);
        assert!(
            last.efficiency_percent > 60.0 && last.efficiency_percent < 95.0,
            "efficiency at 262k should dip into the 60-95% band, got {}%",
            last.efficiency_percent
        );
        // Speedup is still monotone increasing.
        for w in points.windows(2) {
            assert!(w[1].speedup > w[0].speedup);
        }
    }

    #[test]
    fn strong_scaling_without_splitting_collapses_below_one_sset_per_rank() {
        let harness = ScalingHarness::blue_gene_p();
        let counts = [1024usize, 262_144];
        let points = harness
            .strong_scaling(&workload(32_768, MemoryDepth::SIX), &counts)
            .unwrap();
        assert!(points[1].efficiency_percent < 20.0);
    }

    #[test]
    fn strong_scaling_of_small_populations_degrades_earlier() {
        // Fig. 4: for a fixed processor sweep, larger populations keep higher
        // efficiency than smaller ones, and the small population drops once
        // R < 1.
        let harness = ScalingHarness::blue_gene_p();
        let counts = [128usize, 256, 512, 1024, 2048];
        let small = harness
            .strong_scaling(&workload(1024, MemoryDepth::ONE), &counts)
            .unwrap();
        let large = harness
            .strong_scaling(&workload(32_768, MemoryDepth::ONE), &counts)
            .unwrap();
        let small_final = small.last().unwrap().efficiency_percent;
        let large_final = large.last().unwrap().efficiency_percent;
        assert!(
            large_final > small_final,
            "large population {large_final}% should scale better than small {small_final}%"
        );
        assert!(small_final < 80.0);
        assert!(large_final > 95.0);
    }

    #[test]
    fn ratio_efficiency_reproduces_table_vi_shape() {
        let harness = ScalingHarness::blue_gene_p();
        let ratios = [0.5, 1.0, 2.0, 4.0, 8.0];
        let rows = harness
            .ratio_efficiency(2048, &ratios, &workload(0, MemoryDepth::SIX))
            .unwrap();
        assert_eq!(rows.len(), 5);
        let at = |r: f64| rows.iter().find(|(ratio, _)| *ratio == r).unwrap().1;
        // R = 0.5 collapses towards ~50%, R >= 1 is essentially ideal.
        assert!(at(0.5) < 65.0, "R=0.5 gave {}%", at(0.5));
        assert!(at(0.5) < at(1.0));
        assert!(at(1.0) > 95.0);
        assert!(at(2.0) > 95.0);
        assert!(at(8.0) > 98.0);
    }

    #[test]
    fn memory_step_breakdown_grows_with_memory() {
        // Fig. 5: 2,048 SSets on 2,048 processors, 20 generations — compute
        // grows strongly with memory depth, communication stays roughly flat.
        let harness = ScalingHarness::blue_gene_p();
        let template = workload(2048, MemoryDepth::ONE);
        let rows = harness
            .memory_step_breakdown(2048, &template, &MemoryDepth::PAPER_RANGE)
            .unwrap();
        assert_eq!(rows.len(), 6);
        let mut last_compute = 0.0;
        for (memory, estimate) in &rows {
            assert!(
                estimate.compute_seconds > last_compute,
                "{memory} compute did not grow"
            );
            last_compute = estimate.compute_seconds;
        }
        let comm_first = rows[0].1.comm_seconds;
        let comm_last = rows[5].1.comm_seconds;
        assert!(
            comm_last < comm_first * 3.0,
            "comm should stay roughly flat"
        );
        // At memory-six the computation dominates communication.
        assert!(rows[5].1.compute_seconds > rows[5].1.comm_seconds);
    }

    #[test]
    fn bgq_weak_scaling_to_16k() {
        let harness = ScalingHarness::blue_gene_q();
        let counts = [1024usize, 4096, 16_384];
        let points = harness
            .weak_scaling(&workload(0, MemoryDepth::SIX), 4096, &counts)
            .unwrap();
        for p in &points {
            assert!(p.efficiency_percent > 95.0);
        }
    }

    #[test]
    fn optimisation_level_changes_estimates() {
        let base = ScalingHarness::blue_gene_p();
        let original = base
            .clone()
            .with_level(OptimizationLevel::ORIGINAL)
            .estimate(256, &workload(4096, MemoryDepth::ONE))
            .unwrap();
        let optimised = base
            .with_level(OptimizationLevel::INSTRUCTION)
            .estimate(256, &workload(4096, MemoryDepth::ONE))
            .unwrap();
        assert!(original.total_seconds > optimised.total_seconds);
        assert!(original.comm_seconds > optimised.comm_seconds);
    }

    #[test]
    fn empty_processor_list_is_an_error() {
        // The first processor count is the speedup/efficiency baseline, so a
        // study with no points is a caller bug, not an empty result.
        let harness = ScalingHarness::blue_gene_p();
        let strong = harness
            .strong_scaling(&workload(1024, MemoryDepth::ONE), &[])
            .unwrap_err();
        assert!(strong.to_string().contains("at least one"), "{strong}");
        let weak = harness
            .weak_scaling(&workload(0, MemoryDepth::ONE), 16, &[])
            .unwrap_err();
        assert!(weak.to_string().contains("at least one"), "{weak}");
    }

    #[test]
    fn zero_processors_is_an_error() {
        let harness = ScalingHarness::blue_gene_p();
        assert!(harness
            .estimate(0, &workload(16, MemoryDepth::ONE))
            .is_err());
    }
}
