//! Mapping of the model onto a machine: ranks, threads and SSet ownership.
//!
//! The paper assigns one processor (MPI rank) to the Nature Agent and spreads
//! the SSets over the remaining ranks, with each rank's agents' games further
//! spread over the node's threads (§V). [`ClusterTopology`] captures that
//! mapping together with the machine description, and exposes the quantities
//! the scaling analysis needs — most importantly the SSets-per-processor
//! ratio `R` of Table VI.

use crate::machine::MachineSpec;
use egd_core::error::{EgdError, EgdResult};
use egd_parallel::partition::SSetPartition;
use serde::{Deserialize, Serialize};

/// A concrete mapping of the simulation onto a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    machine: MachineSpec,
    /// Number of worker ranks that own SSets (the Nature Agent rank is extra).
    worker_ranks: usize,
    /// MPI ranks per node.
    ranks_per_node: u32,
    /// Worker threads per rank (the OpenMP level).
    threads_per_rank: u32,
    /// Number of SSets in the population.
    num_ssets: usize,
}

impl ClusterTopology {
    /// Creates a topology, validating that the per-node resources are not
    /// oversubscribed.
    pub fn new(
        machine: MachineSpec,
        worker_ranks: usize,
        ranks_per_node: u32,
        threads_per_rank: u32,
        num_ssets: usize,
    ) -> EgdResult<Self> {
        if worker_ranks == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "at least one worker rank is required".to_string(),
            });
        }
        if ranks_per_node == 0 || threads_per_rank == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "ranks per node and threads per rank must be at least 1".to_string(),
            });
        }
        let hw_threads = machine.threads_per_node();
        if ranks_per_node * threads_per_rank > hw_threads {
            return Err(EgdError::InvalidTopology {
                reason: format!(
                    "{ranks_per_node} ranks x {threads_per_rank} threads oversubscribes the node's {hw_threads} hardware threads"
                ),
            });
        }
        Ok(ClusterTopology {
            machine,
            worker_ranks,
            ranks_per_node,
            threads_per_rank,
            num_ssets,
        })
    }

    /// The paper's Blue Gene/P setup: virtual-node mode (one rank per core,
    /// one thread per rank).
    pub fn blue_gene_p_virtual_node(worker_ranks: usize, num_ssets: usize) -> EgdResult<Self> {
        Self::new(MachineSpec::blue_gene_p(), worker_ranks, 4, 1, num_ssets)
    }

    /// The paper's preferred Blue Gene/Q setup: 32 ranks per node with 2
    /// threads per rank (§VI-C).
    pub fn blue_gene_q_hybrid(worker_ranks: usize, num_ssets: usize) -> EgdResult<Self> {
        Self::new(MachineSpec::blue_gene_q(), worker_ranks, 32, 2, num_ssets)
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Number of worker ranks (excluding the Nature Agent).
    pub fn worker_ranks(&self) -> usize {
        self.worker_ranks
    }

    /// Total ranks including the Nature Agent.
    pub fn total_ranks(&self) -> usize {
        self.worker_ranks + 1
    }

    /// MPI ranks per node.
    pub fn ranks_per_node(&self) -> u32 {
        self.ranks_per_node
    }

    /// Threads per rank.
    pub fn threads_per_rank(&self) -> u32 {
        self.threads_per_rank
    }

    /// Number of SSets in the population.
    pub fn num_ssets(&self) -> usize {
        self.num_ssets
    }

    /// Number of nodes needed for the worker ranks.
    pub fn nodes_used(&self) -> usize {
        self.total_ranks().div_ceil(self.ranks_per_node as usize)
    }

    /// The "processor" count in the paper's sense (cores occupied by worker
    /// ranks and their threads).
    pub fn processors(&self) -> usize {
        self.worker_ranks * self.threads_per_rank as usize
    }

    /// The SSet-to-processor ratio `R` of Table VI.
    pub fn ssets_per_processor(&self) -> f64 {
        self.num_ssets as f64 / self.worker_ranks as f64
    }

    /// The SSet ownership map over the worker ranks.
    pub fn partition(&self) -> SSetPartition {
        SSetPartition::new(self.num_ssets, self.worker_ranks)
            .expect("worker_ranks validated to be non-zero")
    }

    /// Number of SSets owned by the most loaded worker rank. When `R < 1`
    /// this stays at 1, which is exactly the load imbalance that degrades
    /// strong scaling in Fig. 4 / Fig. 6b.
    pub fn max_ssets_per_rank(&self) -> usize {
        self.partition().max_block_len()
    }

    /// Whether the machine has enough nodes for this topology.
    pub fn fits_machine(&self) -> bool {
        self.nodes_used() <= self.machine.num_nodes()
    }

    /// Whether the per-rank strategy view fits in node memory for the given
    /// state-space size (the memory-six limit of the paper).
    pub fn strategy_view_fits(&self, num_states: usize) -> bool {
        self.machine
            .strategy_view_fits(self.num_ssets, num_states, self.ranks_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let machine = MachineSpec::blue_gene_q();
        assert!(ClusterTopology::new(machine.clone(), 0, 32, 2, 100).is_err());
        assert!(ClusterTopology::new(machine.clone(), 4, 0, 2, 100).is_err());
        // 32 ranks x 4 threads = 128 > 64 hardware threads.
        assert!(ClusterTopology::new(machine.clone(), 4, 32, 4, 100).is_err());
        assert!(ClusterTopology::new(machine, 4, 32, 2, 100).is_ok());
    }

    #[test]
    fn blue_gene_presets() {
        let bgp = ClusterTopology::blue_gene_p_virtual_node(1024, 4096 * 1024).unwrap();
        assert_eq!(bgp.ranks_per_node(), 4);
        assert_eq!(bgp.threads_per_rank(), 1);
        assert_eq!(bgp.processors(), 1024);
        let bgq = ClusterTopology::blue_gene_q_hybrid(512, 4096 * 512).unwrap();
        assert_eq!(bgq.ranks_per_node(), 32);
        assert_eq!(bgq.threads_per_rank(), 2);
        assert_eq!(bgq.ssets_per_processor(), 4096.0);
    }

    #[test]
    fn ratio_and_partition() {
        let topo = ClusterTopology::blue_gene_p_virtual_node(2048, 2048).unwrap();
        assert_eq!(topo.ssets_per_processor(), 1.0);
        assert_eq!(topo.max_ssets_per_rank(), 1);

        let half = ClusterTopology::blue_gene_p_virtual_node(2048, 1024).unwrap();
        assert_eq!(half.ssets_per_processor(), 0.5);
        // Even at R = 0.5 the busiest rank still owns one full SSet.
        assert_eq!(half.max_ssets_per_rank(), 1);

        let fat = ClusterTopology::blue_gene_p_virtual_node(256, 4096).unwrap();
        assert_eq!(fat.ssets_per_processor(), 16.0);
        assert_eq!(fat.max_ssets_per_rank(), 16);
    }

    #[test]
    fn nodes_used_and_fit() {
        let topo = ClusterTopology::blue_gene_q_hybrid(16_384, 4096 * 16_384).unwrap();
        assert_eq!(topo.nodes_used(), (16_385f64 / 32.0).ceil() as usize);
        assert!(topo.fits_machine());
        assert_eq!(topo.total_ranks(), 16_385);
    }

    #[test]
    fn memory_limit_reflects_paper_constraint() {
        // 4,096 SSets per rank at memory six fits BG/Q node memory…
        let topo = ClusterTopology::blue_gene_q_hybrid(64, 4096 * 64).unwrap();
        assert!(topo.strategy_view_fits(4096));
        // …but the same population at a hypothetical memory-ten (1M states)
        // does not fit per-rank memory.
        assert!(!topo.strategy_view_fits(1 << 20));
    }
}
