//! # egd-cluster
//!
//! Simulated HPC substrate for the distributed level of the paper's
//! hierarchy. The paper runs a hybrid MPI + OpenMP code on IBM Blue Gene/P
//! (3-D torus, up to 294,912 cores) and Blue Gene/Q (5-D torus, up to 16,384
//! tasks). Neither machine nor MPI is available here, so this crate builds
//! the closest executable equivalents:
//!
//! * [`mpi`] — an in-process message-passing communicator with the same
//!   primitive set the paper uses (broadcast over a collective tree,
//!   non-blocking point-to-point sends of fitness values, barriers), executed
//!   by one OS thread per simulated rank.
//! * [`machine`] / [`network`] — machine descriptions of Blue Gene/P and
//!   Blue Gene/Q (cores, threads, memory, torus dimensions, link bandwidth,
//!   collective latency) and analytic torus / collective-network timing.
//! * [`executor`] — the paper's distributed algorithm (§V) run over the
//!   simulated communicator: rank 0 is the Nature Agent, the other ranks own
//!   blocks of SSets, and every strategy change is broadcast so all ranks
//!   keep a consistent population view. Produces populations identical to the
//!   sequential reference.
//! * [`scheduled`] — the same algorithm with ranks as *tasks* on the
//!   `egd-sched` work-stealing scheduler instead of one OS thread per rank,
//!   lifting the ~10² rank ceiling and reporting measured load balance
//!   through [`trace::LoadBalance`].
//! * [`cost`] / [`perf`] — a calibrated compute + communication cost model
//!   and the analytic scaling harness that regenerates the paper's scaling
//!   results (Fig. 4, Fig. 5, Fig. 6, Table VI) for processor counts far
//!   beyond what can be spawned as real threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod executor;
pub mod machine;
pub mod mpi;
pub mod network;
pub mod perf;
pub mod scheduled;
pub mod topology;
pub mod trace;

pub use cost::{CommMode, ComputeOptimization, CostModel, OptimizationLevel};
pub use executor::{DistributedConfig, DistributedExecutor, DistributedRunSummary};
pub use machine::MachineSpec;
pub use mpi::{Communicator, SimWorld};
pub use network::{CollectiveNetwork, TorusNetwork};
pub use perf::{ScalingHarness, ScalingPoint, Workload};
pub use scheduled::{ScheduledConfig, ScheduledExecutor, ScheduledRunSummary};
pub use topology::ClusterTopology;
pub use trace::{GenerationTrace, RankTiming, RunTrace};
