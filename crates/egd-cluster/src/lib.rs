//! # egd-cluster
//!
//! Simulated HPC substrate for the distributed level of the paper's
//! hierarchy. The paper runs a hybrid MPI + OpenMP code on IBM Blue Gene/P
//! (3-D torus, up to 294,912 cores) and Blue Gene/Q (5-D torus, up to 16,384
//! tasks). Neither machine nor MPI is available here, so this crate builds
//! the closest executable equivalents:
//!
//! * [`mpi`] — an in-process message-passing communicator with the same
//!   primitive set the paper uses (broadcast over a collective tree,
//!   non-blocking point-to-point sends of fitness values, barriers). Ranks
//!   are *cooperatively scheduled tasks* multiplexed onto a small worker
//!   pool by [`taskexec`]; blocking collectives are task yields, so worlds
//!   of 10³–10⁴ ranks cost no OS threads (the original thread-per-rank
//!   transport topped out around 10² ranks and has been retired).
//! * [`machine`] / [`network`] — machine descriptions of Blue Gene/P and
//!   Blue Gene/Q (cores, threads, memory, torus dimensions, link bandwidth,
//!   collective latency) and analytic torus / collective-network timing.
//! * [`executor`] — the paper's distributed algorithm (§V) run over the
//!   simulated communicator: rank 0 is the Nature Agent, the other ranks own
//!   blocks of SSets, and every strategy change is broadcast so all ranks
//!   keep a consistent population view. Produces populations identical to the
//!   sequential reference.
//! * [`scheduled`] — the canonical distributed backend: ranks as *tasks* on
//!   the `egd-sched` work-stealing scheduler, with rank-named panic
//!   containment ([`scheduled::run_rank_tasks`]) and measured load balance
//!   reported through [`trace::LoadBalance`].
//! * [`fault`] — fault tolerance over all of the above: worlds run under an
//!   `egd-fault` injection plan (rank crashes, message drops/delays, slow
//!   ranks), every rank checkpoints its replicated state at a configurable
//!   generation cadence, and [`fault::SupervisedExecutor`] classifies
//!   failures and replays from verified checkpoints until the run completes
//!   byte-identical to a fault-free execution.
//! * [`cost`] / [`perf`] — a calibrated compute + communication cost model
//!   and the analytic scaling harness that regenerates the paper's scaling
//!   results (Fig. 4, Fig. 5, Fig. 6, Table VI) for processor counts far
//!   beyond what can be spawned as real threads. Combined with
//!   `egd_sched::simulate` virtual-time replay it also drives the
//!   10³–10⁴-rank scale gate in `egd-bench`'s `bench_diff`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod cost;
pub mod executor;
pub mod fault;
pub mod machine;
pub mod mpi;
pub mod network;
pub mod perf;
pub mod scheduled;
pub mod taskexec;
pub mod topology;
pub mod trace;

pub use cost::{CommMode, ComputeOptimization, CostModel, OptimizationLevel, TopologyCost};
pub use executor::{DistributedConfig, DistributedExecutor, DistributedRunSummary};
pub use fault::{FaultRecoveryStats, SupervisedExecutor, SupervisedRunSummary, SupervisorConfig};
pub use machine::MachineSpec;
pub use mpi::{Communicator, PendingOp, SimWorld, TrafficSnapshot, TrafficStats, WorldFailure};
pub use network::{CollectiveNetwork, TorusNetwork};
pub use perf::{ScalingHarness, ScalingPoint, Workload};
pub use scheduled::{run_rank_tasks, ScheduledConfig, ScheduledExecutor, ScheduledRunSummary};
pub use topology::ClusterTopology;
pub use trace::{GenerationTrace, RankTiming, RunTrace};
