//! Interconnect timing models: torus point-to-point and collective network.
//!
//! Blue Gene systems have two networks the paper uses explicitly (§V-B):
//! a torus for point-to-point messages (3-D on BG/P, 5-D on BG/Q) and a
//! dedicated collective network for broadcasts and reductions. Both are
//! modelled with the standard latency + size/bandwidth form, with torus
//! latency proportional to the hop count of the route.

use serde::{Deserialize, Serialize};

/// An n-dimensional torus network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TorusNetwork {
    /// Nodes along each dimension.
    dims: Vec<u32>,
    /// Per-link bandwidth in GiB/s.
    link_bandwidth_gib_s: f64,
    /// Per-hop latency in microseconds.
    hop_latency_us: f64,
}

impl TorusNetwork {
    /// Creates a torus with the given dimensions, link bandwidth (GiB/s) and
    /// per-hop latency (µs).
    pub fn new(dims: Vec<u32>, link_bandwidth_gib_s: f64, hop_latency_us: f64) -> Self {
        assert!(!dims.is_empty(), "a torus needs at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "torus dimensions must be positive"
        );
        TorusNetwork {
            dims,
            link_bandwidth_gib_s,
            hop_latency_us,
        }
    }

    /// The dimension sizes.
    pub fn dimensions(&self) -> &[u32] {
        &self.dims
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// Per-link bandwidth in GiB/s.
    pub fn link_bandwidth_gib_s(&self) -> f64 {
        self.link_bandwidth_gib_s
    }

    /// The torus coordinates of a node index (row-major order).
    pub fn coordinates(&self, node: usize) -> Vec<u32> {
        assert!(node < self.num_nodes(), "node index out of range");
        let mut remainder = node;
        let mut coords = vec![0u32; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = (remainder % d as usize) as u32;
            remainder /= d as usize;
        }
        coords
    }

    /// The node index of torus coordinates (inverse of
    /// [`TorusNetwork::coordinates`]).
    pub fn node_of(&self, coords: &[u32]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "dimension mismatch");
        let mut node = 0usize;
        for (i, &d) in self.dims.iter().enumerate() {
            assert!(coords[i] < d, "coordinate out of range");
            node = node * d as usize + coords[i] as usize;
        }
        node
    }

    /// Minimal hop count between two nodes (Manhattan distance with
    /// wrap-around in every dimension).
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        let ca = self.coordinates(a);
        let cb = self.coordinates(b);
        ca.iter()
            .zip(&cb)
            .zip(&self.dims)
            .map(|((&x, &y), &d)| {
                let diff = x.abs_diff(y);
                diff.min(d - diff)
            })
            .sum()
    }

    /// The network diameter (maximum minimal hop count between any two
    /// nodes): the sum of `floor(d/2)` over dimensions.
    pub fn diameter(&self) -> u32 {
        self.dims.iter().map(|&d| d / 2).sum()
    }

    /// Average hop count of a uniformly random pair, approximated as the sum
    /// of `d/4` per dimension (exact for even dimension sizes).
    pub fn average_hops(&self) -> f64 {
        self.dims.iter().map(|&d| d as f64 / 4.0).sum()
    }

    /// Time in microseconds for a point-to-point message of `bytes` over
    /// `hops` hops.
    pub fn p2p_time_us(&self, bytes: usize, hops: u32) -> f64 {
        let latency = self.hop_latency_us * hops.max(1) as f64;
        let transfer = bytes as f64 / (self.link_bandwidth_gib_s * 1024.0 * 1024.0 * 1024.0) * 1e6;
        latency + transfer
    }

    /// Time for a point-to-point message between two specific nodes.
    pub fn p2p_time_between_us(&self, bytes: usize, a: usize, b: usize) -> f64 {
        self.p2p_time_us(bytes, self.hops(a, b))
    }
}

/// The collective (tree) network used for broadcasts and reductions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveNetwork {
    /// Bandwidth in GiB/s.
    bandwidth_gib_s: f64,
    /// Per-stage latency in microseconds.
    stage_latency_us: f64,
}

impl CollectiveNetwork {
    /// Creates a collective-network model.
    pub fn new(bandwidth_gib_s: f64, stage_latency_us: f64) -> Self {
        CollectiveNetwork {
            bandwidth_gib_s,
            stage_latency_us,
        }
    }

    /// Number of tree stages needed to reach `num_ranks` ranks
    /// (`ceil(log2 P)`, at least 1). Delegates to [`crate::collective`] — the
    /// same binomial tree the simulated transport executes, so the model
    /// prices the schedule that actually runs.
    pub fn stages(num_ranks: usize) -> u32 {
        crate::collective::stages(num_ranks)
    }

    /// Time in microseconds to broadcast `bytes` to `num_ranks` ranks.
    pub fn broadcast_time_us(&self, bytes: usize, num_ranks: usize) -> f64 {
        let stages = Self::stages(num_ranks) as f64;
        let transfer = bytes as f64 / (self.bandwidth_gib_s * 1024.0 * 1024.0 * 1024.0) * 1e6;
        stages * self.stage_latency_us + transfer
    }

    /// Time to reduce `bytes` from `num_ranks` ranks to the root (same shape
    /// as a broadcast on this class of networks).
    pub fn reduce_time_us(&self, bytes: usize, num_ranks: usize) -> f64 {
        self.broadcast_time_us(bytes, num_ranks)
    }

    /// Time for a full barrier across `num_ranks` ranks (an empty reduce
    /// followed by an empty broadcast).
    pub fn barrier_time_us(&self, num_ranks: usize) -> f64 {
        2.0 * Self::stages(num_ranks) as f64 * self.stage_latency_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus3() -> TorusNetwork {
        TorusNetwork::new(vec![4, 4, 4], 1.0, 1.0)
    }

    #[test]
    fn coordinates_round_trip() {
        let t = torus3();
        for node in 0..t.num_nodes() {
            assert_eq!(t.node_of(&t.coordinates(node)), node);
        }
    }

    #[test]
    fn num_nodes_is_product_of_dims() {
        assert_eq!(torus3().num_nodes(), 64);
        assert_eq!(
            TorusNetwork::new(vec![8, 8, 8, 8, 2], 1.0, 1.0).num_nodes(),
            8192
        );
    }

    #[test]
    fn hops_are_symmetric_and_zero_on_diagonal() {
        let t = torus3();
        for a in 0..8 {
            assert_eq!(t.hops(a, a), 0);
            for b in 0..t.num_nodes() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn hops_respect_wraparound() {
        let t = TorusNetwork::new(vec![8], 1.0, 1.0);
        // Nodes 0 and 7 are adjacent through the wrap link.
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn hops_never_exceed_diameter() {
        let t = torus3();
        let diameter = t.diameter();
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert!(t.hops(a, b) <= diameter);
            }
        }
    }

    #[test]
    fn average_hops_is_reasonable() {
        let t = torus3();
        assert!((t.average_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn p2p_time_grows_with_hops_and_bytes() {
        let t = torus3();
        assert!(t.p2p_time_us(1024, 4) > t.p2p_time_us(1024, 1));
        assert!(t.p2p_time_us(1 << 20, 1) > t.p2p_time_us(1024, 1));
        assert!(t.p2p_time_between_us(64, 0, 63) >= t.p2p_time_between_us(64, 0, 1));
    }

    #[test]
    fn collective_stages() {
        assert_eq!(CollectiveNetwork::stages(1), 1);
        assert_eq!(CollectiveNetwork::stages(2), 1);
        assert_eq!(CollectiveNetwork::stages(3), 2);
        assert_eq!(CollectiveNetwork::stages(1024), 10);
        assert_eq!(CollectiveNetwork::stages(294_912), 19);
    }

    #[test]
    fn broadcast_time_grows_logarithmically() {
        let c = CollectiveNetwork::new(1.0, 2.0);
        let t1k = c.broadcast_time_us(512, 1024);
        let t256k = c.broadcast_time_us(512, 262_144);
        assert!(t256k > t1k);
        // Going from 2^10 to 2^18 ranks adds exactly 8 stages of latency.
        assert!((t256k - t1k - 8.0 * 2.0).abs() < 1e-9);
        assert_eq!(c.reduce_time_us(512, 1024), t1k);
        assert!(c.barrier_time_us(1024) > 0.0);
    }

    #[test]
    #[should_panic(expected = "node index out of range")]
    fn out_of_range_node_panics() {
        torus3().coordinates(64);
    }

    #[test]
    #[should_panic(expected = "torus dimensions must be positive")]
    fn zero_dimension_panics() {
        TorusNetwork::new(vec![4, 0], 1.0, 1.0);
    }
}
