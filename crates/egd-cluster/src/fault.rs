//! Supervised rank recovery: run the distributed protocol under an armed
//! fault plan and survive it.
//!
//! [`SupervisedExecutor`] wraps [`DistributedExecutor`] in an attempt loop.
//! Each attempt runs the whole world under a fresh recovery *epoch* (stale
//! packets from a failed attempt are rejected at the mailbox door — see
//! [`crate::mpi`]) with generation-granular checkpointing threaded into every
//! rank body. When an attempt fails, the supervisor classifies the failure
//! from the fault plan's fired-event log and the structured
//! [`WorldFailure`]:
//!
//! * **Crash-like** (an injected rank crash, a rank-body error, a panic) —
//!   *respawn*: replay the world from the newest checkpoint every rank
//!   holds, verified byte-identical across ranks.
//! * **Transient** (a dropped or indefinitely-held message stalling the
//!   protocol with no rank error) — *retry* with bounded exponential
//!   backoff, also from the latest common checkpoint.
//!
//! Because every fault event fires at most once per armed plan, a replay
//! makes progress past the fault deterministically, and because all model
//! randomness comes from per-generation RNG substreams, the recovered run's
//! final population is byte-identical to a fault-free run — the chaos suite
//! in `egd-tests` asserts exactly that. After each recovery the surviving
//! partition is repriced with the shared cost model so the run's metrics
//! record what the post-recovery load balance looks like.

use crate::executor::{
    assemble_summary, run_rank_from, DistributedExecutor, DistributedRunSummary, FaultContext,
    RankStart,
};
use crate::mpi::{SimWorld, WorldFailure};
use egd_core::config::SimulationConfig;
use egd_core::error::{EgdError, EgdResult};
use egd_core::population::Population;
use egd_core::SimulationState;
use egd_fault::{CheckpointStore, FaultEvent, FiredFault, MemoryStore};
use egd_obs::{SpanKind, SpanTimer};
use egd_parallel::grouping::StrategyGrouping;
use egd_parallel::partition::SSetPartition;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the fault supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Checkpoint every rank's state every `checkpoint_interval` generations
    /// (0 disables checkpointing; recoveries then replay from generation 0).
    pub checkpoint_interval: u64,
    /// Maximum world attempts (first run + recoveries) before giving up.
    pub max_attempts: u32,
    /// Initial backoff before retrying a transient failure, in milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, in milliseconds (the backoff doubles per retry up to
    /// this cap).
    pub backoff_cap_ms: u64,
    /// Fault-injection domain of the supervised worlds (must equal the armed
    /// plan's seed for faults to reach this run — see
    /// [`SimWorld::fault_domain`]). Irrelevant when nothing is armed.
    pub fault_domain: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_interval: 4,
            max_attempts: 8,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
            fault_domain: 0,
        }
    }
}

impl SupervisorConfig {
    /// Sets the checkpoint cadence (0 disables checkpointing).
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the maximum number of world attempts.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Sets the fault-injection domain (the armed plan's seed).
    pub fn fault_domain(mut self, domain: u64) -> Self {
        self.fault_domain = domain;
        self
    }
}

/// What the supervisor did to keep a run alive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRecoveryStats {
    /// World attempts, including the successful one.
    pub attempts: u32,
    /// Transient recoveries (retry with backoff).
    pub retries: u64,
    /// Crash recoveries (respawn from checkpoint).
    pub respawns: u64,
    /// Generations re-executed across all recoveries (progress lost to
    /// rollback).
    pub generations_replayed: u64,
    /// Checkpoints the run saved across all ranks and attempts.
    pub checkpoints_saved: u64,
    /// Recoveries that resumed from a checkpoint (rather than generation 0).
    pub checkpoint_resumes: u64,
    /// Post-recovery partition repricings performed.
    pub repricings: u64,
    /// Heaviest predicted worker-block weight (ns) from the last repricing.
    pub repriced_max_block_weight: u64,
    /// Faults the armed plan fired during this run (all kinds).
    pub faults_injected: u64,
    /// Injected rank crashes.
    pub crashes_injected: u64,
    /// Injected message drops.
    pub drops_injected: u64,
    /// Injected message delays.
    pub delays_injected: u64,
    /// Injected slow-rank stalls.
    pub slow_ranks_injected: u64,
    /// Stale pre-recovery packets the transport rejected.
    pub stale_rejected: u64,
}

/// Summary of a supervised run: the final (successful) attempt's
/// [`DistributedRunSummary`] plus the recovery account.
#[derive(Debug, Clone)]
pub struct SupervisedRunSummary {
    /// The successful attempt's summary. Traffic and timing traces cover the
    /// final attempt only (earlier attempts' worlds died with their stats, so
    /// nothing pre-crash is double-counted).
    pub summary: DistributedRunSummary,
    /// What it took to get there.
    pub recovery: FaultRecoveryStats,
}

impl SupervisedRunSummary {
    /// The unified metrics view: the final attempt's traffic and generation
    /// rows, plus every recovery counter under `fault_*` keys.
    pub fn metrics(&self) -> egd_obs::MetricsSnapshot {
        let mut snap = self.summary.metrics();
        let r = &self.recovery;
        snap.add_counter("fault_attempts", u64::from(r.attempts));
        snap.add_counter("fault_retries", r.retries);
        snap.add_counter("fault_respawns", r.respawns);
        snap.add_counter("fault_generations_replayed", r.generations_replayed);
        snap.add_counter("fault_checkpoints_saved", r.checkpoints_saved);
        snap.add_counter("fault_checkpoint_resumes", r.checkpoint_resumes);
        snap.add_counter("fault_repricings", r.repricings);
        snap.add_counter(
            "fault_repriced_max_block_weight",
            r.repriced_max_block_weight,
        );
        snap.add_counter("fault_injected", r.faults_injected);
        snap.add_counter("fault_crashes", r.crashes_injected);
        snap.add_counter("fault_drops", r.drops_injected);
        snap.add_counter("fault_delays", r.delays_injected);
        snap.add_counter("fault_slow_ranks", r.slow_ranks_injected);
        snap.add_counter("fault_stale_rejected", r.stale_rejected);
        snap
    }
}

/// The fault-tolerant distributed executor.
pub struct SupervisedExecutor {
    executor: DistributedExecutor,
    supervisor: SupervisorConfig,
    store: Arc<dyn CheckpointStore>,
}

impl std::fmt::Debug for SupervisedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedExecutor")
            .field("executor", &self.executor)
            .field("supervisor", &self.supervisor)
            .finish()
    }
}

impl SupervisedExecutor {
    /// Creates a supervised executor with an in-memory checkpoint store.
    pub fn new(
        sim_config: SimulationConfig,
        dist_config: crate::executor::DistributedConfig,
        supervisor: SupervisorConfig,
    ) -> EgdResult<Self> {
        Self::with_store(
            sim_config,
            dist_config,
            supervisor,
            Arc::new(MemoryStore::new()),
        )
    }

    /// Creates a supervised executor over an explicit checkpoint store
    /// (e.g. an [`egd_fault::DirStore`] for on-disk checkpoints).
    pub fn with_store(
        sim_config: SimulationConfig,
        dist_config: crate::executor::DistributedConfig,
        supervisor: SupervisorConfig,
        store: Arc<dyn CheckpointStore>,
    ) -> EgdResult<Self> {
        Ok(SupervisedExecutor {
            executor: DistributedExecutor::new(sim_config, dist_config)?,
            supervisor,
            store,
        })
    }

    /// The checkpoint store backing this executor.
    pub fn store(&self) -> &Arc<dyn CheckpointStore> {
        &self.store
    }

    /// Runs the simulation, recovering from injected (or genuine) rank
    /// failures until it completes or `max_attempts` is exhausted. With no
    /// fault plan armed this is the plain distributed run plus the
    /// checkpoint cadence.
    pub fn run(&self) -> EgdResult<SupervisedRunSummary> {
        let sim_config = Arc::new(self.executor.sim_config().clone());
        let dist = *self.executor.dist_config();
        let ranks = dist.workers + 1;
        let max_attempts = self.supervisor.max_attempts.max(1);
        let mut stats = FaultRecoveryStats::default();
        let mut resume: Option<SimulationState> = None;
        let mut backoff_ms = self.supervisor.backoff_base_ms;

        for attempt in 0..max_attempts {
            stats.attempts = attempt + 1;
            let resume_generation = resume.as_ref().map_or(0, |s| s.generation);
            let progress = Arc::new(AtomicU64::new(resume_generation));
            let ctx = Arc::new(FaultContext {
                store: Arc::clone(&self.store),
                interval: self.supervisor.checkpoint_interval,
                progress: Arc::clone(&progress),
            });
            let start = RankStart {
                generation: resume_generation,
                changes: resume.as_ref().map_or(0, |s| s.generations_with_change),
                population: resume.as_ref().map(|s| s.population.clone()),
            };
            let world = SimWorld::new(ranks)?
                .workers(dist.pool_threads)
                .epoch(u64::from(attempt))
                .fault_domain(self.supervisor.fault_domain);
            let fired_mark = egd_fault::fired_count();

            let body_config = Arc::clone(&sim_config);
            let outcome = world.run_detailed(move |comm| {
                let config = Arc::clone(&body_config);
                let ctx = Arc::clone(&ctx);
                let start = start.clone();
                async move { run_rank_from(comm, config, dist, start, Some(ctx)).await }
            });

            match outcome {
                Ok((results, world_stats)) => {
                    let summary =
                        assemble_summary(results, world_stats.snapshot(), sim_config.generations)?;
                    for rank in 0..ranks {
                        stats.checkpoints_saved += self.store.generations(rank)?.len() as u64;
                    }
                    let report = egd_fault::injection_report();
                    stats.faults_injected = report.fired.len() as u64;
                    stats.crashes_injected = report.crashes;
                    stats.drops_injected = report.drops;
                    stats.delays_injected = report.delays;
                    stats.slow_ranks_injected = report.stalls;
                    stats.stale_rejected = report.stale_rejected;
                    return Ok(SupervisedRunSummary {
                        summary,
                        recovery: stats,
                    });
                }
                Err(failure) => {
                    // Drain any scheduler stats the failed attempt left on
                    // this thread, so a metrics snapshot assembled after
                    // recovery cannot merge pre-crash numbers. (Traffic
                    // stats need no reset: each attempt's world owns a fresh
                    // `TrafficStats` and only the successful attempt's
                    // snapshot reaches the summary.)
                    let _ = egd_sched::take_last_run_stats();

                    let fired = egd_fault::fired_events();
                    let fired_since: &[FiredFault] = fired.get(fired_mark..).unwrap_or(&[]);
                    if fired_since.is_empty() {
                        // Nothing was injected during this attempt: the
                        // failure is genuine (a real bug or bad config), and
                        // replaying a deterministic protocol cannot fix it.
                        return Err(failure.error);
                    }
                    if attempt + 1 == max_attempts {
                        return Err(EgdError::Communication {
                            reason: format_supervisor_report(&failure, &fired, max_attempts),
                        });
                    }
                    let crash_like = failure.panicked.is_some()
                        || !failure.failed_ranks.is_empty()
                        || fired_since
                            .iter()
                            .any(|f| matches!(f.fault, FaultEvent::CrashAtGeneration { .. }));
                    if crash_like {
                        stats.respawns += 1;
                    } else {
                        stats.retries += 1;
                        std::thread::sleep(Duration::from_millis(backoff_ms));
                        backoff_ms = (backoff_ms * 2).min(self.supervisor.backoff_cap_ms.max(1));
                    }

                    let progressed = progress.load(Ordering::Relaxed);
                    resume = self.latest_common_checkpoint(ranks, &sim_config)?;
                    let resumed_from = resume.as_ref().map_or(0, |s| s.generation);
                    stats.generations_replayed += progressed.saturating_sub(resumed_from);
                    if resume.is_some() {
                        stats.checkpoint_resumes += 1;
                    }
                    if let Some(span) = SpanTimer::start_on(0, SpanKind::Recovery) {
                        span.finish(resumed_from);
                    }

                    // Reprice the partition the recovered world re-enters:
                    // the metrics record what the post-recovery load balance
                    // looks like under the shared cost model.
                    let population = match &resume {
                        Some(state) => state.population.clone(),
                        None => sim_config.initial_population()?,
                    };
                    stats.repricings += 1;
                    stats.repriced_max_block_weight =
                        reprice_partition(&sim_config, &population, dist.workers)?;
                }
            }
        }
        unreachable!("the attempt loop returns on success, exhaustion, or genuine error")
    }

    /// The newest generation every rank has a checkpoint for, loaded and
    /// verified: all ranks' bytes must be identical (they snapshot the same
    /// replicated global state) and the state must verify against this
    /// executor's seed.
    fn latest_common_checkpoint(
        &self,
        ranks: usize,
        config: &SimulationConfig,
    ) -> EgdResult<Option<SimulationState>> {
        let mut common: Option<BTreeSet<u64>> = None;
        for rank in 0..ranks {
            let gens: BTreeSet<u64> = self.store.generations(rank)?.into_iter().collect();
            common = Some(match common {
                None => gens,
                Some(prev) => prev.intersection(&gens).copied().collect(),
            });
            if common.as_ref().is_some_and(BTreeSet::is_empty) {
                return Ok(None);
            }
        }
        let Some(generation) = common.and_then(|c| c.iter().next_back().copied()) else {
            return Ok(None);
        };
        let missing = |rank: usize| EgdError::Communication {
            reason: format!("checkpoint for rank {rank} at generation {generation} disappeared"),
        };
        let reference = self.store.load(0, generation)?.ok_or_else(|| missing(0))?;
        for rank in 1..ranks {
            let bytes = self
                .store
                .load(rank, generation)?
                .ok_or_else(|| missing(rank))?;
            if bytes != reference {
                return Err(EgdError::Communication {
                    reason: format!(
                        "checkpoint at generation {generation} differs between rank 0 and \
                         rank {rank}: cannot resume from an inconsistent snapshot"
                    ),
                });
            }
        }
        let state = SimulationState::from_bytes(&reference)?;
        if state.seed != config.seed {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "checkpoint seed {} does not match the run's seed {}",
                    state.seed, config.seed
                ),
            });
        }
        Ok(Some(state))
    }
}

/// Prices the worker blocks of the partition a recovered run re-enters,
/// using the shared cost model: returns the heaviest predicted block weight
/// (ns). Pure accounting — the partition itself is deterministic and
/// unchanged by recovery.
fn reprice_partition(
    config: &SimulationConfig,
    population: &Population,
    workers: usize,
) -> EgdResult<u64> {
    let model = egd_cost::CostModel::blue_gene_like();
    let game = config.game()?;
    let strategies = population.strategies();
    let grouping = StrategyGrouping::of(strategies);
    let rows = egd_cost::predict::row_weights(&model, &game, strategies, &grouping.group_rep);
    let partition = SSetPartition::new(config.num_ssets, workers)?;
    let mut heaviest = 0u64;
    for worker in 0..workers {
        let total: u64 = partition
            .block(worker)
            .map(|sset| rows[grouping.group_of[sset]])
            .sum();
        heaviest = heaviest.max(total);
    }
    Ok(heaviest)
}

/// Renders the supervisor's terminal failure report: the last attempt's
/// error, the failed ranks, the blocked ranks *deduplicated by pending
/// operation* and capped like the deadlock report's 16-entry list, and the
/// fault-plan events (by id) that fired over the run.
fn format_supervisor_report(failure: &WorldFailure, fired: &[FiredFault], attempts: u32) -> String {
    const SHOWN: usize = 16;
    use std::fmt::Write;

    let mut out = format!(
        "supervised run failed after {attempts} attempt(s): {}",
        failure.error
    );
    if let Some(rank) = failure.panicked {
        let _ = write!(out, "; rank {rank} panicked");
    }
    if !failure.failed_ranks.is_empty() {
        let shown: Vec<String> = failure
            .failed_ranks
            .iter()
            .take(SHOWN)
            .map(|(rank, error)| format!("{rank}: {error}"))
            .collect();
        let _ = write!(out, "; failed ranks: [{}]", shown.join(", "));
        if failure.failed_ranks.len() > SHOWN {
            let _ = write!(out, " … and {} more", failure.failed_ranks.len() - SHOWN);
        }
    }
    if !failure.blocked.is_empty() {
        // Dedupe: one entry per distinct pending operation, first-seen
        // order, with the count and a few example ranks.
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        for (rank, op) in &failure.blocked {
            let key = op.map_or_else(|| "unknown op".to_string(), |op| op.to_string());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, ranks)) => ranks.push(*rank),
                None => groups.push((key, vec![*rank])),
            }
        }
        let total_groups = groups.len();
        let shown: Vec<String> = groups
            .into_iter()
            .take(SHOWN)
            .map(|(op, ranks)| {
                let examples: Vec<String> = ranks.iter().take(4).map(usize::to_string).collect();
                let ellipsis = if ranks.len() > 4 { ", …" } else { "" };
                format!(
                    "{} rank(s) in {op} ({}{ellipsis})",
                    ranks.len(),
                    examples.join(", ")
                )
            })
            .collect();
        let _ = write!(out, "; blocked: [{}]", shown.join(", "));
        if total_groups > SHOWN {
            let _ = write!(out, " … and {} more op(s)", total_groups - SHOWN);
        }
    }
    if !fired.is_empty() {
        let shown: Vec<String> = fired
            .iter()
            .take(SHOWN)
            .map(|f| format!("#{} {}", f.event, f.fault))
            .collect();
        let _ = write!(out, "; injected: [{}]", shown.join(", "));
        if fired.len() > SHOWN {
            let _ = write!(out, " … and {} more", fired.len() - SHOWN);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi::PendingOp;

    fn failure_with(
        blocked: Vec<(usize, Option<PendingOp>)>,
        failed_ranks: Vec<(usize, EgdError)>,
    ) -> WorldFailure {
        WorldFailure {
            error: EgdError::Communication {
                reason: "protocol deadlock".to_string(),
            },
            failed_ranks,
            panicked: None,
            blocked,
        }
    }

    #[test]
    fn supervisor_report_dedupes_and_caps_blocked_ranks() {
        // 40 ranks parked on the same broadcast collapse to one entry; 20
        // distinct recv ops are capped at 16.
        let mut blocked: Vec<(usize, Option<PendingOp>)> = (0..40)
            .map(|rank| (rank, Some(PendingOp::Broadcast { root: 0 })))
            .collect();
        for rank in 40..60 {
            blocked.push((
                rank,
                Some(PendingOp::Recv {
                    from: rank - 1,
                    tag: 9,
                }),
            ));
        }
        let fired = vec![FiredFault {
            event: 3,
            fault: FaultEvent::DropMessage {
                from: 1,
                to: 0,
                nth: 2,
            },
        }];
        let report = format_supervisor_report(&failure_with(blocked, Vec::new()), &fired, 8);
        assert!(
            report.contains("40 rank(s) in broadcast(root=0) (0, 1, 2, 3, …)"),
            "{report}"
        );
        // 21 distinct ops total, capped at 16 shown.
        assert!(report.contains("… and 5 more op(s)"), "{report}");
        // The fired fault appears with its plan event id.
        assert!(report.contains("#3 "), "{report}");
        assert!(report.len() < 2000, "{report}");
    }

    #[test]
    fn supervisor_report_caps_failed_ranks() {
        let failed: Vec<(usize, EgdError)> = (0..20)
            .map(|rank| {
                (
                    rank,
                    EgdError::Communication {
                        reason: format!("rank {rank} crashed"),
                    },
                )
            })
            .collect();
        let report = format_supervisor_report(&failure_with(Vec::new(), failed), &[], 2);
        assert!(report.contains("failed after 2 attempt(s)"), "{report}");
        assert!(report.contains("0: "), "{report}");
        assert!(report.contains("… and 4 more"), "{report}");
    }
}
