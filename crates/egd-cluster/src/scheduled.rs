//! The distributed algorithm with ranks as *scheduled tasks*.
//!
//! [`ScheduledExecutor`] is the canonical execution backend for the
//! distributed layer: every generation, each rank's game-play phase (the
//! fitness of its contiguous SSet block) becomes one task on the `egd-sched`
//! work-stealing scheduler, executed by a small fixed pool of workers.
//! Thousands of ranks then cost no OS threads — only tasks — and skewed
//! per-rank work (small `R` = SSets per rank, heterogeneous blocks) is
//! handled in two levels: the initial per-worker segments of the rank space
//! are **sized by predicted rank cost** (the shared `egd-cost` model prices
//! each rank's block — deterministic pairs as cache probes, stochastic pairs
//! as full games), and adaptive stealing corrects whatever the prediction
//! got wrong instead of serialising on the slowest rank. (The
//! protocol-level [`crate::executor::DistributedExecutor`] runs the same
//! science with explicit message passing; since the retirement of the
//! thread-per-rank transport its ranks are cooperative tasks too.)
//!
//! Rank-task failure is contained: a panicking rank body is caught inside
//! its own task ([`run_rank_tasks`]) and surfaces as an error naming the
//! rank and the panic payload — it does not poison the scheduler pool.
//!
//! Semantics are unchanged from the thread-per-rank executor:
//!
//! * each rank computes its block's fitness with the same strategy-grouping
//!   scheme and the same per-`(pair, generation)` random streams as the
//!   sequential reference, so fitness values are bit-identical;
//! * the per-rank results are assembled **in rank order** (the scheduler's
//!   deterministic index-ordered reduction), so the Nature Agent sees the
//!   exact fitness view the sequential engine produces;
//! * the Nature Agent's decision is applied once to the shared strategy
//!   view — the logical equivalent of the broadcast that keeps all rank
//!   views consistent.
//!
//! The run's [`LoadBalance`] (steal counts, per-worker busy time) is
//! reported through [`crate::trace::RunTrace`], feeding the Fig. 4
//! strong-scaling load-balance reporting.

use crate::trace::{GenerationTrace, LoadBalance, RankTiming, RunTrace};
use egd_core::config::SimulationConfig;
use egd_core::error::{EgdError, EgdResult};
use egd_core::population::Population;
use egd_core::simulation::FitnessMode;
use egd_core::sset::OpponentPolicy;
use egd_obs::{GenerationMetrics, MetricsSnapshot, SpanKind, SpanTimer};
use egd_parallel::cache::ConcurrentPairEvaluator;
use egd_parallel::grouping::StrategyGrouping;
use egd_parallel::partition::SSetPartition;
use egd_sched::SchedStats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of a scheduled distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledConfig {
    /// Number of simulated worker ranks (tasks per generation).
    pub ranks: usize,
    /// Number of scheduler workers executing the rank tasks.
    pub threads: usize,
    /// How pair payoffs are obtained.
    pub fitness_mode: FitnessMode,
    /// Record a timing trace every `trace_interval` generations
    /// (0 disables tracing).
    pub trace_interval: u64,
}

impl ScheduledConfig {
    /// A configuration with `ranks` simulated ranks and default options
    /// (scheduler workers = available parallelism).
    pub fn with_ranks(ranks: usize) -> Self {
        ScheduledConfig {
            ranks,
            threads: 0,
            fitness_mode: FitnessMode::Simulated,
            trace_interval: 0,
        }
    }

    /// Sets the scheduler worker count (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the fitness mode.
    pub fn fitness_mode(mut self, mode: FitnessMode) -> Self {
        self.fitness_mode = mode;
        self
    }

    /// Sets the trace interval.
    pub fn trace_interval(mut self, interval: u64) -> Self {
        self.trace_interval = interval;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Summary of a completed scheduled run.
#[derive(Debug, Clone)]
pub struct ScheduledRunSummary {
    /// The final population.
    pub population: Population,
    /// Number of generations simulated.
    pub generations: u64,
    /// Number of generations in which the population changed.
    pub generations_with_change: u64,
    /// Number of simulated ranks.
    pub ranks: usize,
    /// Number of scheduler workers that executed the rank tasks.
    pub threads: usize,
    /// Accumulated scheduler statistics over all generations.
    pub sched: Option<SchedStats>,
    /// Timing traces (sampled at the configured interval) plus the run's
    /// load-balance summary.
    pub trace: RunTrace,
    /// The unified metrics record of the run: worker table, per-generation
    /// counters, and engine cache/compile counters in one mergeable,
    /// deterministically ordered snapshot.
    pub metrics: MetricsSnapshot,
}

/// The scheduled distributed executor.
#[derive(Debug, Clone)]
pub struct ScheduledExecutor {
    sim_config: SimulationConfig,
    sched_config: ScheduledConfig,
    /// Prices rank tasks for the cost-guided initial partition (fixed
    /// Blue Gene-like constants: deterministic, machine-independent).
    cost_model: egd_cost::CostModel,
}

impl ScheduledExecutor {
    /// Creates an executor, validating the configurations.
    pub fn new(sim_config: SimulationConfig, sched_config: ScheduledConfig) -> EgdResult<Self> {
        sim_config.validate()?;
        if sched_config.ranks == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "the scheduled executor needs at least one rank".to_string(),
            });
        }
        if sched_config.ranks > sim_config.num_ssets {
            return Err(EgdError::InvalidTopology {
                reason: format!(
                    "{} ranks cannot own {} SSets (at most one rank per SSet)",
                    sched_config.ranks, sim_config.num_ssets
                ),
            });
        }
        Ok(ScheduledExecutor {
            sim_config,
            sched_config,
            cost_model: egd_cost::CostModel::blue_gene_like(),
        })
    }

    /// The simulation configuration.
    pub fn sim_config(&self) -> &SimulationConfig {
        &self.sim_config
    }

    /// The scheduled configuration.
    pub fn sched_config(&self) -> &ScheduledConfig {
        &self.sched_config
    }

    /// Runs the full simulation, executing every rank's game-play phase as a
    /// scheduled task.
    pub fn run(&self) -> EgdResult<ScheduledRunSummary> {
        let config = &self.sim_config;
        let threads = self.sched_config.effective_threads();
        let partition = SSetPartition::new(config.num_ssets, self.sched_config.ranks)?;
        let evaluator = ConcurrentPairEvaluator::new(config, self.sched_config.fitness_mode)?;
        let nature = config.nature_agent()?;
        let mut population = config.initial_population()?;

        let mut changes = 0u64;
        let mut trace = RunTrace::default();
        let mut sched_total: Option<SchedStats> = None;
        let mut metrics = MetricsSnapshot::labelled("scheduled");

        for generation in 0..config.generations {
            let generation_span = SpanTimer::start(SpanKind::Generation);
            let grouping = StrategyGrouping::of(population.strategies());
            let rank_weights = predicted_rank_weights(
                &self.cost_model,
                &evaluator,
                &population,
                &grouping,
                &partition,
                self.sched_config.ranks,
            );
            let evaluator_ref = &evaluator;
            let population_ref = &population;
            let grouping_ref = &grouping;
            let partition_ref = &partition;

            // Every rank's game-play phase is one scheduled task; the
            // initial per-worker segments of the rank space are sized by
            // predicted rank cost, so a heavy contiguous prefix (deep-memory
            // or mixed-strategy blocks) no longer piles onto the first
            // workers. Results come back in rank order (deterministic
            // index-keyed reduction).
            let per_rank: Vec<EgdResult<(Vec<f64>, f64)>> =
                run_rank_tasks_weighted(threads, &rank_weights, |rank| {
                    let start = Instant::now();
                    let fitness = block_fitness(
                        population_ref,
                        evaluator_ref,
                        grouping_ref,
                        generation,
                        partition_ref.block(rank),
                    )?;
                    Ok((fitness, start.elapsed().as_secs_f64() * 1e6))
                });
            let mut generation_row = GenerationMetrics {
                generation,
                ..GenerationMetrics::default()
            };
            if let Some(stats) = egd_sched::take_last_run_stats() {
                generation_row.items = stats.items;
                generation_row.steals = stats.steals;
                generation_row.busy_ns = stats.critical_path_ns();
                match sched_total.as_mut() {
                    Some(total) => total.merge(&stats),
                    None => sched_total = Some(stats),
                }
            }

            let mut fitness = Vec::with_capacity(config.num_ssets);
            let mut rank_timings = Vec::with_capacity(self.sched_config.ranks);
            for result in per_rank {
                let (block, compute_us) = result?;
                fitness.extend(block);
                rank_timings.push(RankTiming::new(compute_us, 0.0));
            }
            if !rank_timings.is_empty() {
                generation_row.compute_us = rank_timings.iter().map(|t| t.compute_us).sum::<f64>()
                    / rank_timings.len() as f64;
            }

            let decision = nature.evolve(generation, &fitness, &mut population)?;
            if decision.changes_population() {
                changes += 1;
                generation_row.changed = true;
            }
            metrics.record_generation(generation_row);
            if let Some(span) = generation_span {
                span.finish(generation);
            }

            if self.sched_config.trace_interval > 0
                && generation % self.sched_config.trace_interval == 0
            {
                trace.push(GenerationTrace {
                    generation,
                    ranks: rank_timings,
                });
            }
        }

        trace.load_balance = sched_total.as_ref().map(LoadBalance::from);
        metrics.run.ranks = self.sched_config.ranks as u64;
        metrics.run.workers = threads as u64;
        metrics.run.generations = config.generations;
        if let Some(total) = sched_total.as_ref() {
            for worker in total.worker_metrics() {
                metrics.record_worker(worker);
            }
        }
        metrics.add_counter("pair_cache_hits", evaluator.cache_hits());
        metrics.add_counter("pair_cache_misses", evaluator.cache_misses());
        metrics.add_counter("pair_cache_entries", evaluator.cached_pairs() as u64);
        metrics.add_counter(
            "interned_strategies",
            evaluator.interned_strategies() as u64,
        );
        metrics.add_counter("strategy_compiles", evaluator.strategy_compiles());
        Ok(ScheduledRunSummary {
            population,
            generations: config.generations,
            generations_with_change: changes,
            ranks: self.sched_config.ranks,
            threads,
            sched: sched_total,
            trace,
            metrics,
        })
    }
}

/// Runs `body` once per rank as tasks on the `egd-sched` work-stealing
/// scheduler (up to `threads` workers; `ranks` may far exceed it) and
/// returns the per-rank results in rank order.
///
/// A panicking rank body is caught *inside its own task* and converted into
/// an error naming the rank and carrying the panic payload, so a failing
/// rank neither poisons the scheduler pool nor takes down its siblings.
/// Zero ranks is a valid (empty) workload, and `ranks < threads` simply
/// leaves workers idle. Scheduler statistics of the run are retrievable
/// afterwards via [`egd_sched::take_last_run_stats`] on the calling thread.
pub fn run_rank_tasks<T, F>(threads: usize, ranks: usize, body: F) -> Vec<EgdResult<T>>
where
    T: Send,
    F: Fn(usize) -> EgdResult<T> + Sync,
{
    egd_sched::map_indexed(threads.max(1).min(ranks.max(1)), ranks, contained(&body))
}

/// Like [`run_rank_tasks`], but with the **cost-guided partition** active:
/// the initial per-worker segments of the rank space are bounded at the cost
/// quantiles of `weights` (one predicted cost per rank) and steals split at
/// the victim's predicted cost midpoint. Same panic containment, same
/// rank-ordered results — only the schedule differs.
pub fn run_rank_tasks_weighted<T, F>(threads: usize, weights: &[u64], body: F) -> Vec<EgdResult<T>>
where
    T: Send,
    F: Fn(usize) -> EgdResult<T> + Sync,
{
    egd_sched::map_indexed_weighted(
        threads.max(1).min(weights.len().max(1)),
        weights,
        contained(&body),
    )
}

/// Wraps a rank body so a panic is caught *inside its own task* and surfaces
/// as an error naming the rank (shared by both rank-task entry points).
fn contained<T, F>(body: &F) -> impl Fn(usize) -> EgdResult<T> + Sync + '_
where
    T: Send,
    F: Fn(usize) -> EgdResult<T> + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    move |rank| match catch_unwind(AssertUnwindSafe(|| body(rank))) {
        Ok(result) => result,
        Err(payload) => Err(EgdError::Communication {
            reason: format!(
                "rank {rank} panicked: {}",
                crate::taskexec::panic_message(&*payload)
            ),
        }),
    }
}

/// Predicted per-rank cost (ns) of one generation's game-play phase: each
/// rank evaluates one pair-matrix **row per distinct strategy group** in its
/// SSet block (rows are cached per rank), then accumulates per SSet. Priced
/// by the shared cost model — deterministic pairs as cache probes,
/// stochastic pairs as full games — so deep-memory or mixed-strategy blocks
/// weigh in proportion to their real cost.
fn predicted_rank_weights(
    model: &egd_cost::CostModel,
    evaluator: &ConcurrentPairEvaluator,
    population: &Population,
    grouping: &StrategyGrouping,
    partition: &SSetPartition,
    ranks: usize,
) -> Vec<u64> {
    let row_costs = egd_cost::predict::row_weights(
        model,
        evaluator.game(),
        population.strategies(),
        &grouping.group_rep,
    );
    let mut seen: Vec<usize> = Vec::new();
    (0..ranks)
        .map(|rank| {
            let block = partition.block(rank);
            let block_len = block.len() as u64;
            seen.clear();
            let mut weight = 0u64;
            for sset in block {
                let g = grouping.group_of[sset];
                if !seen.contains(&g) {
                    seen.push(g);
                    weight = weight.saturating_add(row_costs[g]);
                }
            }
            // Per-SSet accumulation overhead keeps empty-looking ranks from
            // weighing zero.
            weight.saturating_add(block_len)
        })
        .collect()
}

/// Computes the fitness of the SSets in `block`, mirroring the protocol
/// executor's per-block evaluation but against the shared concurrent
/// evaluator (same strategy grouping, same random streams, bit-identical
/// values).
fn block_fitness(
    population: &Population,
    evaluator: &ConcurrentPairEvaluator,
    grouping: &StrategyGrouping,
    generation: u64,
    block: std::ops::Range<usize>,
) -> EgdResult<Vec<f64>> {
    let strategies = population.strategies();
    let num_groups = grouping.num_groups();
    let include_self = matches!(
        population.opponent_policy(),
        OpponentPolicy::AllIncludingSelf
    );

    let mut row_cache: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut fitness = Vec::with_capacity(block.len());
    for i in block {
        let g = grouping.group_of[i];
        if let std::collections::hash_map::Entry::Vacant(e) = row_cache.entry(g) {
            let mut row = vec![0.0; num_groups];
            for (h, row_value) in row.iter_mut().enumerate() {
                let (gi, gj) = (grouping.group_rep[g], grouping.group_rep[h]);
                let (to_g, _) =
                    evaluator.pair_payoff(gi, &strategies[gi], gj, &strategies[gj], generation)?;
                *row_value = to_g;
            }
            e.insert(row);
        }
        let row = &row_cache[&g];
        let mut total = 0.0;
        for (count, value) in grouping.group_count.iter().zip(row) {
            total += count * value;
        }
        if !include_self {
            total -= row[g];
        }
        fitness.push(total);
    }
    Ok(fitness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{DistributedConfig, DistributedExecutor};
    use egd_core::simulation::Simulation;
    use egd_core::state::MemoryDepth;

    fn sim_config(seed: u64, num_ssets: usize, generations: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(num_ssets)
            .agents_per_sset(2)
            .rounds_per_game(20)
            .generations(generations)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(
            ScheduledExecutor::new(sim_config(1, 12, 10), ScheduledConfig::with_ranks(0)).is_err()
        );
        assert!(
            ScheduledExecutor::new(sim_config(1, 12, 10), ScheduledConfig::with_ranks(13)).is_err()
        );
        assert!(
            ScheduledExecutor::new(sim_config(1, 12, 10), ScheduledConfig::with_ranks(4)).is_ok()
        );
    }

    #[test]
    fn scheduled_run_matches_sequential_reference() {
        let cfg = sim_config(31, 12, 40);
        let mut sequential = Simulation::new(cfg.clone()).unwrap();
        sequential.run();

        let summary = ScheduledExecutor::new(
            cfg,
            ScheduledConfig::with_ranks(4).threads(2).trace_interval(10),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(&summary.population, sequential.population());
        assert_eq!(summary.ranks, 4);
        assert_eq!(summary.generations, 40);
        assert_eq!(summary.trace.generations.len(), 4);
        assert!(summary.trace.load_balance.is_some());
        assert!(summary.sched.unwrap().items > 0);
    }

    #[test]
    fn scheduled_matches_protocol_executor() {
        let cfg = sim_config(32, 12, 30);
        let threaded = DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(4))
            .unwrap()
            .run()
            .unwrap();
        let scheduled = ScheduledExecutor::new(cfg, ScheduledConfig::with_ranks(4).threads(2))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(scheduled.population, threaded.population);
        assert_eq!(
            scheduled.generations_with_change,
            threaded.generations_with_change
        );
    }

    #[test]
    fn rank_and_thread_counts_do_not_change_results() {
        let cfg = sim_config(33, 24, 25);
        let reference =
            ScheduledExecutor::new(cfg.clone(), ScheduledConfig::with_ranks(1).threads(1))
                .unwrap()
                .run()
                .unwrap();
        for (ranks, threads) in [(3, 2), (8, 4), (24, 3)] {
            let summary = ScheduledExecutor::new(
                cfg.clone(),
                ScheduledConfig::with_ranks(ranks).threads(threads),
            )
            .unwrap()
            .run()
            .unwrap();
            assert_eq!(
                summary.population, reference.population,
                "{ranks} ranks / {threads} threads"
            );
        }
    }

    #[test]
    fn zero_ranks_is_an_empty_workload() {
        let results: Vec<EgdResult<usize>> = run_rank_tasks(4, 0, Ok);
        assert!(results.is_empty());
        let weighted: Vec<EgdResult<usize>> = run_rank_tasks_weighted(4, &[], Ok);
        assert!(weighted.is_empty());
    }

    #[test]
    fn weighted_rank_tasks_keep_rank_order_and_contain_panics() {
        let weights: Vec<u64> = (0..12).map(|r| if r < 3 { 10_000 } else { 10 }).collect();
        let results: Vec<EgdResult<usize>> = run_rank_tasks_weighted(4, &weights, |rank| {
            if rank == 7 {
                panic!("weighted failure");
            }
            Ok(rank * 3)
        });
        assert_eq!(results.len(), 12);
        for (rank, result) in results.iter().enumerate() {
            if rank == 7 {
                let message = result.as_ref().unwrap_err().to_string();
                assert!(message.contains("rank 7"), "{message}");
                assert!(message.contains("weighted failure"), "{message}");
            } else {
                assert_eq!(*result.as_ref().unwrap(), rank * 3);
            }
        }
    }

    #[test]
    fn predicted_rank_weights_reflect_block_skew() {
        use egd_core::strategy::{MixedStrategy, PureStrategy, StrategyKind, StrategySpace};

        // 4 ranks x 3 SSets; the first block holds distinct mixed strategies
        // (full games every generation), the rest share one pure strategy
        // (cache probes).
        let memory = egd_core::state::MemoryDepth::ONE;
        let mut rng = egd_core::rng::stream(3, egd_core::rng::StreamKind::InitialStrategy, 9);
        let mut strategies: Vec<StrategyKind> = (0..3)
            .map(|_| StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng)))
            .collect();
        let shared = StrategyKind::Pure(PureStrategy::random(memory, &mut rng));
        strategies.extend((0..9).map(|_| shared.clone()));
        let population =
            Population::from_strategies(StrategySpace::mixed(memory), 2, strategies).unwrap();

        let grouping = StrategyGrouping::of(population.strategies());
        let partition = SSetPartition::new(12, 4).unwrap();
        let cfg = sim_config(40, 12, 1);
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let weights = predicted_rank_weights(
            &egd_cost::CostModel::blue_gene_like(),
            &evaluator,
            &population,
            &grouping,
            &partition,
            4,
        );
        assert_eq!(weights.len(), 4);
        // The mixed block pays three full rows; a pure block pays one row
        // that is itself mostly games against the mixed groups — so the
        // predicted gap is ~3x here, not the cached-vs-game ratio.
        assert!(
            weights[0] > 3 * weights[3],
            "mixed block {} should dwarf pure blocks {:?}",
            weights[0],
            &weights[1..]
        );
        // Ranks sharing one pure group predict identically.
        assert_eq!(weights[1], weights[2]);
        assert_eq!(weights[2], weights[3]);
        assert!(weights[3] > 0);
    }

    #[test]
    fn fewer_ranks_than_workers_leaves_workers_idle() {
        // 3 ranks on an 8-worker request: results stay rank-ordered and the
        // scheduler clamps its pool to the rank count.
        let results: Vec<usize> = run_rank_tasks(8, 3, |rank| Ok(rank * 10))
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(results, vec![0, 10, 20]);
        assert!(egd_sched::take_last_run_stats().unwrap().num_workers() <= 3);

        // The full executor agrees: more threads than ranks changes nothing.
        let cfg = sim_config(36, 12, 20);
        let reference =
            ScheduledExecutor::new(cfg.clone(), ScheduledConfig::with_ranks(3).threads(1))
                .unwrap()
                .run()
                .unwrap();
        let oversubscribed = ScheduledExecutor::new(cfg, ScheduledConfig::with_ranks(3).threads(8))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(oversubscribed.population, reference.population);
    }

    #[test]
    fn rank_panic_names_rank_and_spares_the_pool() {
        let results: Vec<EgdResult<usize>> = run_rank_tasks(4, 8, |rank| {
            if rank == 5 {
                panic!("injected failure");
            }
            Ok(rank)
        });
        assert_eq!(results.len(), 8);
        for (rank, result) in results.iter().enumerate() {
            if rank == 5 {
                let message = result.as_ref().unwrap_err().to_string();
                assert!(message.contains("rank 5"), "{message}");
                assert!(message.contains("injected failure"), "{message}");
            } else {
                assert_eq!(*result.as_ref().unwrap(), rank);
            }
        }
        // The pool is not poisoned: the next run on this thread succeeds.
        let again: Vec<usize> = run_rank_tasks(4, 16, Ok)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(again, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn scales_past_thread_per_rank_limits() {
        // 256 ranks would mean 256 OS threads under the thread-per-rank
        // executor; as scheduled tasks they run on 4 workers.
        let cfg = sim_config(34, 256, 3);
        let mut sequential = Simulation::new(cfg.clone()).unwrap();
        sequential.run();
        let summary = ScheduledExecutor::new(cfg, ScheduledConfig::with_ranks(256).threads(4))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(&summary.population, sequential.population());
        assert_eq!(summary.ranks, 256);
        assert_eq!(summary.threads, 4);
        let sched = summary.sched.unwrap();
        // 256 tasks per generation across 3 generations, executed by ≤ 4
        // scheduler workers.
        assert_eq!(sched.items, 256 * 3);
        assert!(sched.num_workers() <= 4);
    }

    #[test]
    fn metrics_snapshot_covers_workers_and_generations() {
        let cfg = sim_config(37, 12, 8);
        let summary = ScheduledExecutor::new(cfg, ScheduledConfig::with_ranks(4).threads(2))
            .unwrap()
            .run()
            .unwrap();
        let metrics = &summary.metrics;
        assert_eq!(metrics.run.label, "scheduled");
        assert_eq!(metrics.run.ranks, 4);
        assert_eq!(metrics.run.workers, 2);
        assert_eq!(metrics.run.generations, 8);
        // One generation row per generation, each carrying the rank tasks.
        assert_eq!(metrics.generations.len(), 8);
        assert!(metrics.generations.iter().all(|g| g.items == 4));
        assert!(metrics.generations.iter().all(|g| g.compute_us > 0.0));
        // The worker table sums to the run's task count.
        assert_eq!(metrics.total_items(), 4 * 8);
        assert!(metrics.counter("pair_cache_hits") > 0);
        assert_eq!(
            metrics.generations.iter().filter(|g| g.changed).count() as u64,
            summary.generations_with_change
        );
    }

    #[test]
    fn noisy_scheduled_run_matches_sequential() {
        let cfg = SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(10)
            .agents_per_sset(2)
            .rounds_per_game(15)
            .generations(25)
            .noise(0.05)
            .seed(35)
            .build()
            .unwrap();
        let mut sequential = Simulation::new(cfg.clone()).unwrap();
        sequential.run();
        let summary = ScheduledExecutor::new(cfg, ScheduledConfig::with_ranks(3).threads(2))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(&summary.population, sequential.population());
    }
}
