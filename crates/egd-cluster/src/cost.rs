//! Machine-dependent cost modelling on top of the shared `egd-cost` layer.
//!
//! The workload-independent half of the cost model — per-game compute time
//! by memory depth and optimisation level, the Fig. 3 ladder types — lives
//! in the shared [`egd_cost`] crate so every execution layer prices work the
//! same way (this module used to own all of it). What stays here is the half
//! that needs a *machine*: per-generation communication time from the
//! cluster's collective and torus network models, and the busiest-rank
//! compute time of a [`ClusterTopology`] — provided as the [`TopologyCost`]
//! extension trait on [`CostModel`].
//!
//! Host calibration of the compute coefficients (timing the real kernels)
//! moved next to the kernels: [`egd_parallel::kernel::calibrated_cost_model`].

use crate::machine::MachineSpec;
use crate::network::CollectiveNetwork;
use crate::topology::ClusterTopology;
use egd_core::state::MemoryDepth;

pub use egd_cost::{CommMode, ComputeOptimization, CostModel, OptimizationLevel};

/// Cluster-topology extension of the shared [`CostModel`]: the methods that
/// need a machine's network and rank layout.
pub trait TopologyCost {
    /// Per-generation game-play time (µs) on the busiest rank of a topology:
    /// that rank plays `max ssets per rank x (num_ssets - 1)` games spread
    /// over its threads.
    fn rank_compute_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        rounds: u32,
        compute: ComputeOptimization,
    ) -> f64;

    /// Expected per-generation communication time (µs) for a topology and
    /// evolutionary rates.
    fn generation_comm_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        pc_rate: f64,
        mutation_rate: f64,
        comm: CommMode,
    ) -> f64;

    /// Total per-generation time (µs) on the critical path: busiest rank's
    /// compute plus expected communication.
    fn generation_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        rounds: u32,
        pc_rate: f64,
        mutation_rate: f64,
        level: OptimizationLevel,
    ) -> f64 {
        self.rank_compute_time_us(topology, memory, rounds, level.compute)
            + self.generation_comm_time_us(topology, memory, pc_rate, mutation_rate, level.comm)
    }
}

impl TopologyCost for CostModel {
    fn rank_compute_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        rounds: u32,
        compute: ComputeOptimization,
    ) -> f64 {
        let machine = topology.machine();
        let games =
            topology.max_ssets_per_rank() as f64 * topology.num_ssets().saturating_sub(1) as f64;
        let game_time = self.game_time_us(memory, rounds, compute, machine.core_speed_factor);
        games * game_time / topology.threads_per_rank() as f64 + self.per_generation_overhead_us
    }

    fn generation_comm_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        pc_rate: f64,
        mutation_rate: f64,
        comm: CommMode,
    ) -> f64 {
        let machine: &MachineSpec = topology.machine();
        let ranks = topology.total_ranks();
        let collective = &machine.collective;
        let torus = &machine.torus;

        // 1. Every generation: the Nature Agent announces whether PC /
        //    mutation happen (a small broadcast that doubles as the global
        //    synchronisation point).
        let announce = collective.broadcast_time_us(16, ranks);

        // 2. PC events: the two selected owners return their fitness.
        let fitness_return = match comm {
            CommMode::NonBlocking => {
                2.0 * torus.p2p_time_us(16, torus.average_hops().ceil() as u32)
            }
            CommMode::Blocking => {
                // The unoptimised protocol gathers a fitness message from
                // every rank. The transport runs the binomial reduction tree
                // of `crate::collective`, so the latency term is one p2p
                // exchange per tree *stage* — not per rank — plus the
                // collective-network reduce of the full payload. What stays
                // linear is the root itself: it still deserialises and folds
                // one contribution per rank from the merged segments.
                let stages = CollectiveNetwork::stages(ranks) as f64;
                self.blocking_comm_penalty
                    * (stages * torus.p2p_time_us(8, 1)
                        + ranks as f64 * self.root_ingest_us
                        + collective.reduce_time_us(8 * ranks, ranks))
            }
        };

        // 3. Strategy updates: an adopted PC result (≈ half of PC events) or
        //    a mutation requires broadcasting a strategy-sized payload.
        let strategy_bytes = CostModel::strategy_message_bytes(memory);
        let update_probability = pc_rate * 0.5 + mutation_rate;
        let update = collective.broadcast_time_us(strategy_bytes, ranks);

        announce + pc_rate * fitness_return + update_probability * update
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(workers: usize, ssets: usize) -> ClusterTopology {
        ClusterTopology::blue_gene_p_virtual_node(workers, ssets).unwrap()
    }

    #[test]
    fn rank_compute_time_scales_with_load() {
        let model = CostModel::blue_gene_like();
        let light = model.rank_compute_time_us(
            &topo(256, 1024),
            MemoryDepth::ONE,
            200,
            ComputeOptimization::Intrinsics,
        );
        let heavy = model.rank_compute_time_us(
            &topo(256, 4096),
            MemoryDepth::ONE,
            200,
            ComputeOptimization::Intrinsics,
        );
        // 4x the SSets means 4x ssets-per-rank and 4x the opponents: ~16x work.
        assert!(heavy > light * 10.0);
    }

    #[test]
    fn comm_time_grows_with_rank_count_and_memory() {
        let model = CostModel::blue_gene_like();
        let small = model.generation_comm_time_us(
            &topo(1024, 4096 * 1024),
            MemoryDepth::SIX,
            0.1,
            0.05,
            CommMode::NonBlocking,
        );
        let large = model.generation_comm_time_us(
            &topo(262_144, 4096 * 262_144),
            MemoryDepth::SIX,
            0.1,
            0.05,
            CommMode::NonBlocking,
        );
        assert!(large > small);
        let shallow = model.generation_comm_time_us(
            &topo(1024, 4096 * 1024),
            MemoryDepth::ONE,
            0.1,
            0.05,
            CommMode::NonBlocking,
        );
        assert!(small > shallow);
    }

    #[test]
    fn blocking_comm_is_more_expensive() {
        let model = CostModel::blue_gene_like();
        let t = topo(256, 4096);
        let blocking =
            model.generation_comm_time_us(&t, MemoryDepth::ONE, 0.1, 0.05, CommMode::Blocking);
        let nonblocking =
            model.generation_comm_time_us(&t, MemoryDepth::ONE, 0.1, 0.05, CommMode::NonBlocking);
        assert!(blocking > nonblocking);
    }

    #[test]
    fn blocking_price_matches_the_executed_tree_schedule() {
        // The fitness-return term must price what the transport runs: one
        // p2p exchange per binomial-tree stage plus a per-rank root ingest —
        // not the retired flat transport's one exchange per rank.
        let model = CostModel::blue_gene_like();
        let t = topo(256, 4096);
        let machine = t.machine();
        let ranks = t.total_ranks();
        let stages = CollectiveNetwork::stages(ranks) as f64;
        let fitness_return = model.blocking_comm_penalty
            * (stages * machine.torus.p2p_time_us(8, 1)
                + ranks as f64 * model.root_ingest_us
                + machine.collective.reduce_time_us(8 * ranks, ranks));
        let announce = machine.collective.broadcast_time_us(16, ranks);
        let update = machine
            .collective
            .broadcast_time_us(CostModel::strategy_message_bytes(MemoryDepth::ONE), ranks);
        let expected = announce + 0.1 * fitness_return + (0.1 * 0.5 + 0.05) * update;
        let priced =
            model.generation_comm_time_us(&t, MemoryDepth::ONE, 0.1, 0.05, CommMode::Blocking);
        assert!((priced - expected).abs() < 1e-9, "{priced} vs {expected}");
        // The stage count is the same function the transport's tree uses.
        assert_eq!(
            CollectiveNetwork::stages(ranks),
            crate::collective::stages(ranks)
        );
    }

    #[test]
    fn generation_time_combines_compute_and_comm() {
        let model = CostModel::blue_gene_like();
        let t = topo(256, 4096);
        let total = model.generation_time_us(
            &t,
            MemoryDepth::ONE,
            200,
            0.1,
            0.05,
            OptimizationLevel::INSTRUCTION,
        );
        let compute =
            model.rank_compute_time_us(&t, MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics);
        let comm =
            model.generation_comm_time_us(&t, MemoryDepth::ONE, 0.1, 0.05, CommMode::NonBlocking);
        assert!((total - compute - comm).abs() < 1e-9);
    }

    #[test]
    fn shared_ladder_types_round_trip_through_the_reexport() {
        // The ladder itself lives in egd-cost; this re-export must stay the
        // same type so existing `egd_cluster::cost::*` callers keep working.
        let labels: Vec<&str> = OptimizationLevel::LADDER
            .iter()
            .map(|l| l.label())
            .collect();
        assert_eq!(labels, vec!["Original", "Comm", "Compiler", "Instruction"]);
        let variant =
            egd_parallel::kernel::KernelVariant::for_optimization(ComputeOptimization::Baseline);
        assert_eq!(variant, egd_parallel::kernel::KernelVariant::Naive);
    }
}
