//! Compute and communication cost model.
//!
//! The scaling figures of the paper (Fig. 4–6, Table VI) are statements about
//! the ratio between per-rank game-play time and global communication time as
//! the processor count, population size and memory depth vary. This module
//! provides that model:
//!
//! * per-game compute time as a function of memory depth, kernel optimisation
//!   level and core speed — either with fixed Blue-Gene-like constants or
//!   *calibrated* by timing the real kernels of `egd-parallel` on the host;
//! * per-generation communication time from the machine's collective and
//!   torus network models and the expected number of PC / mutation events.
//!
//! The optimisation ladder of Fig. 3 is expressed as
//! [`OptimizationLevel`] = communication mode × compute optimisation.

use crate::machine::MachineSpec;
use crate::topology::ClusterTopology;
use egd_core::state::MemoryDepth;
use egd_core::strategy::PureStrategy;
use egd_parallel::kernel::{GameKernel, KernelVariant};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How fitness values travel back to the Nature Agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CommMode {
    /// Blocking collective: every rank participates in a gather for every
    /// pairwise-comparison event (the paper's "Original" communication).
    Blocking,
    /// Non-blocking point-to-point returns from only the two selected SSets'
    /// owners (the paper's first optimisation).
    #[default]
    NonBlocking,
}

/// Which compute kernel optimisation is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ComputeOptimization {
    /// Paper-literal kernel: explicit view list + linear state scan.
    Baseline,
    /// Indexed state lookup (the "Compiler" rung).
    Compiler,
    /// Indexed lookup + branch-free accumulation / cycle closing
    /// (the "Instruction" rung).
    #[default]
    Intrinsics,
}

impl ComputeOptimization {
    /// The kernel variant that implements this optimisation level.
    pub fn kernel_variant(self) -> KernelVariant {
        match self {
            ComputeOptimization::Baseline => KernelVariant::Naive,
            ComputeOptimization::Compiler => KernelVariant::Indexed,
            ComputeOptimization::Intrinsics => KernelVariant::Optimized,
        }
    }
}

/// A rung of the Fig. 3 optimisation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptimizationLevel {
    /// Communication mode.
    pub comm: CommMode,
    /// Compute kernel optimisation.
    pub compute: ComputeOptimization,
}

impl OptimizationLevel {
    /// "Original": blocking collectives + baseline kernel.
    pub const ORIGINAL: OptimizationLevel = OptimizationLevel {
        comm: CommMode::Blocking,
        compute: ComputeOptimization::Baseline,
    };
    /// "Comm": non-blocking fitness returns, baseline kernel.
    pub const COMM: OptimizationLevel = OptimizationLevel {
        comm: CommMode::NonBlocking,
        compute: ComputeOptimization::Baseline,
    };
    /// "Compiler": non-blocking + indexed kernel.
    pub const COMPILER: OptimizationLevel = OptimizationLevel {
        comm: CommMode::NonBlocking,
        compute: ComputeOptimization::Compiler,
    };
    /// "Instruction": non-blocking + fully optimised kernel.
    pub const INSTRUCTION: OptimizationLevel = OptimizationLevel {
        comm: CommMode::NonBlocking,
        compute: ComputeOptimization::Intrinsics,
    };

    /// The four rungs in the order Fig. 3 presents them.
    pub const LADDER: [OptimizationLevel; 4] = [
        OptimizationLevel::ORIGINAL,
        OptimizationLevel::COMM,
        OptimizationLevel::COMPILER,
        OptimizationLevel::INSTRUCTION,
    ];

    /// The label used on the Fig. 3 x-axis.
    pub fn label(&self) -> &'static str {
        match (self.comm, self.compute) {
            (CommMode::Blocking, _) => "Original",
            (CommMode::NonBlocking, ComputeOptimization::Baseline) => "Comm",
            (CommMode::NonBlocking, ComputeOptimization::Compiler) => "Compiler",
            (CommMode::NonBlocking, ComputeOptimization::Intrinsics) => "Instruction",
        }
    }
}

impl Default for OptimizationLevel {
    fn default() -> Self {
        OptimizationLevel::INSTRUCTION
    }
}

/// Workload-independent cost coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost (µs) of one fully optimised game round at memory-one on a
    /// reference core.
    pub round_base_us: f64,
    /// Additional cost (µs) per state bit (`2n`), modelling the growth of the
    /// current-view handling with memory depth (Fig. 5's runtime growth).
    pub round_per_state_bit_us: f64,
    /// Cost multiplier of the indexed-but-unfused kernel relative to the
    /// optimised one.
    pub compiler_penalty: f64,
    /// Cost (µs) per *state* scanned by the naive kernel's linear search,
    /// per round.
    pub naive_scan_us_per_state: f64,
    /// Multiplier applied to communication time under blocking collectives.
    pub blocking_comm_penalty: f64,
    /// Fixed per-generation serial overhead on every rank (µs): loop
    /// bookkeeping, fitness reset, RNG derivation.
    pub per_generation_overhead_us: f64,
}

impl CostModel {
    /// Fixed constants chosen to resemble a Blue Gene-class core. Used by
    /// tests and by default so results are machine-independent.
    pub fn blue_gene_like() -> Self {
        CostModel {
            round_base_us: 0.02,
            round_per_state_bit_us: 0.004,
            compiler_penalty: 1.6,
            naive_scan_us_per_state: 0.003,
            blocking_comm_penalty: 3.0,
            per_generation_overhead_us: 4.0,
        }
    }

    /// Calibrates the compute coefficients by timing the real kernels of
    /// `egd-parallel` on the host machine (memory-one and memory-four games).
    /// Communication coefficients keep their Blue Gene-like defaults because
    /// the host has no torus to measure.
    pub fn calibrated() -> Self {
        let mut model = Self::blue_gene_like();
        let rounds = 200u32;

        let time_game = |variant: KernelVariant, memory: MemoryDepth| -> f64 {
            let kernel = GameKernel::new(
                variant,
                memory,
                rounds,
                egd_core::payoff::PayoffMatrix::PAPER,
            );
            let mut rng = egd_core::rng::stream(1234, egd_core::rng::StreamKind::Auxiliary, 7);
            let a = PureStrategy::random(memory, &mut rng);
            let b = PureStrategy::random(memory, &mut rng);
            // Warm up, then time a batch.
            for _ in 0..3 {
                let _ = kernel.play(&a, &b);
            }
            let reps = 50;
            let start = Instant::now();
            for _ in 0..reps {
                let _ = kernel.play(&a, &b).expect("kernel play");
            }
            start.elapsed().as_secs_f64() * 1e6 / reps as f64
        };

        let m1 = time_game(KernelVariant::Indexed, MemoryDepth::ONE);
        let m4 = time_game(KernelVariant::Indexed, MemoryDepth::FOUR);
        let per_round_m1 = m1 / rounds as f64;
        let per_round_m4 = m4 / rounds as f64;
        // Linear fit over state bits: memory-one has 2 bits, memory-four 8.
        let slope = ((per_round_m4 - per_round_m1) / 6.0).max(0.0);
        model.round_base_us = (per_round_m1 - 2.0 * slope).max(1e-4);
        model.round_per_state_bit_us = slope.max(1e-5);

        let naive_m1 = time_game(KernelVariant::Naive, MemoryDepth::ONE) / rounds as f64;
        model.naive_scan_us_per_state =
            ((naive_m1 - per_round_m1) / MemoryDepth::ONE.num_states() as f64).max(1e-5);
        model
    }

    /// Time (µs) of one game of `rounds` rounds at `memory` on a core with
    /// the given speed factor, under a compute optimisation level.
    pub fn game_time_us(
        &self,
        memory: MemoryDepth,
        rounds: u32,
        compute: ComputeOptimization,
        core_speed_factor: f64,
    ) -> f64 {
        let state_bits = memory.state_bits() as f64;
        let optimised_round = self.round_base_us + self.round_per_state_bit_us * state_bits;
        let per_round = match compute {
            ComputeOptimization::Intrinsics => optimised_round,
            ComputeOptimization::Compiler => optimised_round * self.compiler_penalty,
            ComputeOptimization::Baseline => {
                optimised_round * self.compiler_penalty
                    + self.naive_scan_us_per_state * memory.num_states() as f64
            }
        };
        per_round * rounds as f64 / core_speed_factor.max(1e-6)
    }

    /// Per-generation game-play time (µs) on the busiest rank of a topology:
    /// that rank plays `max ssets per rank x (num_ssets - 1)` games spread
    /// over its threads.
    pub fn rank_compute_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        rounds: u32,
        compute: ComputeOptimization,
    ) -> f64 {
        let machine = topology.machine();
        let games =
            topology.max_ssets_per_rank() as f64 * topology.num_ssets().saturating_sub(1) as f64;
        let game_time = self.game_time_us(memory, rounds, compute, machine.core_speed_factor);
        games * game_time / topology.threads_per_rank() as f64 + self.per_generation_overhead_us
    }

    /// Size in bytes of a broadcast strategy update at a given memory depth
    /// (the packed genome plus headers).
    pub fn strategy_message_bytes(memory: MemoryDepth) -> usize {
        memory.num_states().div_ceil(8) + 32
    }

    /// Expected per-generation communication time (µs) for a topology and
    /// evolutionary rates.
    pub fn generation_comm_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        pc_rate: f64,
        mutation_rate: f64,
        comm: CommMode,
    ) -> f64 {
        let machine: &MachineSpec = topology.machine();
        let ranks = topology.total_ranks();
        let collective = &machine.collective;
        let torus = &machine.torus;

        // 1. Every generation: the Nature Agent announces whether PC /
        //    mutation happen (a small broadcast that doubles as the global
        //    synchronisation point).
        let announce = collective.broadcast_time_us(16, ranks);

        // 2. PC events: the two selected owners return their fitness.
        let fitness_return = match comm {
            CommMode::NonBlocking => {
                2.0 * torus.p2p_time_us(16, torus.average_hops().ceil() as u32)
            }
            CommMode::Blocking => {
                // The unoptimised protocol gathers a fitness message from
                // every rank, serialised at the Nature Agent: one blocking
                // receive per rank plus the tree reduce itself.
                self.blocking_comm_penalty * ranks as f64 * torus.p2p_time_us(8, 1)
                    + collective.reduce_time_us(8 * ranks, ranks)
            }
        };

        // 3. Strategy updates: an adopted PC result (≈ half of PC events) or
        //    a mutation requires broadcasting a strategy-sized payload.
        let strategy_bytes = Self::strategy_message_bytes(memory);
        let update_probability = pc_rate * 0.5 + mutation_rate;
        let update = collective.broadcast_time_us(strategy_bytes, ranks);

        announce + pc_rate * fitness_return + update_probability * update
    }

    /// Total per-generation time (µs) on the critical path: busiest rank's
    /// compute plus expected communication.
    pub fn generation_time_us(
        &self,
        topology: &ClusterTopology,
        memory: MemoryDepth,
        rounds: u32,
        pc_rate: f64,
        mutation_rate: f64,
        level: OptimizationLevel,
    ) -> f64 {
        self.rank_compute_time_us(topology, memory, rounds, level.compute)
            + self.generation_comm_time_us(topology, memory, pc_rate, mutation_rate, level.comm)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::blue_gene_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(workers: usize, ssets: usize) -> ClusterTopology {
        ClusterTopology::blue_gene_p_virtual_node(workers, ssets).unwrap()
    }

    #[test]
    fn ladder_labels() {
        let labels: Vec<&str> = OptimizationLevel::LADDER
            .iter()
            .map(|l| l.label())
            .collect();
        assert_eq!(labels, vec!["Original", "Comm", "Compiler", "Instruction"]);
        assert_eq!(OptimizationLevel::default(), OptimizationLevel::INSTRUCTION);
        assert_eq!(
            ComputeOptimization::Baseline.kernel_variant(),
            KernelVariant::Naive
        );
    }

    #[test]
    fn game_time_grows_with_memory() {
        let model = CostModel::blue_gene_like();
        let mut last = 0.0;
        for memory in MemoryDepth::PAPER_RANGE {
            let t = model.game_time_us(memory, 200, ComputeOptimization::Intrinsics, 1.0);
            assert!(t > last, "{memory}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn optimisation_ladder_is_monotone_in_compute_cost() {
        let model = CostModel::blue_gene_like();
        for memory in [MemoryDepth::ONE, MemoryDepth::SIX] {
            let naive = model.game_time_us(memory, 200, ComputeOptimization::Baseline, 1.0);
            let compiler = model.game_time_us(memory, 200, ComputeOptimization::Compiler, 1.0);
            let optimised = model.game_time_us(memory, 200, ComputeOptimization::Intrinsics, 1.0);
            assert!(naive > compiler);
            assert!(compiler > optimised);
        }
    }

    #[test]
    fn naive_kernel_penalty_explodes_with_memory_depth() {
        // The linear state scan makes the naive kernel relatively much worse
        // at memory-six than at memory-one.
        let model = CostModel::blue_gene_like();
        let ratio_m1 =
            model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Baseline, 1.0)
                / model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics, 1.0);
        let ratio_m6 =
            model.game_time_us(MemoryDepth::SIX, 200, ComputeOptimization::Baseline, 1.0)
                / model.game_time_us(MemoryDepth::SIX, 200, ComputeOptimization::Intrinsics, 1.0);
        assert!(ratio_m6 > ratio_m1 * 5.0);
    }

    #[test]
    fn slower_cores_take_longer() {
        let model = CostModel::blue_gene_like();
        let fast = model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics, 1.0);
        let slow = model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics, 0.5);
        assert!((slow / fast - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rank_compute_time_scales_with_load() {
        let model = CostModel::blue_gene_like();
        let light = model.rank_compute_time_us(
            &topo(256, 1024),
            MemoryDepth::ONE,
            200,
            ComputeOptimization::Intrinsics,
        );
        let heavy = model.rank_compute_time_us(
            &topo(256, 4096),
            MemoryDepth::ONE,
            200,
            ComputeOptimization::Intrinsics,
        );
        // 4x the SSets means 4x ssets-per-rank and 4x the opponents: ~16x work.
        assert!(heavy > light * 10.0);
    }

    #[test]
    fn comm_time_grows_with_rank_count_and_memory() {
        let model = CostModel::blue_gene_like();
        let small = model.generation_comm_time_us(
            &topo(1024, 4096 * 1024),
            MemoryDepth::SIX,
            0.1,
            0.05,
            CommMode::NonBlocking,
        );
        let large = model.generation_comm_time_us(
            &topo(262_144, 4096 * 262_144),
            MemoryDepth::SIX,
            0.1,
            0.05,
            CommMode::NonBlocking,
        );
        assert!(large > small);
        let shallow = model.generation_comm_time_us(
            &topo(1024, 4096 * 1024),
            MemoryDepth::ONE,
            0.1,
            0.05,
            CommMode::NonBlocking,
        );
        assert!(small > shallow);
    }

    #[test]
    fn blocking_comm_is_more_expensive() {
        let model = CostModel::blue_gene_like();
        let t = topo(256, 4096);
        let blocking =
            model.generation_comm_time_us(&t, MemoryDepth::ONE, 0.1, 0.05, CommMode::Blocking);
        let nonblocking =
            model.generation_comm_time_us(&t, MemoryDepth::ONE, 0.1, 0.05, CommMode::NonBlocking);
        assert!(blocking > nonblocking);
    }

    #[test]
    fn generation_time_combines_compute_and_comm() {
        let model = CostModel::blue_gene_like();
        let t = topo(256, 4096);
        let total = model.generation_time_us(
            &t,
            MemoryDepth::ONE,
            200,
            0.1,
            0.05,
            OptimizationLevel::INSTRUCTION,
        );
        let compute =
            model.rank_compute_time_us(&t, MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics);
        let comm =
            model.generation_comm_time_us(&t, MemoryDepth::ONE, 0.1, 0.05, CommMode::NonBlocking);
        assert!((total - compute - comm).abs() < 1e-9);
    }

    #[test]
    fn strategy_message_bytes_matches_genome_size() {
        assert_eq!(CostModel::strategy_message_bytes(MemoryDepth::ONE), 1 + 32);
        assert_eq!(
            CostModel::strategy_message_bytes(MemoryDepth::SIX),
            512 + 32
        );
    }

    #[test]
    fn calibrated_model_is_positive_and_ordered() {
        let model = CostModel::calibrated();
        assert!(model.round_base_us > 0.0);
        assert!(model.round_per_state_bit_us > 0.0);
        assert!(model.naive_scan_us_per_state > 0.0);
        // Calibration must preserve the qualitative ladder ordering.
        let naive = model.game_time_us(MemoryDepth::TWO, 200, ComputeOptimization::Baseline, 1.0);
        let optimised =
            model.game_time_us(MemoryDepth::TWO, 200, ComputeOptimization::Intrinsics, 1.0);
        assert!(naive > optimised);
    }
}
