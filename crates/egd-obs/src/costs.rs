//! Measured per-fingerprint item costs.
//!
//! The `egd-cost` model prices cells *analytically*; the ROADMAP's
//! measured-feedback item needs the complementary table: what each distinct
//! strategy pairing actually cost when it last ran. [`MeasuredCosts`]
//! accumulates per-cell wall-clock samples keyed by the pair of strategy
//! fingerprints (the same identity `egd-parallel`'s interner uses), so a
//! follow-up PR can feed `mean_ns` back into the predictor without a new
//! measurement layer.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated samples for one fingerprint pair.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSample {
    /// Number of measured executions.
    pub samples: u64,
    /// Summed wall-clock nanoseconds.
    pub total_ns: u64,
}

impl CostSample {
    /// Mean nanoseconds per execution (0 when unsampled).
    pub fn mean_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.samples as f64
        }
    }
}

/// Measured cost table keyed by `(fingerprint_a, fingerprint_b)` — the
/// distinct-pair cell identity. Deterministically ordered.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct MeasuredCosts {
    /// Samples per fingerprint pair.
    pub cells: BTreeMap<(u64, u64), CostSample>,
}

impl MeasuredCosts {
    /// Records one measured execution of the `(a, b)` cell.
    pub fn record(&mut self, a: u64, b: u64, ns: u64) {
        let sample = self.cells.entry((a, b)).or_default();
        sample.samples += 1;
        sample.total_ns += ns;
    }

    /// Mean measured nanoseconds for the `(a, b)` cell, if sampled.
    pub fn mean_ns(&self, a: u64, b: u64) -> Option<f64> {
        self.cells
            .get(&(a, b))
            .filter(|s| s.samples > 0)
            .map(CostSample::mean_ns)
    }

    /// Number of distinct sampled cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total samples across all cells.
    pub fn total_samples(&self) -> u64 {
        self.cells.values().map(|s| s.samples).sum()
    }

    /// Iterates the sampled cells as `((fp_a, fp_b), mean_ns)` in
    /// deterministic key order — the shape `egd_cost`'s measured-EWMA
    /// repricing consumes.
    pub fn mean_iter(&self) -> impl Iterator<Item = ((u64, u64), f64)> + '_ {
        self.cells
            .iter()
            .filter(|(_, s)| s.samples > 0)
            .map(|(&key, s)| (key, s.mean_ns()))
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &MeasuredCosts) {
        for (&key, sample) in &other.cells {
            let mine = self.cells.entry(key).or_default();
            mine.samples += sample.samples;
            mine.total_ns += sample.total_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_mean() {
        let mut costs = MeasuredCosts::default();
        assert!(costs.is_empty());
        costs.record(1, 2, 100);
        costs.record(1, 2, 300);
        costs.record(2, 1, 50);
        assert_eq!(costs.len(), 2);
        assert_eq!(costs.total_samples(), 3);
        assert_eq!(costs.mean_ns(1, 2), Some(200.0));
        assert_eq!(costs.mean_ns(2, 1), Some(50.0));
        assert_eq!(costs.mean_ns(9, 9), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MeasuredCosts::default();
        a.record(1, 1, 10);
        let mut b = MeasuredCosts::default();
        b.record(1, 1, 30);
        b.record(5, 6, 7);
        a.merge(&b);
        assert_eq!(a.mean_ns(1, 1), Some(20.0));
        assert_eq!(a.len(), 2);
    }
}
