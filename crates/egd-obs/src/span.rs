//! Lightweight span tracing.
//!
//! Every instrumented site records `SpanEvent`s — `(span_id, kind, start_ns,
//! end_ns, payload)` — onto a *thread-local* buffer, so the hot path never
//! touches a shared lock: one relaxed atomic load (the enabled/sampling
//! word), a monotonic clock read, and a `Vec` push. Buffers flush into the
//! global collector when a chunk fills and when the owning thread exits
//! (scoped worker threads flush before the run returns), bounded by a global
//! event cap with an overflow counter instead of unbounded growth.
//!
//! Tracing is **off by default**. [`enable_tracing`] starts a fresh trace
//! session: it clears previously collected events, restarts span-id
//! assignment from zero (so a single-threaded session is deterministic
//! run-to-run) and bumps the session epoch that invalidates stale
//! thread-local buffers. [`collect`] drains the session into a [`TraceLog`].
//!
//! With the `trace` cargo feature disabled the recording path compiles out
//! entirely: [`tracing_enabled`] is a constant `false`, so `SpanTimer::start`
//! folds to `None` and `obs_span!` leaves only the wrapped body.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What a span measured. Labels are the Chrome-trace event names.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A scheduler worker executing one claimed block (payload: first index).
    BlockClaim,
    /// A successful steal, victim in the payload.
    Steal,
    /// The deterministic index-ordered reduction (payload: blocks merged).
    Reduce,
    /// One whole cell-matrix parallel section (payload: number of cells).
    CellMatrix,
    /// One distinct-pair cell (payload: cell index `g * num_groups + h`).
    Cell,
    /// Compiling/interning one strategy (payload: fingerprint).
    Compile,
    /// One async rank task's execution slice (payload: rank).
    RankTask,
    /// One evolution generation (payload: generation index).
    Generation,
    /// A tree broadcast stage at one rank (payload: root).
    Broadcast,
    /// A tree gather stage at one rank (payload: root).
    Gather,
    /// An allreduce-sum at one rank (payload: world size).
    AllreduceSum,
    /// A barrier at one rank (payload: world size).
    Barrier,
    /// Time a rank spent parked on its mailbox (payload: sender or tag).
    MailboxWait,
    /// An injected fault fired (payload: fault-plan event id).
    FaultInjected,
    /// Saving one rank's generation checkpoint (payload: generation).
    Checkpoint,
    /// A supervisor recovery action — retry or respawn from a checkpoint
    /// (payload: generation resumed from).
    Recovery,
    /// One multi-tenant serving session's lifetime on the shared pool, from
    /// admission to completion/suspension (payload: session id). Recorded on
    /// the session's own track so a serve timeline shows one lane per tenant.
    Session,
}

impl SpanKind {
    /// Stable display name used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::BlockClaim => "block",
            SpanKind::Steal => "steal",
            SpanKind::Reduce => "reduce",
            SpanKind::CellMatrix => "cell_matrix",
            SpanKind::Cell => "cell",
            SpanKind::Compile => "compile",
            SpanKind::RankTask => "rank_task",
            SpanKind::Generation => "generation",
            SpanKind::Broadcast => "broadcast",
            SpanKind::Gather => "gather",
            SpanKind::AllreduceSum => "allreduce",
            SpanKind::Barrier => "barrier",
            SpanKind::MailboxWait => "mailbox_wait",
            SpanKind::FaultInjected => "fault",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Recovery => "recovery",
            SpanKind::Session => "session",
        }
    }
}

/// One recorded span. Fields are public so virtual-time replays (which have
/// no wall clock) can synthesise events directly.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Session-unique id, assigned in record order (restarts at
    /// [`enable_tracing`], so single-threaded sessions are deterministic).
    pub span_id: u64,
    /// Timeline lane: worker id for scheduler threads, rank for rank tasks.
    pub track: u32,
    /// Per-thread record sequence; orders a track's events deterministically
    /// even when flush interleaving scrambles the collector.
    pub seq: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Start, nanoseconds since the trace clock epoch (or virtual time).
    pub start_ns: u64,
    /// End, same clock as `start_ns`.
    pub end_ns: u64,
    /// Kind-specific payload (index, fingerprint, peer, ...).
    pub payload: u64,
}

/// A drained trace session.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    /// Events in flush order; sort by `(track, seq)` for a stable timeline.
    pub events: Vec<SpanEvent>,
    /// Events discarded once the global cap was reached.
    pub dropped: u64,
}

/// Bit 0: enabled. Bits 8..: per-thread sampling mask (keep spans whose
/// attempt counter satisfies `attempts & mask == 0`). One word so the hot
/// path pays a single relaxed load.
static STATE: AtomicU64 = AtomicU64::new(0);
/// Bumped by [`enable_tracing`]; thread-local buffers from an older epoch
/// are discarded instead of leaking into the new session.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

/// Hard ceiling on buffered events; beyond it spans are counted as dropped.
pub const MAX_EVENTS: usize = 1 << 20;
const FLUSH_CHUNK: usize = 1024;

fn clock_epoch() -> Instant {
    static CLOCK: OnceLock<Instant> = OnceLock::new();
    *CLOCK.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace clock epoch.
pub fn now_ns() -> u64 {
    clock_epoch().elapsed().as_nanos() as u64
}

/// Whether span recording is live. With the `trace` feature off this is a
/// constant `false` and instrumentation folds away.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        STATE.load(Ordering::Relaxed) & 1 == 1
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Starts a fresh trace session recording every span (sampling mask 0):
/// clears previously collected events and restarts span-id assignment.
pub fn enable_tracing() {
    enable_tracing_sampled(0);
}

/// Starts a fresh trace session keeping one span in `2^shift` per thread
/// (`shift == 0` keeps all). Sampling is modular over each thread's attempt
/// counter, so a fixed thread layout samples deterministically.
pub fn enable_tracing_sampled(shift: u32) {
    let mask = if shift >= 56 {
        u64::MAX >> 8
    } else {
        (1u64 << shift) - 1
    };
    EPOCH.fetch_add(1, Ordering::Relaxed);
    NEXT_SPAN_ID.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
    COLLECTOR.lock().expect("trace collector poisoned").clear();
    STATE.store(1 | (mask << 8), Ordering::Relaxed);
}

/// Stops recording. Already-buffered events stay collectable.
pub fn disable_tracing() {
    STATE.store(0, Ordering::Relaxed);
}

/// Drains the collected session. Flushes the calling thread's buffer first;
/// worker threads flush when they exit, so collect after joining them.
pub fn collect() -> TraceLog {
    LOCAL.with(|local| local.borrow_mut().flush());
    let mut guard = COLLECTOR.lock().expect("trace collector poisoned");
    TraceLog {
        events: std::mem::take(&mut *guard),
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

/// Flushes the calling thread's span buffer into the global collector.
/// Pool workers must call this before signalling completion: a scoped-thread
/// join can unblock as soon as the worker *closure* returns — before the
/// thread-local buffer's destructor runs — so relying on the drop-time flush
/// alone lets a subsequent [`collect`] drain an empty collector and the
/// events arrive after it, silently lost.
pub fn flush_thread() {
    LOCAL.with(|local| local.borrow_mut().flush());
}

/// Assigns the calling thread's timeline track (worker id, rank, ...).
/// Until set, threads record on track 0.
pub fn set_track(track: u32) {
    LOCAL.with(|local| local.borrow_mut().track = track);
}

struct LocalBuf {
    epoch: u64,
    track: u32,
    seq: u64,
    attempts: u64,
    events: Vec<SpanEvent>,
}

impl LocalBuf {
    const fn new() -> Self {
        LocalBuf {
            epoch: 0,
            track: 0,
            seq: 0,
            attempts: 0,
            events: Vec::new(),
        }
    }

    fn refresh_epoch(&mut self) {
        let epoch = EPOCH.load(Ordering::Relaxed);
        if self.epoch != epoch {
            // Events from a collected session must not leak into this one.
            self.epoch = epoch;
            self.seq = 0;
            self.attempts = 0;
            self.events.clear();
        }
    }

    fn record(
        &mut self,
        track: Option<u32>,
        kind: SpanKind,
        payload: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.refresh_epoch();
        let mask = STATE.load(Ordering::Relaxed) >> 8;
        let sampled = self.attempts & mask == 0;
        self.attempts = self.attempts.wrapping_add(1);
        if !sampled {
            return;
        }
        let event = SpanEvent {
            span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            track: track.unwrap_or(self.track),
            seq: self.seq,
            kind,
            start_ns,
            end_ns,
            payload,
        };
        self.seq += 1;
        self.events.push(event);
        if self.events.len() >= FLUSH_CHUNK {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        if self.epoch != EPOCH.load(Ordering::Relaxed) {
            self.events.clear();
            return;
        }
        let mut guard = COLLECTOR.lock().expect("trace collector poisoned");
        let room = MAX_EVENTS.saturating_sub(guard.len());
        let take = self.events.len().min(room);
        let overflow = (self.events.len() - take) as u64;
        guard.extend(self.events.drain(..take));
        drop(guard);
        if overflow > 0 {
            DROPPED.fetch_add(overflow, Ordering::Relaxed);
            self.events.clear();
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf::new()) };
}

/// An in-flight span. `start` returns `None` when tracing is disabled, so
/// the hot path through [`obs_span!`](crate::obs_span) is one branch.
#[derive(Debug)]
#[must_use = "finish the timer to record the span"]
pub struct SpanTimer {
    track: Option<u32>,
    kind: SpanKind,
    start_ns: u64,
}

impl SpanTimer {
    /// Starts a span on the calling thread's track (see [`set_track`]).
    #[inline]
    pub fn start(kind: SpanKind) -> Option<SpanTimer> {
        if !tracing_enabled() {
            return None;
        }
        Some(SpanTimer {
            track: None,
            kind,
            start_ns: now_ns(),
        })
    }

    /// Starts a span pinned to an explicit track — for async rank tasks that
    /// migrate between pool threads across `.await` points.
    #[inline]
    pub fn start_on(track: u32, kind: SpanKind) -> Option<SpanTimer> {
        if !tracing_enabled() {
            return None;
        }
        Some(SpanTimer {
            track: Some(track),
            kind,
            start_ns: now_ns(),
        })
    }

    /// The span's start timestamp — for callers that also accumulate the
    /// measured duration elsewhere (e.g. a cost table) without a second
    /// clock read before the work starts.
    #[inline]
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Ends the span and records it with `payload`.
    #[inline]
    pub fn finish(self, payload: u64) {
        let end_ns = now_ns();
        LOCAL.with(|local| {
            local
                .borrow_mut()
                .record(self.track, self.kind, payload, self.start_ns, end_ns)
        });
    }
}

/// Records a complete span with explicit timestamps on an explicit track.
/// Used by replays and by callers that already measured the interval.
#[inline]
pub fn record_span(track: u32, kind: SpanKind, payload: u64, start_ns: u64, end_ns: u64) {
    if !tracing_enabled() {
        return;
    }
    LOCAL.with(|local| {
        local
            .borrow_mut()
            .record(Some(track), kind, payload, start_ns, end_ns)
    });
}

/// Wraps an expression in a span of `kind` with `payload`: the body runs
/// unconditionally; the span is recorded only while tracing is enabled (and
/// not at all without the `trace` feature).
///
/// ```
/// let n = egd_obs::obs_span!(egd_obs::SpanKind::Reduce, 4, { 2 + 2 });
/// assert_eq!(n, 4);
/// ```
#[macro_export]
macro_rules! obs_span {
    ($kind:expr, $payload:expr, $body:expr) => {{
        let __obs_timer = $crate::SpanTimer::start($kind);
        let __obs_out = $body;
        if let Some(__obs_t) = __obs_timer {
            __obs_t.finish($payload);
        }
        __obs_out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session_guard as test_lock;

    #[test]
    fn disabled_records_nothing() {
        let _guard = test_lock();
        disable_tracing();
        assert!(SpanTimer::start(SpanKind::Cell).is_none());
        record_span(0, SpanKind::Cell, 1, 0, 10);
        assert!(collect().events.is_empty());
    }

    #[test]
    fn session_restarts_span_ids_and_drops_stale_events() {
        let _guard = test_lock();
        enable_tracing();
        record_span(3, SpanKind::Steal, 7, 10, 20);
        // A new session discards anything not collected from the old one.
        enable_tracing();
        record_span(1, SpanKind::BlockClaim, 5, 0, 9);
        record_span(1, SpanKind::Reduce, 6, 9, 12);
        disable_tracing();
        let log = collect();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].span_id, 0);
        assert_eq!(log.events[1].span_id, 1);
        assert_eq!(log.events[0].kind, SpanKind::BlockClaim);
        assert_eq!(log.events[0].track, 1);
        assert_eq!(log.dropped, 0);
        assert!(collect().events.is_empty());
    }

    #[test]
    fn sampling_keeps_one_in_two_to_the_shift() {
        let _guard = test_lock();
        enable_tracing_sampled(2);
        for i in 0..16 {
            record_span(0, SpanKind::Cell, i, 0, 1);
        }
        disable_tracing();
        let log = collect();
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.events[0].payload, 0);
        assert_eq!(log.events[1].payload, 4);
    }

    #[test]
    fn timer_measures_monotonic_interval() {
        let _guard = test_lock();
        enable_tracing();
        let timer = SpanTimer::start(SpanKind::Compile).expect("tracing enabled");
        timer.finish(42);
        disable_tracing();
        let log = collect();
        assert_eq!(log.events.len(), 1);
        assert!(log.events[0].end_ns >= log.events[0].start_ns);
        assert_eq!(log.events[0].payload, 42);
    }
}
