//! Exporters: Chrome trace-event / Perfetto JSON and markdown summaries.
//!
//! The vendored `serde_json` stand-in is a *binary codec* (its text form is
//! hex), so the timeline exporter writes real JSON text by hand — the same
//! approach `egd-bench`'s committed baseline file uses. The emitted document
//! is the Chrome trace-event "JSON object format": a `traceEvents` array of
//! complete (`"ph":"X"`) events plus metadata (`"ph":"M"`) events naming
//! processes and tracks, loadable directly in `chrome://tracing` or
//! [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! Each [`TraceProcess`] becomes one Perfetto process lane, so a *measured*
//! run and its `egd_sched::simulate` virtual-time *replay* can sit side by
//! side on one timeline and be diffed visually.
//!
//! [`validate_trace_json`] is a minimal JSON syntax checker (plus the
//! trace-event structural requirements) used by the test suite to prove the
//! export is well-formed without a real JSON dependency.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanEvent;
use std::fmt::Write as _;

/// One process lane of the exported timeline.
#[derive(Debug, Clone)]
pub struct TraceProcess<'a> {
    /// Perfetto process id (must be unique per lane).
    pub pid: u32,
    /// Process display name, e.g. `"measured skewed_mixed"`.
    pub name: String,
    /// Track display prefix: tracks render as `"{track_label} {id}"`,
    /// e.g. `"worker 3"` or `"rank 17"`.
    pub track_label: String,
    /// The events of this lane.
    pub events: &'a [SpanEvent],
}

/// Export options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExportOptions {
    /// Replace every timestamp and duration with zero. Used by the
    /// determinism tests: two runs of the same seeded workload then export
    /// byte-identical documents (ordering and payloads are deterministic,
    /// wall-clock is not).
    pub zero_times: bool,
}

fn escape_json(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_us(out: &mut String, ns: u64) {
    // Microseconds with nanosecond precision, printed without float noise.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders `processes` as a Chrome trace-event JSON document.
///
/// Events are ordered by `(track, seq, span_id)` within each process, so the
/// document is a deterministic function of the recorded spans regardless of
/// how thread-buffer flushes interleaved in the collector.
pub fn chrome_trace_json(processes: &[TraceProcess<'_>], options: ExportOptions) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for process in processes {
        let mut order: Vec<usize> = (0..process.events.len()).collect();
        order.sort_by_key(|&i| {
            let e = &process.events[i];
            (e.track, e.seq, e.span_id)
        });

        emit_sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"",
            process.pid
        );
        escape_json(&mut out, &process.name);
        out.push_str("\"}}");

        let mut named_track = None;
        for &i in &order {
            let event = &process.events[i];
            if named_track != Some(event.track) {
                named_track = Some(event.track);
                emit_sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
                    process.pid, event.track
                );
                escape_json(&mut out, &process.track_label);
                let _ = write!(out, " {}\"}}}}", event.track);
            }
            let (start_ns, dur_ns) = if options.zero_times {
                (0, 0)
            } else {
                (event.start_ns, event.end_ns.saturating_sub(event.start_ns))
            };
            emit_sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\"ts\":",
                process.pid,
                event.track,
                event.kind.label()
            );
            push_us(&mut out, start_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, dur_ns);
            let _ = write!(out, ",\"args\":{{\"payload\":{}}}}}", event.payload);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Minimal recursive-descent JSON syntax checker with trace-event structural
/// checks: the document must be an object whose `traceEvents` member is an
/// array of objects each carrying a `"ph"` member. Returns a description of
/// the first problem found.
pub fn validate_trace_json(text: &str) -> Result<(), String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
        events: 0,
        phased_events: 0,
    };
    parser.skip_ws();
    parser.parse_object(true)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    if parser.phased_events != parser.events {
        return Err(format!(
            "{} of {} trace events lack a \"ph\" member",
            parser.events - parser.phased_events,
            parser.events
        ));
    }
    Ok(())
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Elements seen inside the top-level `traceEvents` array.
    events: usize,
    /// Of those, how many carried a `"ph"` member.
    phased_events: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    /// Parses a string, returning whether it equals `"ph"` or `"traceEvents"`
    /// by handing back the raw contents (escapes validated, not decoded).
    fn parse_string(&mut self) -> Result<&str, String> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => break,
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#04x} in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in string".to_string())?;
        self.pos += 1; // closing quote
        Ok(raw)
    }

    fn parse_number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("malformed fraction at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("malformed exponent at byte {start}"));
            }
        }
        Ok(())
    }

    fn parse_literal(&mut self, literal: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    /// Parses any value. Returns whether the value was an object containing
    /// a `"ph"` member (the trace-event structural check).
    fn parse_value(&mut self, in_trace_events: bool) -> Result<bool, String> {
        self.skip_ws();
        if in_trace_events && self.peek() != Some(b'{') {
            return Err("traceEvents elements must be objects".to_string());
        }
        match self.peek() {
            Some(b'{') => {
                let had_ph = self.parse_object(false)?;
                if in_trace_events {
                    self.events += 1;
                    if had_ph {
                        self.phased_events += 1;
                    }
                }
                Ok(had_ph)
            }
            Some(b'[') => {
                self.parse_array(false)?;
                Ok(false)
            }
            Some(b'"') => {
                self.parse_string()?;
                Ok(false)
            }
            Some(b't') => self.parse_literal("true").map(|()| false),
            Some(b'f') => self.parse_literal("false").map(|()| false),
            Some(b'n') => self.parse_literal("null").map(|()| false),
            Some(_) => self.parse_number().map(|()| false),
            None => Err("unexpected end of document".to_string()),
        }
    }

    fn parse_array(&mut self, is_trace_events: bool) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.parse_value(is_trace_events)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    /// Parses an object; returns whether it had a `"ph"` member. When
    /// `top_level`, a `"traceEvents"` member must be present and its value is
    /// parsed as the trace-event array.
    fn parse_object(&mut self, top_level: bool) -> Result<bool, String> {
        self.expect(b'{')?;
        let mut had_ph = false;
        let mut had_trace_events = false;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key_is_ph;
                let key_is_trace_events;
                {
                    let key = self.parse_string()?;
                    key_is_ph = key == "ph";
                    key_is_trace_events = key == "traceEvents";
                }
                had_ph |= key_is_ph;
                self.skip_ws();
                self.expect(b':')?;
                if top_level && key_is_trace_events {
                    had_trace_events = true;
                    self.skip_ws();
                    self.parse_array(true)?;
                } else {
                    self.parse_value(false)?;
                }
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {}, found {:?}",
                            self.pos,
                            other.map(|c| c as char)
                        ))
                    }
                }
            }
        }
        if top_level && !had_trace_events {
            return Err("top-level object has no traceEvents member".to_string());
        }
        Ok(had_ph)
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders a compact markdown summary of a [`MetricsSnapshot`]: a run/traffic
/// header plus the per-generation counter table (long runs elide the middle
/// so CI step summaries stay readable).
pub fn summary_table_md(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let run = &snapshot.run;
    let label = if run.label.is_empty() {
        "run"
    } else {
        &run.label
    };
    let _ = writeln!(out, "### Metrics — {label}");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "ranks {} · workers {} · generations {} · items {} · steals {} · critical path {} ms",
        run.ranks,
        run.workers,
        run.generations,
        snapshot.total_items(),
        snapshot.total_steals(),
        fmt_ms(snapshot.critical_path_ns()),
    );
    if !snapshot.traffic.is_empty() {
        let t = &snapshot.traffic;
        let _ = writeln!(
            out,
            "traffic: p2p {} msgs / {} B · broadcasts {} · gathers {} · barriers {} · max root fan-out {}",
            t.p2p_messages, t.p2p_bytes, t.broadcasts, t.gathers, t.barriers, t.max_root_fanout
        );
    }
    if !snapshot.counters.is_empty() {
        let counters: Vec<String> = snapshot
            .counters
            .iter()
            .map(|(name, value)| format!("{name} {value}"))
            .collect();
        let _ = writeln!(out, "counters: {}", counters.join(" · "));
    }
    if !snapshot.generations.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| generation | items | steals | busy ms | compute ms | comm ms | changed |"
        );
        let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|:---|");
        const HEAD: usize = 12;
        const TAIL: usize = 3;
        let rows = snapshot.generations.len();
        for (i, g) in snapshot.generations.iter().enumerate() {
            if rows > HEAD + TAIL + 1 && i == HEAD {
                let _ = writeln!(out, "| … {} elided … | | | | | | |", rows - HEAD - TAIL);
            }
            if rows > HEAD + TAIL + 1 && (HEAD..rows - TAIL).contains(&i) {
                continue;
            }
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.3} | {:.3} | {} |",
                g.generation,
                g.items,
                g.steals,
                fmt_ms(g.busy_ns),
                g.compute_us / 1e3,
                g.comm_us / 1e3,
                if g.changed { "yes" } else { "" }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::GenerationMetrics;
    use crate::span::SpanKind;

    fn event(track: u32, seq: u64, span_id: u64, payload: u64) -> SpanEvent {
        SpanEvent {
            span_id,
            track,
            seq,
            kind: SpanKind::BlockClaim,
            start_ns: 1_500,
            end_ns: 4_000,
            payload,
        }
    }

    #[test]
    fn export_is_valid_and_ordered() {
        let events = vec![event(1, 0, 3, 30), event(0, 1, 2, 20), event(0, 0, 1, 10)];
        let processes = [TraceProcess {
            pid: 1,
            name: "measured".to_string(),
            track_label: "worker".to_string(),
            events: &events,
        }];
        let json = chrome_trace_json(&processes, ExportOptions::default());
        validate_trace_json(&json).expect("export validates");
        // Track 0's events come first, in seq order.
        let p10 = json.find("\"payload\":10").unwrap();
        let p20 = json.find("\"payload\":20").unwrap();
        let p30 = json.find("\"payload\":30").unwrap();
        assert!(p10 < p20 && p20 < p30, "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.500"), "{json}");
        assert!(json.contains("worker 1"), "{json}");
    }

    #[test]
    fn zero_times_strips_wall_clock() {
        let events = vec![event(0, 0, 0, 9)];
        let processes = [TraceProcess {
            pid: 1,
            name: "p".to_string(),
            track_label: "t".to_string(),
            events: &events,
        }];
        let json = chrome_trace_json(&processes, ExportOptions { zero_times: true });
        validate_trace_json(&json).expect("export validates");
        assert!(json.contains("\"ts\":0.000,\"dur\":0.000"), "{json}");
        assert!(!json.contains("1.500"), "{json}");
    }

    #[test]
    fn empty_export_validates() {
        let json = chrome_trace_json(&[], ExportOptions::default());
        validate_trace_json(&json).expect("empty export validates");
    }

    #[test]
    fn names_are_escaped() {
        let events = vec![event(0, 0, 0, 1)];
        let processes = [TraceProcess {
            pid: 7,
            name: "quote \" backslash \\ newline \n".to_string(),
            track_label: "t".to_string(),
            events: &events,
        }];
        let json = chrome_trace_json(&processes, ExportOptions::default());
        validate_trace_json(&json).expect("escaped export validates");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_trace_json("").is_err());
        assert!(validate_trace_json("{}").is_err(), "no traceEvents");
        assert!(validate_trace_json("{\"traceEvents\":[}").is_err());
        assert!(validate_trace_json("{\"traceEvents\":[{\"ph\":\"X\"}]} x").is_err());
        assert!(validate_trace_json("{\"traceEvents\":[1]}").is_err());
        assert!(
            validate_trace_json("{\"traceEvents\":[{\"pid\":1}]}").is_err(),
            "event without ph"
        );
        assert!(validate_trace_json("{\"traceEvents\":[{\"ph\":\"X\",\"ts\":1.}]}").is_err());
        assert!(validate_trace_json("{\"traceEvents\":[]}").is_ok());
        assert!(validate_trace_json(
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":1.5e3,\"ok\":[true,null]}]}"
        )
        .is_ok());
    }

    #[test]
    fn summary_table_elides_long_runs() {
        let mut snap = MetricsSnapshot::labelled("scheduled");
        snap.run.ranks = 100;
        snap.run.workers = 4;
        snap.run.generations = 40;
        for g in 0..40 {
            snap.record_generation(GenerationMetrics {
                generation: g,
                items: 100,
                changed: g % 2 == 0,
                ..GenerationMetrics::default()
            });
        }
        let md = summary_table_md(&snap);
        assert!(md.contains("### Metrics — scheduled"));
        assert!(md.contains("elided"));
        assert!(md.contains("| 0 |"));
        assert!(md.contains("| 39 |"));
        assert!(!md.contains("| 20 |"), "{md}");
    }
}
