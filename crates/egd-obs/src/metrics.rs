//! The unified metrics registry.
//!
//! Before this crate each layer spoke its own dialect: `egd_sched::SchedStats`
//! (per-worker busy/steal counters), `egd_cluster`'s `TrafficStats` and
//! `RankTiming`, and per-generation engine counters. [`MetricsSnapshot`]
//! unifies them: one serde-serialisable value with deterministic field order
//! (fixed struct layout, `BTreeMap` for the free-form counters) that merges
//! associatively, so a scheduled run's worker table, a world's collective
//! traffic and the engine's cache counters can be combined into one record.
//!
//! Producer crates convert their native statistics into the mirror structs
//! here; this crate stays at the bottom of the dependency graph and knows
//! none of them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identity of the run a snapshot describes.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct RunInfo {
    /// Free-form label (workload name, engine, ...).
    pub label: String,
    /// Simulated ranks (0 when the run had no distributed layer).
    pub ranks: u64,
    /// Scheduler / pool workers.
    pub workers: u64,
    /// Generations executed.
    pub generations: u64,
}

/// One scheduler worker's counters — the [`MetricsSnapshot`] mirror of
/// `egd_sched::WorkerStats`, keyed explicitly so merges can align workers
/// across runs.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Worker id.
    pub worker: u64,
    /// Wall-clock time inside block processing (nanoseconds).
    pub busy_ns: u64,
    /// Items processed.
    pub items: u64,
    /// Blocks claimed.
    pub blocks: u64,
    /// Successful steals performed.
    pub steals: u64,
}

/// Collective-traffic counters — the mirror of `egd_cluster`'s
/// `TrafficSnapshot`.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficMetrics {
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Point-to-point payload bytes.
    pub p2p_bytes: u64,
    /// Broadcast operations.
    pub broadcasts: u64,
    /// Broadcast payload bytes.
    pub broadcast_bytes: u64,
    /// Gather operations.
    pub gathers: u64,
    /// Bytes of merged tree messages received by gather roots.
    pub gather_bytes: u64,
    /// Barrier operations.
    pub barriers: u64,
    /// Largest per-collective root fan-out observed.
    pub max_root_fanout: u64,
}

impl TrafficMetrics {
    /// Adds another sample: counters sum, the fan-out high-water-mark takes
    /// the max.
    pub fn merge(&mut self, other: &TrafficMetrics) {
        self.p2p_messages += other.p2p_messages;
        self.p2p_bytes += other.p2p_bytes;
        self.broadcasts += other.broadcasts;
        self.broadcast_bytes += other.broadcast_bytes;
        self.gathers += other.gathers;
        self.gather_bytes += other.gather_bytes;
        self.barriers += other.barriers;
        self.max_root_fanout = self.max_root_fanout.max(other.max_root_fanout);
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == TrafficMetrics::default()
    }
}

/// One generation's counters: the scheduler's view (items/steals/busy) and
/// the rank-timing view (compute/comm µs, mirroring `RankTiming`) side by
/// side.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq)]
pub struct GenerationMetrics {
    /// Generation index.
    pub generation: u64,
    /// Items (rank tasks or cells) processed.
    pub items: u64,
    /// Successful steals during the generation.
    pub steals: u64,
    /// Critical-path busy time of the generation (nanoseconds).
    pub busy_ns: u64,
    /// Mean per-rank compute time (µs).
    pub compute_us: f64,
    /// Mean per-rank communication time (µs).
    pub comm_us: f64,
    /// Whether the population changed this generation.
    pub changed: bool,
}

impl GenerationMetrics {
    fn absorb(&mut self, other: &GenerationMetrics) {
        self.items += other.items;
        self.steals += other.steals;
        self.busy_ns += other.busy_ns;
        self.compute_us += other.compute_us;
        self.comm_us += other.comm_us;
        self.changed |= other.changed;
    }
}

/// The unified, mergeable metrics record of one (or several merged) runs.
///
/// Field order is deterministic: the struct layout is fixed and the free-form
/// `counters` map is a `BTreeMap`, so two snapshots with the same content
/// serialise identically.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// What ran.
    pub run: RunInfo,
    /// Per-worker scheduler counters, sorted by worker id.
    pub workers: Vec<WorkerMetrics>,
    /// Collective traffic of the run's communicator, if any.
    pub traffic: TrafficMetrics,
    /// Per-generation counters, sorted by generation.
    pub generations: Vec<GenerationMetrics>,
    /// Free-form named counters (cache hits, compiles, dropped spans, ...),
    /// deterministically ordered by name.
    pub counters: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// A snapshot with only the run identity filled in.
    pub fn labelled(label: &str) -> Self {
        MetricsSnapshot {
            run: RunInfo {
                label: label.to_string(),
                ..RunInfo::default()
            },
            ..MetricsSnapshot::default()
        }
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        if delta > 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one worker's counters, accumulating by worker id and keeping
    /// the table sorted.
    pub fn record_worker(&mut self, sample: WorkerMetrics) {
        match self
            .workers
            .binary_search_by_key(&sample.worker, |w| w.worker)
        {
            Ok(pos) => {
                let w = &mut self.workers[pos];
                w.busy_ns += sample.busy_ns;
                w.items += sample.items;
                w.blocks += sample.blocks;
                w.steals += sample.steals;
            }
            Err(pos) => self.workers.insert(pos, sample),
        }
    }

    /// Records one generation's counters, accumulating by generation index
    /// and keeping the table sorted.
    pub fn record_generation(&mut self, sample: GenerationMetrics) {
        match self
            .generations
            .binary_search_by_key(&sample.generation, |g| g.generation)
        {
            Ok(pos) => self.generations[pos].absorb(&sample),
            Err(pos) => self.generations.insert(pos, sample),
        }
    }

    /// Merges another snapshot: workers align by id, generations by index,
    /// traffic and counters sum, run extents take the max. Merging is
    /// associative and commutative up to the label join.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if self.run.label.is_empty() {
            self.run.label = other.run.label.clone();
        } else if !other.run.label.is_empty() && other.run.label != self.run.label {
            self.run.label = format!("{}+{}", self.run.label, other.run.label);
        }
        self.run.ranks = self.run.ranks.max(other.run.ranks);
        self.run.workers = self.run.workers.max(other.run.workers);
        self.run.generations = self.run.generations.max(other.run.generations);
        for worker in &other.workers {
            self.record_worker(*worker);
        }
        self.traffic.merge(&other.traffic);
        for generation in &other.generations {
            self.record_generation(*generation);
        }
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
    }

    /// Total steals across the worker table.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total items across the worker table.
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Busiest worker's accumulated busy time (nanoseconds).
    pub fn critical_path_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(id: u64, busy: u64, items: u64) -> WorkerMetrics {
        WorkerMetrics {
            worker: id,
            busy_ns: busy,
            items,
            blocks: 1,
            steals: 0,
        }
    }

    #[test]
    fn workers_accumulate_by_id_and_stay_sorted() {
        let mut snap = MetricsSnapshot::default();
        snap.record_worker(worker(2, 10, 1));
        snap.record_worker(worker(0, 5, 2));
        snap.record_worker(worker(2, 7, 3));
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[0].worker, 0);
        assert_eq!(snap.workers[1].busy_ns, 17);
        assert_eq!(snap.workers[1].items, 4);
        assert_eq!(snap.total_items(), 6);
        assert_eq!(snap.critical_path_ns(), 17);
    }

    #[test]
    fn generations_accumulate_by_index() {
        let mut snap = MetricsSnapshot::default();
        snap.record_generation(GenerationMetrics {
            generation: 1,
            items: 4,
            changed: false,
            ..GenerationMetrics::default()
        });
        snap.record_generation(GenerationMetrics {
            generation: 0,
            items: 4,
            changed: true,
            ..GenerationMetrics::default()
        });
        snap.record_generation(GenerationMetrics {
            generation: 1,
            items: 2,
            changed: true,
            ..GenerationMetrics::default()
        });
        assert_eq!(snap.generations.len(), 2);
        assert_eq!(snap.generations[0].generation, 0);
        assert_eq!(snap.generations[1].items, 6);
        assert!(snap.generations[1].changed);
    }

    #[test]
    fn merge_combines_every_section() {
        let mut a = MetricsSnapshot::labelled("sched");
        a.run.ranks = 100;
        a.run.workers = 4;
        a.record_worker(worker(0, 100, 10));
        a.add_counter("cache_hits", 5);
        let mut b = MetricsSnapshot::labelled("traffic");
        b.run.ranks = 100;
        b.traffic.broadcasts = 3;
        b.traffic.max_root_fanout = 7;
        b.record_worker(worker(0, 50, 5));
        b.record_worker(worker(1, 25, 2));
        b.add_counter("cache_hits", 2);
        b.add_counter("compiles", 1);
        a.merge(&b);
        assert_eq!(a.run.label, "sched+traffic");
        assert_eq!(a.run.ranks, 100);
        assert_eq!(a.workers.len(), 2);
        assert_eq!(a.workers[0].busy_ns, 150);
        assert_eq!(a.traffic.broadcasts, 3);
        assert_eq!(a.traffic.max_root_fanout, 7);
        assert_eq!(a.counter("cache_hits"), 7);
        assert_eq!(a.counter("compiles"), 1);
        assert_eq!(a.counter("absent"), 0);
    }

    #[test]
    fn merge_is_commutative_on_disjoint_sections() {
        let mut a = MetricsSnapshot::default();
        a.record_worker(worker(0, 10, 1));
        let mut b = MetricsSnapshot::default();
        b.traffic.barriers = 2;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn zero_counter_adds_nothing() {
        let mut snap = MetricsSnapshot::default();
        snap.add_counter("hits", 0);
        assert!(snap.counters.is_empty());
    }
}
