//! # egd-obs — unified observability
//!
//! One low-overhead tracing/metrics subsystem for all three engines:
//!
//! * [`span`] — lock-free-hot-path span tracing: thread-local event buffers,
//!   a runtime on/off + sampling switch, and the compile-out
//!   [`obs_span!`] macro. Disabled cost is one relaxed atomic load (or
//!   nothing at all without the `trace` cargo feature).
//! * [`metrics`] — the [`MetricsSnapshot`] registry unifying scheduler
//!   worker stats, collective traffic, rank timings and per-generation
//!   engine counters in one mergeable, serde-serialisable record with
//!   deterministic field order.
//! * [`costs`] — [`MeasuredCosts`], measured per-fingerprint-pair cell
//!   costs, the feedback table the `egd-cost` predictor can consume.
//! * [`export`] — Chrome trace-event / Perfetto JSON timelines (for both
//!   real runs and virtual-time replays), a JSON validator, and the
//!   markdown metrics summary used by `bench_diff --summary-md`.
//!
//! This crate sits at the bottom of the workspace dependency graph (serde
//! only); producer crates convert their native statistics into the mirror
//! types here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod export;
pub mod metrics;
pub mod span;

pub use costs::{CostSample, MeasuredCosts};
pub use export::{
    chrome_trace_json, summary_table_md, validate_trace_json, ExportOptions, TraceProcess,
};
pub use metrics::{GenerationMetrics, MetricsSnapshot, RunInfo, TrafficMetrics, WorkerMetrics};
pub use span::{
    collect, disable_tracing, enable_tracing, enable_tracing_sampled, flush_thread, now_ns,
    record_span, set_track, tracing_enabled, SpanEvent, SpanKind, SpanTimer, TraceLog, MAX_EVENTS,
};

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises trace sessions. The span collector is process-global, so
/// concurrent sessions — parallel `#[test]`s most of all — would interleave
/// their events; hold this guard around `enable_tracing` … `collect`.
pub fn session_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_span_macro_returns_body_value() {
        let _guard = session_guard();
        disable_tracing();
        let value = obs_span!(SpanKind::Reduce, 1, { 21 * 2 });
        assert_eq!(value, 42);
        assert!(collect().events.is_empty());

        enable_tracing();
        let value = obs_span!(SpanKind::Reduce, 7, { "done" });
        assert_eq!(value, "done");
        disable_tracing();
        let log = collect();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].kind, SpanKind::Reduce);
        assert_eq!(log.events[0].payload, 7);
    }

    #[test]
    fn span_events_round_trip_through_vendored_serde_json() {
        let event = SpanEvent {
            span_id: 3,
            track: 2,
            seq: 1,
            kind: SpanKind::MailboxWait,
            start_ns: 10,
            end_ns: 99,
            payload: u64::MAX,
        };
        let bytes = serde_json::to_vec(&event).expect("serialises");
        let back: SpanEvent = serde_json::from_slice(&bytes).expect("deserialises");
        assert_eq!(back, event);

        let mut snapshot = MetricsSnapshot::labelled("round-trip");
        snapshot.add_counter("cache_hits", 9);
        snapshot.record_worker(WorkerMetrics {
            worker: 1,
            busy_ns: 5,
            items: 2,
            blocks: 1,
            steals: 0,
        });
        let text = serde_json::to_string(&snapshot).expect("serialises");
        let back: MetricsSnapshot = serde_json::from_str(&text).expect("deserialises");
        assert_eq!(back, snapshot);
    }
}
