//! Workload cost prediction: pricing real game work items.
//!
//! The bridge between the abstract [`CostModel`](crate::CostModel) and the
//! engines' actual work items. All predictions are **steady-state**: a
//! deterministic pair is priced as a cache probe (its first evaluation is
//! simulated once and memoised by `egd-parallel`'s payoff slab), a
//! stochastic pair as a full simulated game at the game's memory depth and
//! round count. The outputs are the weight vectors the scheduler's
//! cost-guided partition ([`egd_sched::map_indexed_weighted`]) and the
//! virtual-time replay ([`egd_sched::simulate_schedule_guided`]) consume.
//!
//! Predictions steer only the *schedule*; results flow through the
//! deterministic index-ordered reduction and cannot depend on them.

use crate::model::CostModel;
use egd_core::game::IpdGame;
use egd_core::strategy::StrategyKind;
use std::collections::{HashMap, HashSet};

/// Predicted cost (ns) of one pair payoff between `a` and `b` under `game`:
/// cache-probe cheap when the pairing is deterministic (pure vs pure,
/// noise-free), a full simulated game otherwise.
pub fn pair_weight_ns(
    model: &CostModel,
    game: &IpdGame,
    a: &StrategyKind,
    b: &StrategyKind,
) -> u64 {
    model.pair_cost_ns(
        game.memory(),
        game.rounds(),
        game.is_deterministic_for(a, b),
    )
}

/// Predicted weights of the distinct-pair payoff matrix, in the engine's
/// cell order (`cell = g * num_groups + h` over the group representatives).
pub fn cell_weights(
    model: &CostModel,
    game: &IpdGame,
    strategies: &[StrategyKind],
    group_rep: &[usize],
) -> Vec<u64> {
    let num_groups = group_rep.len();
    let mut weights = Vec::with_capacity(num_groups * num_groups);
    for &gi in group_rep {
        for &hj in group_rep {
            weights.push(pair_weight_ns(
                model,
                game,
                &strategies[gi],
                &strategies[hj],
            ));
        }
    }
    weights
}

/// Exponentially-weighted moving average of *measured* per-cell costs,
/// keyed by the `(fingerprint_a, fingerprint_b)` pair identity the engines'
/// measured-cost tables use. The first concrete rung of the ROADMAP's
/// "online cost-model refinement" item: observed means from previous
/// generations seed the stochastic row prices, so partitions tighten as the
/// population converges (the same pairings recur) instead of forever
/// trusting the static analytic model.
///
/// Predictions steer only the schedule — results flow through the
/// deterministic index-ordered reduction, so repricing can never change a
/// fitness bit.
#[derive(Debug, Clone)]
pub struct MeasuredEwma {
    alpha: f64,
    cells: HashMap<(u64, u64), f64>,
}

impl MeasuredEwma {
    /// Creates an empty table with smoothing factor `alpha` (clamped into
    /// `(0, 1]`; `1.0` means "trust the latest observation completely").
    pub fn new(alpha: f64) -> Self {
        MeasuredEwma {
            alpha: if alpha.is_finite() {
                alpha.clamp(f64::EPSILON, 1.0)
            } else {
                1.0
            },
            cells: HashMap::new(),
        }
    }

    /// Folds one observed mean (ns) for the `(a, b)` cell into the average.
    pub fn observe(&mut self, a: u64, b: u64, mean_ns: f64) {
        if !mean_ns.is_finite() || mean_ns < 0.0 {
            return;
        }
        self.cells
            .entry((a, b))
            .and_modify(|v| *v += self.alpha * (mean_ns - *v))
            .or_insert(mean_ns);
    }

    /// The current smoothed estimate for the `(a, b)` cell, if observed.
    pub fn cell_ns(&self, a: u64, b: u64) -> Option<f64> {
        self.cells.get(&(a, b)).copied()
    }

    /// Number of cells with at least one observation.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// [`cell_weights`] with measured-EWMA refinement: stochastic cells whose
/// fingerprint pair has an observed smoothed cost are priced from the
/// measurement, everything else (deterministic cache probes, never-seen
/// pairings) falls back to the analytic model. `fingerprints` is the dense
/// per-group fingerprint lane aligned with `group_rep`.
pub fn cell_weights_refined(
    model: &CostModel,
    game: &IpdGame,
    strategies: &[StrategyKind],
    group_rep: &[usize],
    fingerprints: &[u64],
    ewma: &MeasuredEwma,
) -> Vec<u64> {
    debug_assert_eq!(group_rep.len(), fingerprints.len());
    let num_groups = group_rep.len();
    let mut weights = Vec::with_capacity(num_groups * num_groups);
    for (g, &gi) in group_rep.iter().enumerate() {
        for (h, &hj) in group_rep.iter().enumerate() {
            let a = &strategies[gi];
            let b = &strategies[hj];
            let analytic = pair_weight_ns(model, game, a, b);
            let weight = if game.is_deterministic_for(a, b) {
                analytic
            } else {
                match ewma.cell_ns(fingerprints[g], fingerprints[h]) {
                    Some(ns) => (ns as u64).max(1),
                    None => analytic,
                }
            };
            weights.push(weight);
        }
    }
    weights
}

/// Predicted cost of each group's full **row** of the pair matrix (group
/// representative vs every group). This is the unit of work a distributed
/// rank performs per distinct strategy in its SSet block.
pub fn row_weights(
    model: &CostModel,
    game: &IpdGame,
    strategies: &[StrategyKind],
    group_rep: &[usize],
) -> Vec<u64> {
    group_rep
        .iter()
        .map(|&gi| {
            group_rep
                .iter()
                .map(|&hj| pair_weight_ns(model, game, &strategies[gi], &strategies[hj]))
                .sum()
        })
        .collect()
}

/// Predicted cost (ns) of one full generation over `strategies`, under the
/// engines' grouped evaluation: SSets holding identical strategies share
/// payoffs, so each *distinct* strategy pair is priced once (the `G × G`
/// representative matrix, not all `N²` SSet pairs). This is the unit
/// `egd-serve` prices a session with for admission and placement — multiply
/// by the generations remaining for the session's predicted budget charge.
/// Steady-state like every predictor here: it prices the population handed
/// in (a session's initial population), not mutation churn.
pub fn generation_weight_ns(model: &CostModel, game: &IpdGame, strategies: &[StrategyKind]) -> u64 {
    let mut seen = HashSet::new();
    let mut group_rep = Vec::new();
    for (i, s) in strategies.iter().enumerate() {
        if seen.insert(s.fingerprint()) {
            group_rep.push(i);
        }
    }
    row_weights(model, game, strategies, &group_rep)
        .iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::payoff::PayoffMatrix;
    use egd_core::rng::{stream, StreamKind};
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::{MixedStrategy, PureStrategy};

    fn game(noise: f64) -> IpdGame {
        IpdGame::new(MemoryDepth::TWO, 100, PayoffMatrix::PAPER, noise).unwrap()
    }

    fn sample_strategies() -> Vec<StrategyKind> {
        let mut rng = stream(11, StreamKind::Auxiliary, 3);
        vec![
            StrategyKind::Pure(PureStrategy::random(MemoryDepth::TWO, &mut rng)),
            StrategyKind::Pure(PureStrategy::random(MemoryDepth::TWO, &mut rng)),
            StrategyKind::Mixed(MixedStrategy::random(MemoryDepth::TWO, &mut rng)),
        ]
    }

    #[test]
    fn mixed_pairs_dominate_pure_pairs() {
        let model = CostModel::blue_gene_like();
        let game = game(0.0);
        let strategies = sample_strategies();
        let weights = cell_weights(&model, &game, &strategies, &[0, 1, 2]);
        assert_eq!(weights.len(), 9);
        // Pure-pure cells (g, h < 2) are cache probes; any cell touching the
        // mixed strategy is a full game.
        let pure_pure = weights[0];
        let mixed = weights[2];
        assert!(mixed > 20 * pure_pure, "{mixed} vs {pure_pure}");
        // Row weights are the row sums of the cell matrix.
        let rows = row_weights(&model, &game, &strategies, &[0, 1, 2]);
        assert_eq!(rows[0], weights[0..3].iter().sum::<u64>());
        assert_eq!(rows[2], weights[6..9].iter().sum::<u64>());
        assert!(rows[2] > rows[0]);
    }

    #[test]
    fn generation_weight_prices_distinct_groups_once() {
        let model = CostModel::blue_gene_like();
        let game = game(0.0);
        let mut strategies = sample_strategies();
        let whole = generation_weight_ns(&model, &game, &strategies);
        let rows = row_weights(&model, &game, &strategies, &[0, 1, 2]);
        assert_eq!(whole, rows.iter().sum::<u64>());
        // Duplicating a strategy adds no predicted work: the duplicate joins
        // an existing group.
        strategies.push(strategies[0].clone());
        assert_eq!(generation_weight_ns(&model, &game, &strategies), whole);
    }

    #[test]
    fn ewma_smooths_and_clamps() {
        let mut ewma = MeasuredEwma::new(0.5);
        assert!(ewma.is_empty());
        ewma.observe(1, 2, 100.0);
        assert_eq!(ewma.cell_ns(1, 2), Some(100.0));
        ewma.observe(1, 2, 200.0);
        assert_eq!(ewma.cell_ns(1, 2), Some(150.0));
        ewma.observe(1, 2, f64::NAN); // ignored
        ewma.observe(1, 2, -5.0); // ignored
        assert_eq!(ewma.cell_ns(1, 2), Some(150.0));
        assert_eq!(ewma.len(), 1);
        // Degenerate alphas clamp into (0, 1].
        let mut eager = MeasuredEwma::new(7.0);
        eager.observe(3, 3, 10.0);
        eager.observe(3, 3, 40.0);
        assert_eq!(eager.cell_ns(3, 3), Some(40.0));
    }

    #[test]
    fn refined_weights_reprice_only_observed_stochastic_cells() {
        let model = CostModel::blue_gene_like();
        let game = game(0.0);
        let strategies = sample_strategies();
        let group_rep = [0usize, 1, 2];
        let fingerprints: Vec<u64> = group_rep
            .iter()
            .map(|&i| strategies[i].fingerprint())
            .collect();
        let analytic = cell_weights(&model, &game, &strategies, &group_rep);

        // Empty table: refinement is a no-op.
        let empty = MeasuredEwma::new(0.2);
        let refined = cell_weights_refined(
            &model,
            &game,
            &strategies,
            &group_rep,
            &fingerprints,
            &empty,
        );
        assert_eq!(refined, analytic);

        // Observe the (mixed, pure0) cell and a deterministic (pure0, pure1)
        // cell: only the stochastic one repriced.
        let mut ewma = MeasuredEwma::new(0.2);
        ewma.observe(fingerprints[2], fingerprints[0], 123_456.0);
        ewma.observe(fingerprints[0], fingerprints[1], 999_999.0);
        let refined =
            cell_weights_refined(&model, &game, &strategies, &group_rep, &fingerprints, &ewma);
        assert_eq!(refined[2 * 3], 123_456);
        assert_eq!(refined[1], analytic[1], "deterministic cells stay analytic");
        // Unobserved stochastic cells keep the analytic price.
        assert_eq!(refined[2], analytic[2]);
        // Tiny measurements still yield schedulable (non-zero) weights.
        let mut tiny = MeasuredEwma::new(0.2);
        tiny.observe(fingerprints[2], fingerprints[2], 0.25);
        let refined =
            cell_weights_refined(&model, &game, &strategies, &group_rep, &fingerprints, &tiny);
        assert_eq!(refined[2 * 3 + 2], 1);
    }

    #[test]
    fn noise_makes_every_pair_expensive() {
        let model = CostModel::blue_gene_like();
        let noisy = game(0.05);
        let strategies = sample_strategies();
        let weights = cell_weights(&model, &noisy, &strategies, &[0, 1, 2]);
        let min = *weights.iter().min().unwrap();
        let max = *weights.iter().max().unwrap();
        assert_eq!(min, max, "no pair is cacheable under noise");
        assert!(min > 1_000);
    }
}
