//! # egd-cost
//!
//! The shared **cost and partitioning layer** of the workspace: one cost
//! model, one set of skew/imbalance helpers, one way to price a work item —
//! consumed by every execution engine instead of each layer keeping its own
//! copy (the model used to live inside `egd-cluster`; the skew math used to
//! be re-derived in `egd-parallel` and `egd-bench` separately).
//!
//! ## The two-level partitioning contract
//!
//! 1. **Cost-proportional initial partition.** Work (pair-matrix cells,
//!    agent work items, distributed rank tasks) is priced by the
//!    [`CostModel`] ([`predict`]) and split across workers at cost quantiles
//!    ([`egd_sched::weighted_ranges`]), so every worker *starts* with the
//!    same predicted load even when the population is heavily skewed.
//! 2. **Adaptive steal correction.** The `egd-sched` work-stealing loop
//!    corrects whatever the prediction got wrong — instead of correcting the
//!    entire skew, as it had to under the old uniform split.
//!
//! Partitioning influences only the schedule: all results flow through the
//! scheduler's deterministic index-ordered reduction, so goldens stay
//! byte-identical for any worker count, steal schedule and weight vector.
//!
//! ## Layering
//!
//! * [`model`] — the workload-independent coefficients (per-round compute
//!   cost by memory depth, the Fig. 3 optimisation ladder, cached-pair
//!   probe cost).
//! * [`predict`] — pricing real work items: pair, cell-matrix and rank-row
//!   weights over a population's strategies.
//! * [`balance`] — the shared skew/imbalance arithmetic (max-over-mean).
//!
//! Machine-*dependent* costs stay where their inputs live: `egd-cluster`
//! extends [`CostModel`] with collective/torus communication times (its
//! `TopologyCost` trait), and `egd-parallel` calibrates the compute
//! coefficients by timing its real kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod model;
pub mod predict;

pub use model::{CommMode, ComputeOptimization, CostModel, OptimizationLevel};
