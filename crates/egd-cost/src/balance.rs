//! Shared skew and load-balance arithmetic.
//!
//! Before this layer existed, `WorkPlan::static_skew`, the benchmark
//! harnesses and the scheduler's replay each re-derived their own
//! max-over-mean imbalance from per-chunk weight sums. These helpers are the
//! single home for that math; every consumer reduces to
//! [`egd_sched::max_over_mean`], so "imbalance" means the same number
//! everywhere (1.0 = perfectly balanced, `workers` = one worker did
//! everything).

use egd_sched::weighted_ranges;
use std::ops::Range;

/// Busiest-over-mean of per-worker totals. Re-exported from the scheduler so
/// the definition cannot drift between layers.
pub use egd_sched::max_over_mean as imbalance;

/// Per-chunk weight totals of the legacy **uniform contiguous split**:
/// `ceil(n / workers)`-item chunks, idle trailing workers excluded. This is
/// the initial distribution a static schedule is stuck with.
pub fn uniform_chunk_totals(weights: &[u64], workers: usize) -> Vec<u64> {
    if weights.is_empty() || workers == 0 {
        return Vec::new();
    }
    let chunk = weights.len().div_ceil(workers);
    weights.chunks(chunk).map(|c| c.iter().sum()).collect()
}

/// Per-range weight totals of an explicit partition.
pub fn partition_totals(weights: &[u64], ranges: &[Range<usize>]) -> Vec<u64> {
    ranges
        .iter()
        .map(|r| weights[r.clone()].iter().sum())
        .collect()
}

/// Skew factor of `weights` under the uniform contiguous split into
/// `workers` chunks: heaviest chunk over mean chunk. This is the imbalance a
/// *static, uniform* schedule is stuck with and that cost-guided
/// partitioning (or stealing) removes. Degenerate inputs read as balanced.
pub fn static_skew(weights: &[u64], workers: usize) -> f64 {
    imbalance(uniform_chunk_totals(weights, workers))
}

/// Skew factor of `weights` under the **cost-guided** partition
/// ([`weighted_ranges`]): heaviest segment over mean segment. Empty
/// segments (idle workers) are excluded from the mean, matching
/// [`uniform_chunk_totals`]'s idle-worker exclusion so the two skews are
/// directly comparable. With honest weights this stays near 1 — the
/// residual quantisation error the adaptive scheduler still smooths out.
pub fn weighted_skew(weights: &[u64], workers: usize) -> f64 {
    let ranges: Vec<Range<usize>> = weighted_ranges(weights, workers.max(1))
        .into_iter()
        .filter(|r| !r.is_empty())
        .collect();
    imbalance(partition_totals(weights, &ranges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_are_balanced_either_way() {
        let weights = [10u64; 16];
        assert!((static_skew(&weights, 4) - 1.0).abs() < 1e-12);
        assert!((weighted_skew(&weights, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_weights_collapse_static_but_not_weighted() {
        // Front quarter 16x heavier: the uniform split pins it on chunk 0.
        let weights: Vec<u64> = (0..64).map(|i| if i < 16 { 1600 } else { 100 }).collect();
        let fixed = static_skew(&weights, 4);
        let guided = weighted_skew(&weights, 4);
        assert!(fixed > 2.0, "static skew {fixed}");
        assert!(guided < 1.2, "weighted skew {guided}");
    }

    #[test]
    fn degenerate_inputs_read_as_balanced() {
        assert_eq!(static_skew(&[], 4), 1.0);
        assert_eq!(static_skew(&[5, 5], 0), 1.0);
        assert_eq!(static_skew(&[0, 0, 0], 3), 1.0);
        assert_eq!(weighted_skew(&[], 4), 1.0);
    }

    #[test]
    fn skews_agree_on_idle_worker_handling() {
        // Both skews exclude idle workers from the mean: two equal items on
        // eight workers read as perfectly balanced either way.
        assert_eq!(static_skew(&[5, 5], 8), 1.0);
        assert_eq!(weighted_skew(&[5, 5], 8), 1.0);
        // A single heavy item among zeros: the guided split isolates it and
        // the zero-cost tail, never reading *worse* than the uniform split.
        let mut single = vec![0u64; 9];
        single[0] = 1_000_000;
        assert!(weighted_skew(&single, 4) <= static_skew(&single, 4));
    }

    #[test]
    fn chunk_totals_match_manual_chunking() {
        let weights = [1u64, 2, 3, 4, 5];
        // ceil(5/2) = 3-item chunks: [1+2+3, 4+5].
        assert_eq!(uniform_chunk_totals(&weights, 2), vec![6, 9]);
        // More workers than items: one-item chunks, idle workers excluded.
        assert_eq!(uniform_chunk_totals(&weights, 8), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn partition_totals_cover_explicit_ranges() {
        let weights = [4u64, 1, 1, 4];
        let totals = partition_totals(&weights, &[0..1, 1..3, 3..4]);
        assert_eq!(totals, vec![4, 2, 4]);
        assert!((imbalance(totals) - 1.2).abs() < 1e-12);
    }
}
