//! The per-game / per-rank compute cost model.
//!
//! The scaling figures of the paper (Fig. 4–6, Table VI) are statements about
//! the ratio between per-rank game-play time and global communication time as
//! the processor count, population size and memory depth vary. This module
//! holds the *workload-independent* half of that model — per-game compute
//! time as a function of memory depth, kernel optimisation level and core
//! speed — which every execution layer now shares:
//!
//! * `egd-sched` sizes initial worker segments from per-item weights priced
//!   here ([`CostModel::pair_cost_ns`]);
//! * `egd-parallel` prices its work-plan items and pair-matrix cells
//!   ([`crate::predict`]);
//! * `egd-cluster` adds the machine-dependent half (collective and torus
//!   network times need a `ClusterTopology`) through its `TopologyCost`
//!   extension trait, and `egd-parallel` provides host calibration by timing
//!   its real kernels.
//!
//! The optimisation ladder of Fig. 3 is expressed as
//! [`OptimizationLevel`] = communication mode × compute optimisation.

use egd_core::state::MemoryDepth;
use serde::{Deserialize, Serialize};

/// How fitness values travel back to the Nature Agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CommMode {
    /// Blocking collective: every rank participates in a gather for every
    /// pairwise-comparison event (the paper's "Original" communication).
    Blocking,
    /// Non-blocking point-to-point returns from only the two selected SSets'
    /// owners (the paper's first optimisation).
    #[default]
    NonBlocking,
}

/// Which compute kernel optimisation is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ComputeOptimization {
    /// Paper-literal kernel: explicit view list + linear state scan.
    Baseline,
    /// Indexed state lookup (the "Compiler" rung).
    Compiler,
    /// Indexed lookup + branch-free accumulation / cycle closing
    /// (the "Instruction" rung).
    #[default]
    Intrinsics,
}

/// A rung of the Fig. 3 optimisation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptimizationLevel {
    /// Communication mode.
    pub comm: CommMode,
    /// Compute kernel optimisation.
    pub compute: ComputeOptimization,
}

impl OptimizationLevel {
    /// "Original": blocking collectives + baseline kernel.
    pub const ORIGINAL: OptimizationLevel = OptimizationLevel {
        comm: CommMode::Blocking,
        compute: ComputeOptimization::Baseline,
    };
    /// "Comm": non-blocking fitness returns, baseline kernel.
    pub const COMM: OptimizationLevel = OptimizationLevel {
        comm: CommMode::NonBlocking,
        compute: ComputeOptimization::Baseline,
    };
    /// "Compiler": non-blocking + indexed kernel.
    pub const COMPILER: OptimizationLevel = OptimizationLevel {
        comm: CommMode::NonBlocking,
        compute: ComputeOptimization::Compiler,
    };
    /// "Instruction": non-blocking + fully optimised kernel.
    pub const INSTRUCTION: OptimizationLevel = OptimizationLevel {
        comm: CommMode::NonBlocking,
        compute: ComputeOptimization::Intrinsics,
    };

    /// The four rungs in the order Fig. 3 presents them.
    pub const LADDER: [OptimizationLevel; 4] = [
        OptimizationLevel::ORIGINAL,
        OptimizationLevel::COMM,
        OptimizationLevel::COMPILER,
        OptimizationLevel::INSTRUCTION,
    ];

    /// The label used on the Fig. 3 x-axis.
    pub fn label(&self) -> &'static str {
        match (self.comm, self.compute) {
            (CommMode::Blocking, _) => "Original",
            (CommMode::NonBlocking, ComputeOptimization::Baseline) => "Comm",
            (CommMode::NonBlocking, ComputeOptimization::Compiler) => "Compiler",
            (CommMode::NonBlocking, ComputeOptimization::Intrinsics) => "Instruction",
        }
    }
}

impl Default for OptimizationLevel {
    fn default() -> Self {
        OptimizationLevel::INSTRUCTION
    }
}

/// Workload-independent cost coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost (µs) of one fully optimised game round at memory-one on a
    /// reference core.
    pub round_base_us: f64,
    /// Additional cost (µs) per state bit (`2n`), modelling the growth of the
    /// current-view handling with memory depth (Fig. 5's runtime growth).
    pub round_per_state_bit_us: f64,
    /// Cost multiplier of the indexed-but-unfused kernel relative to the
    /// optimised one.
    pub compiler_penalty: f64,
    /// Cost (µs) per *state* scanned by the naive kernel's linear search,
    /// per round.
    pub naive_scan_us_per_state: f64,
    /// Multiplier applied to communication time under blocking collectives.
    pub blocking_comm_penalty: f64,
    /// Serial per-contribution cost (µs) at a collective root: deserialising
    /// and folding one rank's entry of a gathered result. The tree transport
    /// delivers O(log P) *merged* messages, but the root still unpacks P
    /// contributions — this is the term that keeps blocking gathers linear
    /// in rank count even on a log-depth network.
    pub root_ingest_us: f64,
    /// Fixed per-generation serial overhead on every rank (µs): loop
    /// bookkeeping, fitness reset, RNG derivation.
    pub per_generation_overhead_us: f64,
    /// Cost (µs) of one **cached** deterministic pair evaluation: a probe of
    /// the lock-free payoff slab plus bookkeeping. Orders of magnitude below
    /// a simulated game — this gap is what makes mixed/pure populations
    /// skewed and cost-guided partitions worthwhile.
    pub cached_pair_us: f64,
}

impl CostModel {
    /// Fixed constants chosen to resemble a Blue Gene-class core. Used by
    /// tests and by default so results are machine-independent.
    pub fn blue_gene_like() -> Self {
        CostModel {
            round_base_us: 0.02,
            round_per_state_bit_us: 0.004,
            compiler_penalty: 1.6,
            naive_scan_us_per_state: 0.003,
            blocking_comm_penalty: 3.0,
            root_ingest_us: 0.5,
            per_generation_overhead_us: 4.0,
            cached_pair_us: 0.1,
        }
    }

    /// Time (µs) of one game of `rounds` rounds at `memory` on a core with
    /// the given speed factor, under a compute optimisation level.
    pub fn game_time_us(
        &self,
        memory: MemoryDepth,
        rounds: u32,
        compute: ComputeOptimization,
        core_speed_factor: f64,
    ) -> f64 {
        let state_bits = memory.state_bits() as f64;
        let optimised_round = self.round_base_us + self.round_per_state_bit_us * state_bits;
        let per_round = match compute {
            ComputeOptimization::Intrinsics => optimised_round,
            ComputeOptimization::Compiler => optimised_round * self.compiler_penalty,
            ComputeOptimization::Baseline => {
                optimised_round * self.compiler_penalty
                    + self.naive_scan_us_per_state * memory.num_states() as f64
            }
        };
        per_round * rounds as f64 / core_speed_factor.max(1e-6)
    }

    /// Predicted cost (ns) of evaluating one pair payoff: a cache probe for
    /// deterministic (cacheable) pairs, a full simulated game otherwise. The
    /// unit is virtual nanoseconds on the reference core — what the
    /// scheduler's weighted partition and the virtual-time replay consume.
    pub fn pair_cost_ns(&self, memory: MemoryDepth, rounds: u32, cached: bool) -> u64 {
        let us = if cached {
            self.cached_pair_us
        } else {
            self.game_time_us(memory, rounds, ComputeOptimization::Intrinsics, 1.0)
        };
        ((us * 1e3) as u64).max(1)
    }

    /// Size in bytes of a broadcast strategy update at a given memory depth
    /// (the packed genome plus headers).
    pub fn strategy_message_bytes(memory: MemoryDepth) -> usize {
        memory.num_states().div_ceil(8) + 32
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::blue_gene_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_labels() {
        let labels: Vec<&str> = OptimizationLevel::LADDER
            .iter()
            .map(|l| l.label())
            .collect();
        assert_eq!(labels, vec!["Original", "Comm", "Compiler", "Instruction"]);
        assert_eq!(OptimizationLevel::default(), OptimizationLevel::INSTRUCTION);
    }

    #[test]
    fn game_time_grows_with_memory() {
        let model = CostModel::blue_gene_like();
        let mut last = 0.0;
        for memory in MemoryDepth::PAPER_RANGE {
            let t = model.game_time_us(memory, 200, ComputeOptimization::Intrinsics, 1.0);
            assert!(t > last, "{memory}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn optimisation_ladder_is_monotone_in_compute_cost() {
        let model = CostModel::blue_gene_like();
        for memory in [MemoryDepth::ONE, MemoryDepth::SIX] {
            let naive = model.game_time_us(memory, 200, ComputeOptimization::Baseline, 1.0);
            let compiler = model.game_time_us(memory, 200, ComputeOptimization::Compiler, 1.0);
            let optimised = model.game_time_us(memory, 200, ComputeOptimization::Intrinsics, 1.0);
            assert!(naive > compiler);
            assert!(compiler > optimised);
        }
    }

    #[test]
    fn naive_kernel_penalty_explodes_with_memory_depth() {
        // The linear state scan makes the naive kernel relatively much worse
        // at memory-six than at memory-one.
        let model = CostModel::blue_gene_like();
        let ratio_m1 =
            model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Baseline, 1.0)
                / model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics, 1.0);
        let ratio_m6 =
            model.game_time_us(MemoryDepth::SIX, 200, ComputeOptimization::Baseline, 1.0)
                / model.game_time_us(MemoryDepth::SIX, 200, ComputeOptimization::Intrinsics, 1.0);
        assert!(ratio_m6 > ratio_m1 * 5.0);
    }

    #[test]
    fn slower_cores_take_longer() {
        let model = CostModel::blue_gene_like();
        let fast = model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics, 1.0);
        let slow = model.game_time_us(MemoryDepth::ONE, 200, ComputeOptimization::Intrinsics, 0.5);
        assert!((slow / fast - 2.0).abs() < 1e-9);
    }

    #[test]
    fn strategy_message_bytes_matches_genome_size() {
        assert_eq!(CostModel::strategy_message_bytes(MemoryDepth::ONE), 1 + 32);
        assert_eq!(
            CostModel::strategy_message_bytes(MemoryDepth::SIX),
            512 + 32
        );
    }

    #[test]
    fn cached_pairs_are_orders_of_magnitude_cheaper() {
        let model = CostModel::blue_gene_like();
        let cached = model.pair_cost_ns(MemoryDepth::TWO, 200, true);
        let simulated = model.pair_cost_ns(MemoryDepth::TWO, 200, false);
        assert!(simulated > 20 * cached, "{simulated} vs {cached}");
        // Weights are never zero (the partition math needs monotone prefix
        // sums to make progress).
        assert!(cached >= 1);
    }
}
