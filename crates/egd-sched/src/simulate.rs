//! Virtual-time replay of the scheduling algorithm.
//!
//! Direct wall-clock measurement of the scheduler's multicore behaviour
//! requires at least as many physical cores as workers: on an oversubscribed
//! host, time-sharing both distorts per-worker busy spans and collapses the
//! steal schedule (a single OS thread can drain every queue before the
//! others are even dispatched). This module takes the same approach the
//! workspace's `egd-cluster::perf` harness takes for 294,912-core scaling
//! studies — replay the algorithm in *virtual time* over measured inputs:
//!
//! 1. measure the real per-item cost of a workload sequentially (exact,
//!    contention-free spans on any machine),
//! 2. feed those costs to [`simulate_schedule`], which executes the *same*
//!    segmentation, adaptive-block-growth and back-half-steal rules as the
//!    live scheduler, but advances per-worker clocks by the measured item
//!    costs instead of executing the items.
//!
//! The resulting [`SimOutcome::critical_path_ns`] is the per-policy
//! wall-clock a machine with `workers` dedicated cores would observe — a
//! deterministic, hardware-independent load-balance metric that lets the
//! committed benchmark baseline compare static vs adaptive scheduling
//! honestly even on a single-core CI box.

use crate::Policy;
use egd_obs::{SpanEvent, SpanKind};
use serde::{Deserialize, Serialize};

/// Virtual-time cost charged per steal (lock, split, re-install): a
/// conservative stand-in for the real synchronisation cost.
const STEAL_OVERHEAD_NS: u64 = 1_000;

/// Outcome of a virtual-time schedule replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// The policy replayed.
    pub policy: Policy,
    /// Final virtual clock of every worker (ns).
    pub per_worker_ns: Vec<u64>,
    /// Number of steals that occurred.
    pub steals: u64,
    /// Total work across all items (ns).
    pub total_work_ns: u64,
}

impl SimOutcome {
    /// The slowest worker's clock — the parallel section's wall-clock on a
    /// machine with one core per worker.
    pub fn critical_path_ns(&self) -> u64 {
        self.per_worker_ns.iter().copied().max().unwrap_or(0)
    }

    /// Busiest over mean worker clock (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        crate::stats::max_over_mean(self.per_worker_ns.iter().copied())
    }

    /// Ideal critical path: total work divided evenly.
    pub fn ideal_ns(&self) -> u64 {
        if self.per_worker_ns.is_empty() {
            self.total_work_ns
        } else {
            self.total_work_ns / self.per_worker_ns.len() as u64
        }
    }
}

/// One worker's state during the replay.
struct SimWorker {
    clock: u64,
    /// Remaining contiguous range of item indices, front to back.
    range: std::ops::Range<usize>,
    block: usize,
    steals: u64,
    done: bool,
}

/// Replays the scheduler over `costs` (per-item virtual cost, ns) with
/// `workers` workers under `policy`, using the same segmentation, block
/// growth and steal rules as the live run loop.
pub fn simulate_schedule(workers: usize, costs: &[u64], policy: Policy) -> SimOutcome {
    simulate(workers, costs, None, policy, None)
}

/// [`simulate_schedule`], additionally recording every virtual block claim
/// and steal as an [`SpanEvent`] in **virtual time** — the same event shape
/// live tracing produces, so `egd_obs::chrome_trace_json` can place the
/// modelled schedule next to a measured one on a single Perfetto timeline.
/// Events are fully deterministic (no wall clock is read).
pub fn simulate_schedule_recorded(
    workers: usize,
    costs: &[u64],
    policy: Policy,
) -> (SimOutcome, Vec<SpanEvent>) {
    let mut events = Vec::new();
    let outcome = simulate(workers, costs, None, policy, Some(&mut events));
    (outcome, events)
}

/// [`simulate_schedule_guided`] with virtual-time span recording — see
/// [`simulate_schedule_recorded`].
pub fn simulate_schedule_guided_recorded(
    workers: usize,
    costs: &[u64],
    weights: &[u64],
    policy: Policy,
) -> (SimOutcome, Vec<SpanEvent>) {
    assert_eq!(
        costs.len(),
        weights.len(),
        "one predicted weight per item is required"
    );
    let mut events = Vec::new();
    let outcome = simulate(workers, costs, Some(weights), policy, Some(&mut events));
    (outcome, events)
}

/// Replays the scheduler with the **cost-guided partition** active: initial
/// per-worker segments sit at the cost quantiles of `weights` (the predicted
/// per-item costs) and steals split at the victim's predicted cost midpoint
/// — exactly the rules [`crate::map_indexed_weighted`] runs live. `costs`
/// are the *actual* per-item costs charged to the virtual clocks, so passing
/// imperfect predictions measures how much stealing must correct the
/// prediction error.
pub fn simulate_schedule_guided(
    workers: usize,
    costs: &[u64],
    weights: &[u64],
    policy: Policy,
) -> SimOutcome {
    assert_eq!(
        costs.len(),
        weights.len(),
        "one predicted weight per item is required"
    );
    simulate(workers, costs, Some(weights), policy, None)
}

/// Appends virtual-time span events when `record` is supplied; per-track
/// sequence numbers and span ids are assigned locally, so recorded replays
/// never touch the global tracing state.
struct Recorder<'a> {
    events: &'a mut Vec<SpanEvent>,
    seqs: Vec<u64>,
    next_id: u64,
}

impl Recorder<'_> {
    fn push(&mut self, track: usize, kind: SpanKind, payload: u64, start_ns: u64, end_ns: u64) {
        let event = SpanEvent {
            span_id: self.next_id,
            track: track as u32,
            seq: self.seqs[track],
            kind,
            start_ns,
            end_ns,
            payload,
        };
        self.next_id += 1;
        self.seqs[track] += 1;
        self.events.push(event);
    }
}

fn simulate(
    workers: usize,
    costs: &[u64],
    weights: Option<&[u64]>,
    policy: Policy,
    record: Option<&mut Vec<SpanEvent>>,
) -> SimOutcome {
    let n = costs.len();
    let total_work_ns: u64 = costs.iter().sum();
    let effective = workers.max(1).min(n.max(1));
    let mut recorder = record.map(|events| Recorder {
        events,
        seqs: vec![0; effective],
        next_id: 0,
    });
    if effective <= 1 || n == 0 {
        if n > 0 {
            if let Some(recorder) = recorder.as_mut() {
                recorder.push(0, SpanKind::BlockClaim, 0, 0, total_work_ns);
            }
        }
        return SimOutcome {
            policy,
            per_worker_ns: vec![total_work_ns; usize::from(n > 0)],
            steals: 0,
            total_work_ns,
        };
    }

    // Initial segmentation: uniform item blocks, or cost quantiles of the
    // predicted weights when the guided partition is active.
    let prefix = weights.map(crate::weighted::replay_prefix);
    let initial: Vec<std::ops::Range<usize>> = match &prefix {
        Some(prefix) => crate::weighted::replay_ranges(prefix, n, effective),
        None => crate::weighted::uniform_ranges(0..n, effective),
    };
    let max_block = (n / (effective * super::scheduler::BLOCKS_PER_WORKER)).max(1);
    let mut workers_state: Vec<SimWorker> = initial
        .into_iter()
        .map(|range| SimWorker {
            clock: 0,
            range,
            block: match policy {
                Policy::Static => usize::MAX,
                Policy::Adaptive => super::scheduler::INITIAL_BLOCK,
            },
            steals: 0,
            done: false,
        })
        .collect();

    let mut steals = 0u64;
    // Advance the earliest not-yet-finished worker, mirroring real time.
    let earliest = |state: &[SimWorker]| {
        state
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.done)
            .min_by_key(|(_, w)| w.clock)
            .map(|(i, _)| i)
    };
    while let Some(me) = earliest(&workers_state) {
        if workers_state[me].range.is_empty() {
            if policy == Policy::Static {
                workers_state[me].done = true;
                continue;
            }
            // Steal: scan victims in (me+1..) order; back half, whole if 1.
            let victim = (1..effective)
                .map(|offset| (me + offset) % effective)
                .find(|&v| !workers_state[v].range.is_empty());
            match victim {
                Some(v) => {
                    let vr = workers_state[v].range.clone();
                    let give = match &prefix {
                        Some(prefix) => crate::weighted::steal_share(prefix, &vr),
                        None => (vr.len() / 2).max(usize::from(vr.len() == 1)),
                    };
                    let mid = vr.end - give;
                    workers_state[v].range = vr.start..mid;
                    workers_state[me].range = mid..vr.end;
                    if let Some(recorder) = recorder.as_mut() {
                        let start = workers_state[me].clock;
                        recorder.push(
                            me,
                            SpanKind::Steal,
                            v as u64,
                            start,
                            start + STEAL_OVERHEAD_NS,
                        );
                    }
                    workers_state[me].clock += STEAL_OVERHEAD_NS;
                    workers_state[me].block = super::scheduler::INITIAL_BLOCK;
                    workers_state[me].steals += 1;
                    steals += 1;
                    // Fall through: like the live loop, a thief claims a
                    // block from its fresh slot in the same turn (otherwise
                    // two idle workers can ping-pong a final item forever).
                }
                None => {
                    workers_state[me].done = true;
                    continue;
                }
            }
        }

        // Claim and "process" one block: advance the clock by its cost.
        let worker = &mut workers_state[me];
        let take = worker.block.min(worker.range.len());
        let block_range = worker.range.start..worker.range.start + take;
        worker.range.start += take;
        let block_start = block_range.start;
        let claim_start = worker.clock;
        worker.clock += costs[block_range].iter().sum::<u64>();
        let claim_end = worker.clock;
        if policy == Policy::Adaptive {
            worker.block = worker.block.saturating_mul(2).min(max_block);
        }
        if let Some(recorder) = recorder.as_mut() {
            recorder.push(
                me,
                SpanKind::BlockClaim,
                block_start as u64,
                claim_start,
                claim_end,
            );
        }
    }

    SimOutcome {
        policy,
        per_worker_ns: workers_state.iter().map(|w| w.clock).collect(),
        steals,
        total_work_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_balance_under_both_policies() {
        let costs = vec![1_000u64; 256];
        for policy in [Policy::Static, Policy::Adaptive] {
            let outcome = simulate_schedule(4, costs.as_slice(), policy);
            assert_eq!(outcome.total_work_ns, 256_000);
            assert!(
                outcome.imbalance() < 1.1,
                "{policy:?} imbalance {}",
                outcome.imbalance()
            );
        }
    }

    #[test]
    fn skewed_costs_collapse_static_but_not_adaptive() {
        // First quarter of the items is 16x the cost of the rest.
        let costs: Vec<u64> = (0..256)
            .map(|i| if i < 64 { 16_000 } else { 1_000 })
            .collect();
        let fixed = simulate_schedule(4, &costs, Policy::Static);
        let adaptive = simulate_schedule(4, &costs, Policy::Adaptive);
        assert_eq!(fixed.steals, 0);
        assert!(adaptive.steals > 0);
        // Static pins the whole expensive quarter on worker 0.
        assert_eq!(fixed.per_worker_ns[0], 64 * 16_000);
        assert!(fixed.imbalance() > 2.0, "static {}", fixed.imbalance());
        assert!(
            adaptive.imbalance() < 1.3,
            "adaptive {}",
            adaptive.imbalance()
        );
        let speedup = fixed.critical_path_ns() as f64 / adaptive.critical_path_ns() as f64;
        assert!(speedup > 1.5, "speedup {speedup}");
    }

    #[test]
    fn sequential_and_empty_inputs() {
        let outcome = simulate_schedule(1, &[5, 5, 5], Policy::Adaptive);
        assert_eq!(outcome.critical_path_ns(), 15);
        assert_eq!(outcome.steals, 0);
        let empty = simulate_schedule(4, &[], Policy::Adaptive);
        assert_eq!(empty.critical_path_ns(), 0);
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn every_item_is_charged_exactly_once() {
        let costs: Vec<u64> = (1..=100).collect();
        let outcome = simulate_schedule(3, &costs, Policy::Adaptive);
        let charged: u64 =
            outcome.per_worker_ns.iter().sum::<u64>() - outcome.steals * super::STEAL_OVERHEAD_NS;
        assert_eq!(charged, costs.iter().sum::<u64>());
    }

    #[test]
    fn ideal_is_total_over_workers() {
        let outcome = simulate_schedule(4, &[4_000u64; 8], Policy::Static);
        assert_eq!(outcome.ideal_ns(), 8_000);
    }

    #[test]
    fn guided_partition_cuts_steals_on_skew() {
        let costs: Vec<u64> = (0..256)
            .map(|i| if i < 64 { 16_000 } else { 1_000 })
            .collect();
        let adaptive = simulate_schedule(4, &costs, Policy::Adaptive);
        let guided = simulate_schedule_guided(4, &costs, &costs, Policy::Adaptive);
        assert!(
            guided.steals < adaptive.steals,
            "guided {} vs uniform {} steals",
            guided.steals,
            adaptive.steals
        );
        assert!(guided.critical_path_ns() <= adaptive.critical_path_ns());
        assert!(guided.imbalance() < 1.1, "guided {}", guided.imbalance());
        assert_eq!(guided.total_work_ns, adaptive.total_work_ns);
        // With exact predictions, even the *static* policy is balanced: the
        // whole win comes from where the initial boundaries sit.
        let guided_static = simulate_schedule_guided(4, &costs, &costs, Policy::Static);
        assert_eq!(guided_static.steals, 0);
        assert!(
            guided_static.imbalance() < 1.1,
            "static guided {}",
            guided_static.imbalance()
        );
    }

    #[test]
    fn imperfect_predictions_are_corrected_by_stealing() {
        // The prediction believes the work is uniform; reality is skewed.
        // The guided partition then starts unbalanced and stealing must
        // still recover a near-balanced schedule.
        let costs: Vec<u64> = (0..128).map(|i| if i < 32 { 8_000 } else { 500 }).collect();
        let uniform_prediction = vec![1u64; 128];
        let guided = simulate_schedule_guided(4, &costs, &uniform_prediction, Policy::Adaptive);
        assert!(guided.steals > 0);
        assert!(guided.imbalance() < 1.3, "{}", guided.imbalance());
        assert_eq!(guided.total_work_ns, costs.iter().sum::<u64>());
    }

    #[test]
    fn recorded_replay_matches_unrecorded_and_charges_every_item() {
        let costs: Vec<u64> = (0..256)
            .map(|i| if i < 64 { 16_000 } else { 1_000 })
            .collect();
        let plain = simulate_schedule(4, &costs, Policy::Adaptive);
        let (recorded, events) = simulate_schedule_recorded(4, &costs, Policy::Adaptive);
        assert_eq!(recorded, plain, "recording must not change the schedule");
        // Block spans partition the virtual timeline: their durations sum to
        // the total work, and steal spans match the steal count.
        let block_ns: u64 = events
            .iter()
            .filter(|e| e.kind == SpanKind::BlockClaim)
            .map(|e| e.end_ns - e.start_ns)
            .sum();
        assert_eq!(block_ns, recorded.total_work_ns);
        let steal_spans = events.iter().filter(|e| e.kind == SpanKind::Steal).count() as u64;
        assert_eq!(steal_spans, recorded.steals);
        // Per-track events are contiguous in virtual time and seq-ordered.
        for track in 0..4u32 {
            let mut clock = 0;
            for (seq, event) in events.iter().filter(|e| e.track == track).enumerate() {
                assert_eq!(event.seq, seq as u64, "track {track}");
                assert!(event.start_ns >= clock, "track {track}");
                clock = event.end_ns;
            }
        }
        // Deterministic: a second recording is identical.
        let (_, again) = simulate_schedule_recorded(4, &costs, Policy::Adaptive);
        assert_eq!(again, events);
    }

    #[test]
    fn guided_recorded_replay_matches_guided() {
        let costs: Vec<u64> = (0..128).map(|i| if i < 32 { 8_000 } else { 500 }).collect();
        let plain = simulate_schedule_guided(4, &costs, &costs, Policy::Adaptive);
        let (recorded, events) =
            simulate_schedule_guided_recorded(4, &costs, &costs, Policy::Adaptive);
        assert_eq!(recorded, plain);
        assert!(!events.is_empty());
        // Sequential replays record one covering block span.
        let (outcome, events) = simulate_schedule_recorded(1, &[5, 6, 7], Policy::Adaptive);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].end_ns, outcome.total_work_ns);
        let (_, empty) = simulate_schedule_recorded(4, &[], Policy::Adaptive);
        assert!(empty.is_empty());
    }

    #[test]
    fn guided_replay_handles_degenerate_inputs() {
        let empty = simulate_schedule_guided(4, &[], &[], Policy::Adaptive);
        assert_eq!(empty.critical_path_ns(), 0);
        let single = simulate_schedule_guided(8, &[123], &[7], Policy::Adaptive);
        assert_eq!(single.critical_path_ns(), 123);
        assert_eq!(single.steals, 0);
        // All-zero predictions fall back to the uniform split.
        let zero = simulate_schedule_guided(4, &[100; 16], &[0; 16], Policy::Static);
        assert_eq!(zero.critical_path_ns(), 400);
    }
}
