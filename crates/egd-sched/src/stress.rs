//! Forced-steal stress mode.
//!
//! Work stealing only activates when load is imbalanced, so a fast uniform
//! test workload may never steal — leaving the steal path untested. Stress
//! mode makes steals certain: while a [`StressGuard`] is alive, every run
//!
//! * caps the adaptive block size at a few items (many steal
//!   opportunities), and
//! * injects an artificial per-block delay whose length is a hash of the
//!   block's logical start index (strongly skewed load).
//!
//! Determinism tests run identical simulations with and without the guard
//! and across worker counts: the *schedule* changes radically (steal counts
//! become non-zero), the results must not change at all.
//!
//! The flag is a process-wide counter so that worker threads observe it;
//! concurrent runs that did not ask for stress merely get slower, never
//! wrong.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

static ACTIVE_GUARDS: AtomicU32 = AtomicU32::new(0);

/// Maximum adaptive block size while stress mode is active.
pub(crate) const STRESS_MAX_BLOCK: usize = 2;

/// Whether forced-steal stress mode is currently active.
pub fn stress_active() -> bool {
    ACTIVE_GUARDS.load(Ordering::Relaxed) > 0
}

/// Keeps forced-steal stress mode active while alive.
#[derive(Debug)]
pub struct StressGuard(());

impl Drop for StressGuard {
    fn drop(&mut self) {
        ACTIVE_GUARDS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Activates forced-steal stress mode until the returned guard is dropped.
pub fn force_steals() -> StressGuard {
    ACTIVE_GUARDS.fetch_add(1, Ordering::Relaxed);
    StressGuard(())
}

/// The artificial delay charged to a block starting at `start`: 0–7 steps of
/// 30 µs, keyed by a multiplicative hash so neighbouring blocks differ
/// wildly and contiguous initial segments get skewed totals.
pub(crate) fn block_delay(start: usize) -> Duration {
    let hashed = (start as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61;
    Duration::from_micros(hashed * 30)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_scopes_the_flag() {
        // The flag is process-global and other tests may hold guards
        // concurrently, so only assert what this test's own guards
        // guarantee: stress is active while at least one is held.
        let _guard = force_steals();
        assert!(stress_active());
        let _inner = force_steals();
        assert!(stress_active());
        assert!(ACTIVE_GUARDS.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn delays_are_bounded_and_varied() {
        let delays: Vec<Duration> = (0..32).map(block_delay).collect();
        assert!(delays.iter().all(|d| *d <= Duration::from_micros(210)));
        assert!(delays.iter().any(|d| !d.is_zero()));
        let first = delays[0];
        assert!(delays.iter().any(|d| *d != first));
    }
}
