//! Cost-weighted work decomposition.
//!
//! The uniform initial split hands every worker the same *number* of items,
//! which pins skewed workloads on whichever workers draw the expensive
//! contiguous prefix; adaptive stealing then has to move the whole excess at
//! run time. When a per-item cost prediction is available, the scheduler can
//! instead place the initial segment boundaries at **cost quantiles** —
//! every worker starts with (approximately) the same predicted work, and
//! stealing only has to correct the *prediction error*.
//!
//! This module provides that machinery:
//!
//! * [`weighted_ranges`] — the pure partition math: contiguous ranges whose
//!   boundaries sit at the cost quantiles of a weight vector (prefix sums,
//!   integer arithmetic, fully deterministic);
//! * [`WeightedSource`] — a [`WorkSource`] over `0..n` carrying per-item
//!   weights, whose initial segmentation uses [`weighted_ranges`] and whose
//!   back-half steals split at the **cost midpoint** of the victim's
//!   remaining range instead of the item midpoint.
//!
//! Results are unaffected: the deterministic index-ordered reduction does
//! not care where segment boundaries fall. Only the schedule (and therefore
//! steal counts and the critical path) changes.

use crate::source::WorkSource;
use std::ops::Range;
use std::sync::Arc;

/// Prefix sums of a weight vector: `prefix[i]` is the total weight of items
/// `0..i` (length `n + 1`, saturating on overflow).
fn prefix_sums(weights: &[u64]) -> Vec<u64> {
    let mut prefix = Vec::with_capacity(weights.len() + 1);
    let mut total = 0u64;
    prefix.push(0);
    for &w in weights {
        total = total.saturating_add(w);
        prefix.push(total);
    }
    prefix
}

/// Splits `0..weights.len()` into `workers` contiguous ranges whose
/// boundaries sit at the cost quantiles of `weights`: range `k` ends at the
/// first index where the cumulative weight reaches `total * (k + 1) /
/// workers`. Every index is covered exactly once; ranges may be empty when a
/// single item outweighs a full share (the heavy item gets a worker to
/// itself). All-zero weights fall back to the uniform item split.
pub fn weighted_ranges(weights: &[u64], workers: usize) -> Vec<Range<usize>> {
    ranges_from_prefix(&prefix_sums(weights), 0..weights.len(), workers)
}

/// The quantile partition of `range` under prefix sums, shared by
/// [`weighted_ranges`] and [`WeightedSource::split_initial`].
fn ranges_from_prefix(prefix: &[u64], range: Range<usize>, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1);
    let base = prefix[range.start];
    let total = prefix[range.end] - base;
    if total == 0 {
        // No cost information: fall back to the uniform item split (same
        // blocks as the legacy static chunking).
        return uniform_ranges(range, workers);
    }
    let mut cuts = Vec::with_capacity(workers + 1);
    cuts.push(range.start);
    for k in 1..workers {
        // First index whose cumulative weight reaches the k-th quantile.
        // u128 keeps `total * k` exact for ns-scale weights.
        let target = ((total as u128 * k as u128) / workers as u128) as u64;
        let cut = range.start
            + prefix[range.start..=range.end].partition_point(|&p| p - base < target.max(1));
        cuts.push(cut.clamp(*cuts.last().expect("cuts is non-empty"), range.end));
    }
    cuts.push(range.end);
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// The legacy uniform item split of `range` into `ceil(len / workers)`-item
/// contiguous blocks — the single definition the weighted fallback and the
/// virtual-time replay's uniform branch both use, so they can never drift
/// from the live scheduler's default segmentation (pinned by
/// `split_initial_default_is_the_uniform_chunking`).
pub(crate) fn uniform_ranges(range: Range<usize>, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1);
    let n = range.len();
    let chunk = n.div_ceil(workers);
    (0..workers)
        .map(|k| {
            let lo = range.start + (k * chunk).min(n);
            let hi = range.start + ((k + 1) * chunk).min(n);
            lo..hi
        })
        .collect()
}

/// The cost midpoint of `range`: the smallest index `mid` such that the
/// front `range.start..mid` holds at least half the range's total weight,
/// clamped so both halves are non-empty (callers ensure `range.len() >= 2`).
/// Zero-weight ranges fall back to the item midpoint, matching the uniform
/// back-half split.
fn cost_midpoint(prefix: &[u64], range: &Range<usize>) -> usize {
    let base = prefix[range.start];
    let total = prefix[range.end] - base;
    if total == 0 {
        return range.end - range.len() / 2;
    }
    let half = total.div_ceil(2);
    let mid = range.start + prefix[range.start..=range.end].partition_point(|&p| p - base < half);
    mid.clamp(range.start + 1, range.end - 1)
}

/// An index source carrying per-item cost predictions: the items are the
/// logical indices `0..n`, the weights steer segmentation and steals.
#[derive(Debug, Clone)]
pub struct WeightedSource {
    range: Range<usize>,
    /// Shared prefix sums over the *full* index space (length `n + 1`).
    prefix: Arc<[u64]>,
}

impl WeightedSource {
    /// Source over `0..weights.len()` with the given per-item weights.
    pub fn new(weights: &[u64]) -> Self {
        WeightedSource {
            range: 0..weights.len(),
            prefix: prefix_sums(weights).into(),
        }
    }

    /// Total predicted weight of the remaining items.
    pub fn remaining_weight(&self) -> u64 {
        self.prefix[self.range.end] - self.prefix[self.range.start]
    }
}

impl WorkSource for WeightedSource {
    type Item = usize;
    type Block = Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }

    fn split_initial(self, workers: usize) -> Vec<Self> {
        ranges_from_prefix(&self.prefix, self.range, workers)
            .into_iter()
            .map(|range| WeightedSource {
                range,
                prefix: self.prefix.clone(),
            })
            .collect()
    }

    fn take_front(&mut self, count: usize) -> Self {
        let mid = self.range.start + count.min(self.range.len());
        let front = self.range.start..mid;
        self.range.start = mid;
        WeightedSource {
            range: front,
            prefix: self.prefix.clone(),
        }
    }

    fn split_back_half(&mut self) -> Self {
        let mid = cost_midpoint(&self.prefix, &self.range);
        let back = mid..self.range.end;
        self.range.end = mid;
        WeightedSource {
            range: back,
            prefix: self.prefix.clone(),
        }
    }

    fn pop_block(&mut self, max: usize) -> Range<usize> {
        let mid = self.range.start + max.min(self.range.len());
        let block = self.range.start..mid;
        self.range.start = mid;
        block
    }

    fn block_start(block: &Range<usize>) -> usize {
        block.start
    }

    fn block_len(block: &Range<usize>) -> usize {
        block.len()
    }

    fn for_each_in<F: FnMut(usize, usize)>(block: Range<usize>, mut f: F) {
        for i in block {
            f(i, i);
        }
    }
}

/// The steal split of a weighted range in *replay*: how many back items a
/// thief receives from `range`, mirroring [`WeightedSource::split_back_half`]
/// (whole range when it holds a single item).
pub(crate) fn steal_share(prefix: &[u64], range: &Range<usize>) -> usize {
    if range.len() <= 1 {
        return range.len();
    }
    range.end - cost_midpoint(prefix, range)
}

/// Prefix sums for the replay layer (crate-internal re-export).
pub(crate) fn replay_prefix(weights: &[u64]) -> Vec<u64> {
    prefix_sums(weights)
}

/// Initial per-worker ranges for the replay layer.
pub(crate) fn replay_ranges(prefix: &[u64], n: usize, workers: usize) -> Vec<Range<usize>> {
    ranges_from_prefix(prefix, 0..n, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly_once(ranges: &[Range<usize>], n: usize) {
        let mut covered = vec![0u32; n];
        for range in ranges {
            for i in range.clone() {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "coverage {covered:?}");
    }

    #[test]
    fn uniform_weights_reproduce_even_split() {
        let ranges = weighted_ranges(&[5; 12], 4);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..12]);
        covers_exactly_once(&ranges, 12);
    }

    #[test]
    fn skewed_weights_shrink_the_heavy_segment() {
        // First quarter is 16x the rest: worker 0's segment must be much
        // shorter than the uniform 16 items.
        let weights: Vec<u64> = (0..64).map(|i| if i < 16 { 1600 } else { 100 }).collect();
        let ranges = weighted_ranges(&weights, 4);
        covers_exactly_once(&ranges, 64);
        assert!(
            ranges[0].len() <= 6,
            "heavy segment {:?} should hold few items",
            ranges[0]
        );
        let total: u64 = weights.iter().sum();
        for (k, range) in ranges.iter().enumerate() {
            let cost: u64 = weights[range.clone()].iter().sum();
            assert!(
                cost <= total / 4 + 1600,
                "worker {k} overloaded: {cost} of {total}"
            );
        }
    }

    #[test]
    fn pathological_weights_still_cover() {
        // All zero.
        covers_exactly_once(&weighted_ranges(&[0; 7], 3), 7);
        // Single heavy item.
        let mut single = vec![0u64; 9];
        single[0] = 1_000_000;
        let ranges = weighted_ranges(&single, 4);
        covers_exactly_once(&ranges, 9);
        assert_eq!(ranges[0], 0..1, "heavy item gets a worker of its own");
        // More workers than items.
        covers_exactly_once(&weighted_ranges(&[3, 9], 8), 2);
        // Empty input.
        covers_exactly_once(&weighted_ranges(&[], 4), 0);
    }

    #[test]
    fn split_back_half_splits_at_cost_midpoint() {
        let weights = [100, 1, 1, 1, 1, 1];
        let mut source = WeightedSource::new(&weights);
        let back = source.split_back_half();
        // The front item carries ~95% of the cost: the thief receives
        // everything behind it.
        assert_eq!(source.len(), 1);
        assert_eq!(back.len(), 5);
        assert!(source.remaining_weight() >= back.remaining_weight());
    }

    #[test]
    fn zero_weight_split_matches_item_midpoint() {
        let mut source = WeightedSource::new(&[0; 10]);
        let back = source.split_back_half();
        assert_eq!(source.len(), 5);
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn take_front_and_pop_block_track_indices() {
        let mut source = WeightedSource::new(&[1, 2, 3, 4, 5]);
        let front = source.take_front(2);
        assert_eq!(front.remaining_weight(), 3);
        assert_eq!(source.remaining_weight(), 12);
        let block = source.pop_block(2);
        assert_eq!(WeightedSource::block_start(&block), 2);
        assert_eq!(WeightedSource::block_len(&block), 2);
        let mut seen = Vec::new();
        WeightedSource::for_each_in(block, |i, item| seen.push((i, item)));
        assert_eq!(seen, vec![(2, 2), (3, 3)]);
    }

    #[test]
    fn split_initial_respects_cost_quantiles() {
        let weights: Vec<u64> = (0..32).map(|i| if i < 4 { 800 } else { 100 }).collect();
        let segments = WeightedSource::new(&weights).split_initial(4);
        assert_eq!(segments.len(), 4);
        let n: usize = segments.iter().map(WorkSource::len).sum();
        assert_eq!(n, 32);
        let max = segments
            .iter()
            .map(WeightedSource::remaining_weight)
            .max()
            .unwrap();
        let total: u64 = weights.iter().sum();
        assert!(
            max <= total / 4 + 800,
            "cost-guided initial split is balanced (max {max} of {total})"
        );
    }
}
