//! The work-stealing run loop.
//!
//! [`run_source`] executes a [`WorkSource`] over `workers` scoped threads:
//!
//! * the source is pre-split into one contiguous segment per worker, held in
//!   a shared per-worker slot (`Mutex<Option<S>>`),
//! * each worker claims adaptive blocks from the **front** of its own slot —
//!   block size starts at one item and doubles per claimed block up to
//!   `len / (workers * 8)`, so the tail of every segment stays finely
//!   stealable while the steady state is amortised,
//! * a worker whose slot is empty scans the other slots (`try_lock`, never
//!   blocking a victim) and splits the **back half** of the first non-empty
//!   segment it finds into its own slot; a one-item segment is taken whole,
//! * a global unclaimed-items counter provides termination: when it reaches
//!   zero every item has been claimed by someone and thieves exit.
//!
//! Locks are never nested (a thief drops the victim's guard before touching
//! its own slot), so the loop is deadlock-free; claims strictly decrease the
//! unclaimed counter, so it is livelock-free.
//!
//! Results are banked per block as `(logical_start, Vec<R>)` and assembled
//! by sorting on `logical_start` — the fixed-shape, index-keyed reduction
//! that makes output independent of the steal schedule.

use crate::source::{RangeSource, VecSource, WorkSource};
use crate::stats::{clear_last_run, record_last_run, SchedStats, WorkerStats};
use crate::{stress, Policy};
use egd_obs::{SpanKind, SpanTimer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// First adaptive block size (shared with the virtual-time replay).
pub(crate) const INITIAL_BLOCK: usize = 1;
/// Granularity target: at full growth each worker's segment still splits
/// into about this many blocks (shared with the virtual-time replay).
pub(crate) const BLOCKS_PER_WORKER: usize = 8;

struct Shared<S> {
    slots: Vec<Mutex<Option<S>>>,
    unclaimed: AtomicUsize,
}

/// Blocks produced by one worker (tagged with logical starts) plus its
/// counters.
type WorkerOutput<R> = (Vec<(usize, Vec<R>)>, WorkerStats);

/// Runs `f` over every item of `source` on up to `workers` threads and
/// returns the per-block partial results (unordered) plus run statistics.
fn run_source<S, R, F>(workers: usize, mut source: S, f: &F) -> (Vec<(usize, Vec<R>)>, SchedStats)
where
    S: WorkSource,
    R: Send,
    F: Fn(usize, S::Item) -> R + Sync,
{
    let n = source.len();
    let policy = crate::current_policy();
    let started = Instant::now();
    let effective = workers.max(1).min(n.max(1));

    // A panic unwinding through the parallel section must not leave the
    // previous run's snapshot in the caller's thread-local slot.
    clear_last_run();

    if effective <= 1 || n == 0 {
        let span = SpanTimer::start(SpanKind::BlockClaim);
        let busy_start = Instant::now();
        let mut results = Vec::with_capacity(n);
        let block = source.pop_block(usize::MAX);
        let start = S::block_start(&block);
        S::for_each_in(block, |index, item| results.push(f(index, item)));
        let busy_ns = busy_start.elapsed().as_nanos() as u64;
        if let Some(span) = span {
            span.finish(start as u64);
        }
        let stats = SchedStats {
            policy,
            workers: vec![WorkerStats {
                busy_ns,
                items: n as u64,
                blocks: u64::from(n > 0),
                steals: 0,
            }],
            items: n as u64,
            steals: 0,
            elapsed_ns: started.elapsed().as_nanos() as u64,
        };
        return (vec![(start, results)], stats);
    }

    // Initial contiguous segmentation: uniform blocks for plain sources
    // (identical to the legacy static chunking, so `Policy::Static`
    // reproduces the old backend exactly), cost quantiles for weighted ones.
    let mut slots = Vec::with_capacity(effective);
    for segment in source.split_initial(effective) {
        slots.push(Mutex::new((!segment.is_empty()).then_some(segment)));
    }
    debug_assert_eq!(slots.len(), effective, "one initial segment per worker");
    let shared = Shared {
        slots,
        unclaimed: AtomicUsize::new(n),
    };

    let max_block = if stress::stress_active() {
        stress::STRESS_MAX_BLOCK
    } else {
        (n / (effective * BLOCKS_PER_WORKER)).max(1)
    };

    let shared_ref = &shared;
    let per_worker: Vec<WorkerOutput<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..effective)
            .map(|id| {
                scope.spawn(move || {
                    let out = worker_loop(id, shared_ref, f, policy, max_block);
                    // Flush spans before the scope join unblocks: thread-local
                    // destructors may run after it, racing egd_obs::collect().
                    egd_obs::flush_thread();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("egd-sched worker panicked"))
            .collect()
    });

    let mut blocks = Vec::new();
    let mut worker_stats = Vec::with_capacity(effective);
    let mut steals = 0u64;
    for (worker_blocks, stats) in per_worker {
        blocks.extend(worker_blocks);
        steals += stats.steals;
        worker_stats.push(stats);
    }
    let stats = SchedStats {
        policy,
        workers: worker_stats,
        items: n as u64,
        steals,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    };
    (blocks, stats)
}

fn worker_loop<S, R, F>(
    me: usize,
    shared: &Shared<S>,
    f: &F,
    policy: Policy,
    max_block: usize,
) -> WorkerOutput<R>
where
    S: WorkSource,
    R: Send,
    F: Fn(usize, S::Item) -> R + Sync,
{
    let mut out = Vec::new();
    let mut stats = WorkerStats::default();
    let mut size = match policy {
        Policy::Static => usize::MAX,
        Policy::Adaptive => INITIAL_BLOCK,
    };
    let stressed = stress::stress_active();
    // Worker threads are per-run and scoped, so the track assignment cannot
    // leak into an unrelated thread's later spans.
    if egd_obs::tracing_enabled() {
        egd_obs::set_track(me as u32);
    }

    loop {
        // Claim a block from the front of our own slot; the remainder stays
        // in the slot where thieves can reach it.
        let block = {
            let mut guard = shared.slots[me].lock().expect("slot poisoned");
            guard.take().map(|mut src| {
                let block = src.pop_block(size);
                if !src.is_empty() {
                    *guard = Some(src);
                }
                block
            })
        };

        match block {
            Some(block) => {
                let len = S::block_len(&block);
                let start = S::block_start(&block);
                shared.unclaimed.fetch_sub(len, Ordering::AcqRel);
                if stressed {
                    std::thread::sleep(stress::block_delay(start));
                }
                let span = SpanTimer::start(SpanKind::BlockClaim);
                let busy_start = Instant::now();
                let mut results = Vec::with_capacity(len);
                S::for_each_in(block, |index, item| {
                    results.push(f(index, item));
                });
                stats.busy_ns += busy_start.elapsed().as_nanos() as u64;
                if let Some(span) = span {
                    span.finish(start as u64);
                }
                stats.items += len as u64;
                stats.blocks += 1;
                out.push((start, results));
                if policy == Policy::Adaptive {
                    size = size.saturating_mul(2).min(max_block);
                }
            }
            None => {
                if policy == Policy::Static {
                    break;
                }
                size = INITIAL_BLOCK;
                let span = SpanTimer::start(SpanKind::Steal);
                if let Some(victim) = try_steal(me, shared) {
                    stats.steals += 1;
                    if let Some(span) = span {
                        span.finish(victim as u64);
                    }
                } else if shared.unclaimed.load(Ordering::Acquire) == 0 {
                    break;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    (out, stats)
}

/// Attempts to steal work for `me`: splits the back half of the first
/// non-empty victim segment (taking one-item segments whole). The victim's
/// guard is dropped before `me`'s slot is locked, so locks never nest.
/// Returns the victim's id on success.
fn try_steal<S: WorkSource>(me: usize, shared: &Shared<S>) -> Option<usize> {
    let num_workers = shared.slots.len();
    for offset in 1..num_workers {
        let victim = (me + offset) % num_workers;
        let stolen = {
            match shared.slots[victim].try_lock() {
                Ok(mut guard) => match guard.as_mut() {
                    Some(src) if src.len() >= 2 => Some(src.split_back_half()),
                    Some(_) => guard.take(),
                    None => None,
                },
                Err(_) => None,
            }
        };
        if let Some(source) = stolen {
            *shared.slots[me].lock().expect("slot poisoned") = Some(source);
            return Some(victim);
        }
    }
    None
}

/// Assembles per-block partial results into index order.
fn assemble<R>(mut blocks: Vec<(usize, Vec<R>)>, n: usize) -> Vec<R> {
    let num_blocks = blocks.len() as u64;
    egd_obs::obs_span!(SpanKind::Reduce, num_blocks, {
        blocks.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, results) in blocks {
            out.extend(results);
        }
        debug_assert_eq!(out.len(), n);
        out
    })
}

/// Maps `f` over `0..n` on up to `workers` threads with work stealing,
/// returning results in index order. Statistics of the run are retrievable
/// afterwards via [`crate::take_last_run_stats`] on the calling thread.
pub fn map_indexed<R, F>(workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let (blocks, stats) = run_source(workers, RangeSource::new(n), &|_, index| f(index));
    record_last_run(stats);
    assemble(blocks, n)
}

/// Maps `f` over `0..weights.len()` on up to `workers` threads, seeding the
/// initial per-worker segments at the **cost quantiles** of `weights` (the
/// predicted per-item costs) and splitting steals at the victim's cost
/// midpoint. Results are returned in index order — identical to
/// [`map_indexed`], only the schedule differs. Statistics of the run are
/// retrievable afterwards via [`crate::take_last_run_stats`] on the calling
/// thread.
pub fn map_indexed_weighted<R, F>(workers: usize, weights: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = weights.len();
    let (blocks, stats) = run_source(
        workers,
        crate::weighted::WeightedSource::new(weights),
        &|_, index| f(index),
    );
    record_last_run(stats);
    assemble(blocks, n)
}

/// Maps `f` over owned `items` on up to `workers` threads with work
/// stealing, returning results in input order. Statistics of the run are
/// retrievable afterwards via [`crate::take_last_run_stats`] on the calling
/// thread.
pub fn map_collect<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let (blocks, stats) = run_source(workers, VecSource::new(items), &|_, item| f(item));
    record_last_run(stats);
    assemble(blocks, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{force_steals, take_last_run_stats, with_policy};

    #[test]
    fn map_indexed_matches_sequential_for_any_worker_count() {
        let expected: Vec<u64> = (0..1000).map(|i| (i as u64) * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 8, 17] {
            let got = map_indexed(workers, 1000, |i| (i as u64) * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn map_collect_preserves_input_order() {
        let items: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let expected: Vec<String> = items.iter().map(|s| s.to_uppercase()).collect();
        for workers in [1, 2, 4, 5] {
            let got = map_collect(workers, items.clone(), |s| s.to_uppercase());
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = map_indexed(4, 0, |i| i as u32);
        assert!(empty.is_empty());
        assert_eq!(map_indexed(4, 1, |i| i), vec![0]);
        assert_eq!(map_collect(8, vec![42], |x: i32| x * 2), vec![84]);
    }

    #[test]
    fn static_policy_never_steals_and_matches() {
        let expected: Vec<usize> = (0..500).map(|i| i * i).collect();
        let got = with_policy(Policy::Static, || map_indexed(4, 500, |i| i * i));
        assert_eq!(got, expected);
        let stats = take_last_run_stats().unwrap();
        assert_eq!(stats.policy, Policy::Static);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.items, 500);
    }

    #[test]
    fn skewed_work_is_rebalanced_by_stealing() {
        // The first quarter of the index space is ~50x more expensive than
        // the rest: static chunking pins it all on worker 0.
        let cost = |i: usize| if i < 64 { 40_000u64 } else { 800 };
        let work = move |i: usize| {
            let mut acc = 0u64;
            for k in 0..cost(i) {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            acc
        };
        let expected: Vec<u64> = (0..256).map(work).collect();
        let got = map_indexed(4, 256, work);
        assert_eq!(got, expected);
        let stats = take_last_run_stats().unwrap();
        assert_eq!(stats.items, 256);
        assert!(
            stats.steals > 0,
            "skewed load at 4 workers should trigger steals, stats: {stats:?}"
        );
    }

    #[test]
    fn forced_steal_stress_changes_schedule_not_results() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let reference: Vec<u64> = (0..200).map(work).collect();

        let relaxed = map_indexed(4, 200, work);
        assert_eq!(relaxed, reference);

        let stressed = {
            let _guard = force_steals();
            map_indexed(4, 200, work)
        };
        assert_eq!(stressed, reference);
        let stats = take_last_run_stats().unwrap();
        assert!(
            stats.steals > 0,
            "stress mode must force steals, stats: {stats:?}"
        );
    }

    #[test]
    fn stats_account_for_every_item() {
        map_indexed(4, 1024, |i| i);
        let stats = take_last_run_stats().unwrap();
        assert_eq!(stats.items, 1024);
        let processed: u64 = stats.workers.iter().map(|w| w.items).sum();
        assert_eq!(processed, 1024);
        assert!(stats.workers.len() <= 4);
        assert!(stats.elapsed_ns > 0);
    }

    #[test]
    fn more_workers_than_items_is_safe() {
        let got = map_indexed(64, 5, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        let stats = take_last_run_stats().unwrap();
        assert!(stats.num_workers() <= 5);
    }

    #[test]
    fn weighted_map_matches_plain_map() {
        let weights: Vec<u64> = (0..300)
            .map(|i| if i < 75 { 10_000 } else { 100 })
            .collect();
        let expected: Vec<u64> = (0..300).map(|i| (i as u64).wrapping_mul(31)).collect();
        for workers in [1, 2, 4, 8, 13] {
            let got = map_indexed_weighted(workers, &weights, |i| (i as u64).wrapping_mul(31));
            assert_eq!(got, expected, "workers = {workers}");
            let stats = take_last_run_stats().unwrap();
            assert_eq!(stats.items, 300, "workers = {workers}");
        }
    }

    #[test]
    fn weighted_map_edge_cases() {
        let empty: Vec<u32> = map_indexed_weighted(4, &[], |i| i as u32);
        assert!(empty.is_empty());
        assert_eq!(map_indexed_weighted(8, &[42], |i| i), vec![0]);
        // More workers than items, pathological weights.
        assert_eq!(
            map_indexed_weighted(16, &[0, 1_000_000, 0], |i| i * 2),
            vec![0, 2, 4]
        );
        let all_zero = map_indexed_weighted(4, &[0; 9], |i| i);
        assert_eq!(all_zero, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_forced_steals_change_schedule_not_results() {
        // Unlike the uniform split, the cost-quantile split starts balanced,
        // so even stress mode cannot *guarantee* a steal in any single run
        // (all thieves may find every remaining item already in flight).
        // Retry a bounded number of independent runs: results must be
        // identical every time, and at least one run must actually steal.
        let weights: Vec<u64> = (0..160).map(|i| (i as u64 % 7) * 1_000 + 1).collect();
        let reference: Vec<u64> = (0..160).map(|i| (i as u64) * 13 + 5).collect();
        let _guard = force_steals();
        let mut saw_steals = false;
        for round in 0..20 {
            let stressed = map_indexed_weighted(4, &weights, |i| (i as u64) * 13 + 5);
            assert_eq!(stressed, reference, "round {round}");
            if take_last_run_stats().unwrap().steals > 0 {
                saw_steals = true;
                break;
            }
        }
        assert!(saw_steals, "no run out of 20 stole under stress mode");
    }

    #[test]
    fn panic_clears_stale_last_run_stats() {
        // A successful run banks its stats in the thread-local slot…
        map_indexed(2, 64, |i| i);
        assert!(crate::last_run_stats().is_some());
        // …but a panic unwinding through the next parallel section must not
        // leave that stale snapshot behind for a later reader.
        let unwound = std::panic::catch_unwind(|| {
            map_indexed(2, 64, |i| {
                if i == 33 {
                    panic!("parallel section panicked");
                }
                i
            })
        });
        assert!(unwound.is_err());
        assert!(
            take_last_run_stats().is_none(),
            "stale stats survived a panicking parallel section"
        );
    }

    #[test]
    fn block_and_steal_spans_cover_every_item() {
        let _session = egd_obs::session_guard();
        egd_obs::enable_tracing();
        let _guard = force_steals();
        let got = map_indexed(4, 200, |i| i as u64 + 1);
        egd_obs::disable_tracing();
        let log = egd_obs::collect();
        assert_eq!(got.len(), 200);
        let stats = take_last_run_stats().unwrap();
        let blocks: Vec<_> = log
            .events
            .iter()
            .filter(|e| e.kind == egd_obs::SpanKind::BlockClaim)
            .collect();
        let steals = log
            .events
            .iter()
            .filter(|e| e.kind == egd_obs::SpanKind::Steal)
            .count() as u64;
        let reduces = log
            .events
            .iter()
            .filter(|e| e.kind == egd_obs::SpanKind::Reduce)
            .count();
        let claimed: u64 = stats.workers.iter().map(|w| w.blocks).sum();
        assert_eq!(blocks.len() as u64, claimed, "one span per claimed block");
        assert_eq!(steals, stats.steals, "one span per successful steal");
        assert_eq!(reduces, 1, "one reduction span per run");
        assert!(blocks.iter().all(|e| e.end_ns >= e.start_ns));
    }

    #[test]
    fn steal_at_exhaustion_races_stay_correct() {
        // Tiny inputs under forced steals: thieves race the victims for the
        // last items while the source exhausts. Repeat to shake out races;
        // results must stay index-ordered and complete every time.
        let _guard = force_steals();
        for round in 0..25u64 {
            for n in [1usize, 2, 3, 5] {
                let expected: Vec<u64> = (0..n as u64).map(|i| i ^ round).collect();
                let plain = map_indexed(4, n, |i| i as u64 ^ round);
                assert_eq!(plain, expected, "plain n = {n} round {round}");
                let weights = vec![1u64; n];
                let weighted = map_indexed_weighted(4, &weights, |i| i as u64 ^ round);
                assert_eq!(weighted, expected, "weighted n = {n} round {round}");
                let collected = map_collect(4, expected.clone(), |x| x);
                assert_eq!(collected, expected, "collect n = {n} round {round}");
            }
        }
    }
}
