//! Splittable work sources.
//!
//! A [`WorkSource`] is a contiguous run of logically-indexed work items that
//! supports the three operations the scheduler needs:
//!
//! * `take_front` — carve off the first `count` items (initial per-worker
//!   segmentation),
//! * `pop_block` — claim up to `max` items from the front for processing
//!   (the victim's side of the adaptive split), and
//! * `split_back_half` — give away the back half to a thief.
//!
//! Two implementations cover the workspace's needs: [`RangeSource`] for
//! index-only workloads (no materialised items) and [`VecSource`] for owned
//! item sequences (the vendored rayon's materialised pipelines). Both track
//! the **logical start index** of their remaining items, which is what keys
//! the deterministic reduction.

use std::collections::VecDeque;
use std::ops::Range;

/// A splittable, contiguous source of logically-indexed work items.
pub trait WorkSource: Send + Sized {
    /// The item type handed to the worker function.
    type Item: Send;
    /// An owned block of consecutive items popped from the front.
    type Block: Send;

    /// Number of items remaining.
    fn len(&self) -> usize;

    /// Whether the source is exhausted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes the first `count.min(len)` items and returns them as a new
    /// source; `self` keeps the rest.
    fn take_front(&mut self, count: usize) -> Self;

    /// Carves the source into the initial per-worker segments, in worker
    /// order. The default splits uniformly by item count into
    /// `ceil(len / workers)`-item blocks — byte-identical to the legacy
    /// static chunking. Cost-aware sources override this to place the
    /// boundaries at cost quantiles instead ([`crate::WeightedSource`]).
    fn split_initial(mut self, workers: usize) -> Vec<Self> {
        let chunk = self.len().div_ceil(workers.max(1));
        (0..workers.max(1))
            .map(|_| self.take_front(chunk))
            .collect()
    }

    /// Gives away the back `len/2` items as a new source (the thief's share);
    /// `self` keeps the front. Callers must ensure `len() >= 2`.
    fn split_back_half(&mut self) -> Self;

    /// Claims up to `max` items from the front as an owned block.
    fn pop_block(&mut self, max: usize) -> Self::Block;

    /// The logical index of a block's first item.
    fn block_start(block: &Self::Block) -> usize;

    /// Number of items in a block.
    fn block_len(block: &Self::Block) -> usize;

    /// Consumes a block, calling `f(logical_index, item)` for every item in
    /// ascending index order.
    fn for_each_in<F: FnMut(usize, Self::Item)>(block: Self::Block, f: F);
}

/// An index-only source: the items *are* the logical indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeSource {
    range: Range<usize>,
}

impl RangeSource {
    /// Source over `0..n`.
    pub fn new(n: usize) -> Self {
        RangeSource { range: 0..n }
    }
}

impl WorkSource for RangeSource {
    type Item = usize;
    type Block = Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }

    fn take_front(&mut self, count: usize) -> Self {
        let mid = self.range.start + count.min(self.range.len());
        let front = self.range.start..mid;
        self.range.start = mid;
        RangeSource { range: front }
    }

    fn split_back_half(&mut self) -> Self {
        let give = self.range.len() / 2;
        let mid = self.range.end - give;
        let back = mid..self.range.end;
        self.range.end = mid;
        RangeSource { range: back }
    }

    fn pop_block(&mut self, max: usize) -> Range<usize> {
        let mid = self.range.start + max.min(self.range.len());
        let block = self.range.start..mid;
        self.range.start = mid;
        block
    }

    fn block_start(block: &Range<usize>) -> usize {
        block.start
    }

    fn block_len(block: &Range<usize>) -> usize {
        block.len()
    }

    fn for_each_in<F: FnMut(usize, usize)>(block: Range<usize>, mut f: F) {
        for i in block {
            f(i, i);
        }
    }
}

/// A source over owned items, tracking the logical index of its front.
#[derive(Debug)]
pub struct VecSource<T> {
    start: usize,
    items: VecDeque<T>,
}

impl<T> VecSource<T> {
    /// Source over `items`, logically indexed from zero.
    pub fn new(items: Vec<T>) -> Self {
        VecSource {
            start: 0,
            items: items.into(),
        }
    }
}

impl<T: Send> WorkSource for VecSource<T> {
    type Item = T;
    type Block = (usize, VecDeque<T>);

    fn len(&self) -> usize {
        self.items.len()
    }

    fn take_front(&mut self, count: usize) -> Self {
        let count = count.min(self.items.len());
        let tail = self.items.split_off(count);
        let front = std::mem::replace(&mut self.items, tail);
        let source = VecSource {
            start: self.start,
            items: front,
        };
        self.start += count;
        source
    }

    fn split_back_half(&mut self) -> Self {
        let keep = self.items.len() - self.items.len() / 2;
        let tail = self.items.split_off(keep);
        VecSource {
            start: self.start + keep,
            items: tail,
        }
    }

    fn pop_block(&mut self, max: usize) -> (usize, VecDeque<T>) {
        let taken = self.take_front(max);
        (taken.start, taken.items)
    }

    fn block_start(block: &(usize, VecDeque<T>)) -> usize {
        block.0
    }

    fn block_len(block: &(usize, VecDeque<T>)) -> usize {
        block.1.len()
    }

    fn for_each_in<F: FnMut(usize, T)>(block: (usize, VecDeque<T>), mut f: F) {
        let (start, items) = block;
        for (offset, item) in items.into_iter().enumerate() {
            f(start + offset, item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_take_front_and_split() {
        let mut source = RangeSource::new(10);
        let front = source.take_front(3);
        assert_eq!(front.range, 0..3);
        assert_eq!(source.range, 3..10);
        let back = source.split_back_half();
        assert_eq!(source.range, 3..7);
        assert_eq!(back.range, 7..10);
    }

    #[test]
    fn range_pop_block_advances_front() {
        let mut source = RangeSource::new(5);
        let block = source.pop_block(2);
        assert_eq!(RangeSource::block_start(&block), 0);
        assert_eq!(RangeSource::block_len(&block), 2);
        let block = source.pop_block(100);
        assert_eq!(block, 2..5);
        assert!(source.is_empty());
    }

    #[test]
    fn vec_source_preserves_logical_indices() {
        let mut source = VecSource::new(vec!['a', 'b', 'c', 'd', 'e']);
        let stolen = source.split_back_half();
        assert_eq!(source.len(), 3);
        assert_eq!(stolen.len(), 2);

        let mut seen = Vec::new();
        let block = {
            let mut s = stolen;
            s.pop_block(10)
        };
        VecSource::for_each_in(block, |i, item| seen.push((i, item)));
        assert_eq!(seen, vec![(3, 'd'), (4, 'e')]);
    }

    #[test]
    fn vec_take_front_keeps_order() {
        let mut source = VecSource::new((0..8).collect());
        let first = source.take_front(5);
        let (start, items) = {
            let mut f = first;
            f.pop_block(usize::MAX)
        };
        assert_eq!(start, 0);
        assert_eq!(items.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        let (start, items) = source.pop_block(usize::MAX);
        assert_eq!(start, 5);
        assert_eq!(items.into_iter().collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn zero_length_sources_are_inert() {
        let mut range = RangeSource::new(0);
        assert!(range.is_empty());
        assert!(range.take_front(3).is_empty());
        let block = range.pop_block(8);
        assert_eq!(RangeSource::block_len(&block), 0);

        let mut vec: VecSource<u8> = VecSource::new(vec![]);
        assert!(vec.is_empty());
        assert!(vec.take_front(1).is_empty());
        let (start, items) = vec.pop_block(4);
        assert_eq!(start, 0);
        assert!(items.is_empty());
    }

    #[test]
    fn one_item_sources_hand_out_the_single_item() {
        let mut range = RangeSource::new(1);
        let block = range.pop_block(usize::MAX);
        assert_eq!(block, 0..1);
        assert!(range.is_empty());

        let mut vec = VecSource::new(vec!['x']);
        let front = vec.take_front(5);
        assert_eq!(front.len(), 1);
        assert!(vec.is_empty());
        let mut seen = Vec::new();
        let block = {
            let mut f = front;
            f.pop_block(usize::MAX)
        };
        VecSource::for_each_in(block, |i, item| seen.push((i, item)));
        assert_eq!(seen, vec![(0, 'x')]);
    }

    #[test]
    fn split_initial_default_is_the_uniform_chunking() {
        for (n, workers) in [(10usize, 4usize), (5, 8), (1, 3), (0, 2), (16, 4)] {
            let segments = RangeSource::new(n).split_initial(workers);
            assert_eq!(segments.len(), workers, "{n} items over {workers}");
            let chunk = n.div_ceil(workers);
            let mut covered = Vec::new();
            for (k, segment) in segments.iter().enumerate() {
                assert_eq!(
                    segment.range,
                    (k * chunk).min(n)..((k + 1) * chunk).min(n),
                    "{n} items over {workers}, worker {k}"
                );
                covered.extend(segment.range.clone());
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn split_halves_cover_everything() {
        for n in 2..40 {
            let mut source = RangeSource::new(n);
            let back = source.split_back_half();
            assert_eq!(source.len() + back.len(), n);
            assert!(source.len() >= back.len());
            assert!(!source.is_empty());
            assert!(!back.is_empty());
        }
    }
}
