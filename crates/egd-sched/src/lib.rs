//! # egd-sched
//!
//! An adaptive work-stealing scheduler with **deterministic index-ordered
//! reduction** — the execution backend behind the workspace's data-parallel
//! layers (the vendored rayon's `par_iter` entry points, `egd-parallel`'s
//! generation engine, and `egd-cluster`'s scheduled executor).
//!
//! ## Why it exists
//!
//! The previous backend split every parallel workload into one contiguous
//! chunk per worker. That is perfectly deterministic but badly load-imbalanced
//! for skewed work — heterogeneous memory depths, mixed-strategy populations
//! whose games cannot be cached, cluster-cost evaluation — because the worker
//! that draws the expensive chunk becomes the critical path (exactly the
//! load-imbalance collapse the source paper's Table VI reports when SSets per
//! processor drops below one).
//!
//! ## Execution model (rayon-adaptive style)
//!
//! * Work is a logical index range `0..n` over items. It is pre-split into
//!   one contiguous **segment per worker** held in a per-worker slot —
//!   uniform item blocks by default, or segments bounded at the **cost
//!   quantiles** of predicted per-item weights when the cost-guided
//!   partition is active ([`map_indexed_weighted`] / [`WeightedSource`]),
//!   so stealing only has to correct the prediction error rather than the
//!   whole skew.
//! * Each worker repeatedly claims an **adaptive block** from the *front* of
//!   its own segment (block size starts small and doubles up to a cap, so
//!   sequential throughput is amortised while steal granularity stays fine),
//!   processes it, and banks the results keyed by the block's logical start
//!   index.
//! * An idle worker becomes a **thief**: it scans the other workers' slots
//!   and splits the *back half* of the largest-remaining segment into its own
//!   slot. Victims keep working undisturbed on their front halves.
//! * [`Policy::Static`] disables stealing and claims each segment as a single
//!   block — byte-for-byte the old one-chunk-per-worker backend, kept for
//!   A/B load-balance measurements.
//!
//! ## Determinism contract
//!
//! Execution order is nondeterministic (depends on the steal schedule), but
//! **results are not**: every block's partial output is tagged with its
//! logical start index, and the final reduction concatenates and folds the
//! partials **in logical index order** — a fixed-shape reduction keyed by
//! range, never by worker. The same inputs therefore produce byte-identical
//! outputs for any worker count and any steal schedule, which the
//! `determinism_golden` suite (including a forced-steal stress variant)
//! enforces.
//!
//! ## Instrumentation
//!
//! Every run records [`SchedStats`]: steal counts, per-worker processed
//! items, and per-worker busy time (exact per-block wall spans).
//! [`SchedStats::critical_path_ns`] — the busiest worker's busy time — is
//! the wall-clock an unloaded machine with `workers` cores would see. On a
//! host with fewer cores than workers, wall spans conflate time-sharing, so
//! the [`simulate`] module additionally replays the exact scheduling
//! algorithm in *virtual time* over measured per-item costs — the
//! deterministic load-balance metric the benchmark baseline tracks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheduler;
pub mod simulate;
pub mod source;
pub mod stats;
pub mod stress;
pub mod weighted;

pub use scheduler::{map_collect, map_indexed, map_indexed_weighted};
pub use simulate::{
    simulate_schedule, simulate_schedule_guided, simulate_schedule_guided_recorded,
    simulate_schedule_recorded, SimOutcome,
};
pub use stats::{last_run_stats, max_over_mean, take_last_run_stats, SchedStats, WorkerStats};
pub use stress::{force_steals, StressGuard};
pub use weighted::{weighted_ranges, WeightedSource};

use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// How a parallel run distributes work across its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Policy {
    /// One contiguous chunk per worker, no stealing — the legacy backend,
    /// kept for load-balance A/B measurements.
    Static,
    /// Adaptive work stealing: per-worker segments, adaptive block growth,
    /// idle workers split the back half of busy workers' remaining ranges.
    #[default]
    Adaptive,
}

thread_local! {
    /// Policy override installed by [`with_policy`] on this thread.
    static CURRENT_POLICY: Cell<Option<Policy>> = const { Cell::new(None) };
}

/// The policy parallel runs started from this thread will use.
pub fn current_policy() -> Policy {
    CURRENT_POLICY.with(|c| c.get()).unwrap_or_default()
}

/// Runs `op` with `policy` active for parallel runs started from this thread,
/// restoring the previous policy afterwards (also on panic).
pub fn with_policy<R>(policy: Policy, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<Policy>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_POLICY.with(|c| c.set(self.0));
        }
    }
    let previous = CURRENT_POLICY.with(|c| c.get());
    let _restore = Restore(previous);
    CURRENT_POLICY.with(|c| c.set(Some(policy)));
    op()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_adaptive() {
        assert_eq!(current_policy(), Policy::Adaptive);
        assert_eq!(Policy::default(), Policy::Adaptive);
    }

    #[test]
    fn with_policy_scopes_and_restores() {
        assert_eq!(current_policy(), Policy::Adaptive);
        with_policy(Policy::Static, || {
            assert_eq!(current_policy(), Policy::Static);
            with_policy(Policy::Adaptive, || {
                assert_eq!(current_policy(), Policy::Adaptive);
            });
            assert_eq!(current_policy(), Policy::Static);
        });
        assert_eq!(current_policy(), Policy::Adaptive);
    }
}
