//! Scheduler instrumentation.
//!
//! Every parallel run produces a [`SchedStats`]: per-worker busy time,
//! items processed, and steal counts. The caller-thread-local "last run"
//! slot lets layers that cannot thread a return value through (the vendored
//! rayon's `ParallelIterator` pipeline) still surface the numbers: the
//! engine reads [`take_last_run_stats`] right after the parallel section.
//!
//! `busy_ns` sums exact per-block wall spans, so it equals the worker's
//! consumed CPU time whenever workers do not exceed physical cores. On an
//! oversubscribed host (more workers than cores) spans additionally count
//! time-sharing delays, so cross-policy *wall* comparisons there are not
//! meaningful — use [`crate::simulate`] to replay the schedule in virtual
//! time from measured per-item costs instead (per-thread OS CPU clocks are
//! no alternative: `/proc/thread-self/schedstat` only updates on scheduler
//! events and loses the un-preempted tail of millisecond-lived workers).

use crate::Policy;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Busiest-over-mean of a set of per-worker totals (1.0 = perfectly
/// balanced; an empty or all-zero set reads as balanced). This is the
/// workspace's single imbalance definition — [`SchedStats::imbalance`],
/// [`crate::SimOutcome::imbalance`] and the cost layer's skew helpers all
/// reduce to it.
pub fn max_over_mean<I: IntoIterator<Item = u64>>(totals: I) -> f64 {
    let mut max = 0u64;
    let mut sum = 0u128;
    let mut count = 0u64;
    for total in totals {
        max = max.max(total);
        sum += total as u128;
        count += 1;
    }
    if count == 0 || sum == 0 {
        return 1.0;
    }
    max as f64 / (sum as f64 / count as f64)
}

/// Per-worker counters for one parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Wall-clock time spent inside block processing (nanoseconds).
    pub busy_ns: u64,
    /// Items processed.
    pub items: u64,
    /// Blocks claimed.
    pub blocks: u64,
    /// Successful steals performed by this worker.
    pub steals: u64,
}

impl WorkerStats {
    /// Adds another sample into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.busy_ns += other.busy_ns;
        self.items += other.items;
        self.blocks += other.blocks;
        self.steals += other.steals;
    }
}

/// Aggregated statistics of one or more parallel runs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SchedStats {
    /// The policy the run executed under.
    pub policy: Policy,
    /// Per-worker counters, indexed by worker id. Merging runs with
    /// different worker counts extends the table.
    pub workers: Vec<WorkerStats>,
    /// Total items processed.
    pub items: u64,
    /// Total successful steals.
    pub steals: u64,
    /// Wall-clock time of the whole run(s), nanoseconds.
    pub elapsed_ns: u64,
}

impl SchedStats {
    /// Number of workers that participated.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The busiest worker's accumulated busy time — the wall-clock an
    /// unloaded machine with as many cores as workers would need for the
    /// parallel section (exact when workers do not exceed physical cores).
    pub fn critical_path_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0)
    }

    /// Mean per-worker busy time (nanoseconds).
    pub fn mean_worker_ns(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let total: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        total as f64 / self.workers.len() as f64
    }

    /// Load imbalance: busiest worker over mean worker time
    /// (1.0 = perfectly balanced, `num_workers` = one worker did everything).
    pub fn imbalance(&self) -> f64 {
        max_over_mean(self.workers.iter().map(|w| w.busy_ns))
    }

    /// The worker table as metrics-registry rows (keyed by worker id), for
    /// assembling an `egd_obs::MetricsSnapshot`.
    pub fn worker_metrics(&self) -> Vec<egd_obs::WorkerMetrics> {
        self.workers
            .iter()
            .enumerate()
            .map(|(id, w)| egd_obs::WorkerMetrics {
                worker: id as u64,
                busy_ns: w.busy_ns,
                items: w.items,
                blocks: w.blocks,
                steals: w.steals,
            })
            .collect()
    }

    /// Merges another run's statistics into this one (worker tables merge
    /// index-wise, so repeated runs accumulate per logical worker).
    pub fn merge(&mut self, other: &SchedStats) {
        if other.workers.len() > self.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerStats::default());
        }
        for (mine, theirs) in self.workers.iter_mut().zip(&other.workers) {
            mine.merge(theirs);
        }
        self.items += other.items;
        self.steals += other.steals;
        self.elapsed_ns += other.elapsed_ns;
        self.policy = other.policy;
    }
}

thread_local! {
    /// Statistics of the most recent top-level run started from this thread.
    static LAST_RUN: RefCell<Option<SchedStats>> = const { RefCell::new(None) };
}

/// Records `stats` as this thread's most recent run.
pub(crate) fn record_last_run(stats: SchedStats) {
    LAST_RUN.with(|slot| *slot.borrow_mut() = Some(stats));
}

/// Clears the slot. Called on *entry* to every parallel section so that a
/// panic unwinding through the section cannot leave the previous run's
/// snapshot behind for a later [`take_last_run_stats`] reader.
pub(crate) fn clear_last_run() {
    LAST_RUN.with(|slot| *slot.borrow_mut() = None);
}

/// Statistics of the most recent parallel run started from this thread.
pub fn last_run_stats() -> Option<SchedStats> {
    LAST_RUN.with(|slot| slot.borrow().clone())
}

/// Takes (and clears) the most recent run's statistics.
pub fn take_last_run_stats() -> Option<SchedStats> {
    LAST_RUN.with(|slot| slot.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_is_busiest_worker() {
        let stats = SchedStats {
            workers: vec![
                WorkerStats {
                    busy_ns: 500,
                    ..Default::default()
                },
                WorkerStats {
                    busy_ns: 900,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.critical_path_ns(), 900);
        assert_eq!(stats.mean_worker_ns(), 700.0);
        assert!((stats.imbalance() - 900.0 / 700.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_per_worker() {
        let mut a = SchedStats {
            workers: vec![WorkerStats {
                items: 5,
                busy_ns: 10,
                ..Default::default()
            }],
            items: 5,
            steals: 1,
            elapsed_ns: 100,
            ..Default::default()
        };
        let b = SchedStats {
            workers: vec![
                WorkerStats {
                    items: 3,
                    busy_ns: 20,
                    ..Default::default()
                },
                WorkerStats {
                    items: 2,
                    busy_ns: 30,
                    ..Default::default()
                },
            ],
            items: 5,
            steals: 2,
            elapsed_ns: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.num_workers(), 2);
        assert_eq!(a.workers[0].items, 8);
        assert_eq!(a.workers[0].busy_ns, 30);
        assert_eq!(a.workers[1].items, 2);
        assert_eq!(a.items, 10);
        assert_eq!(a.steals, 3);
        assert_eq!(a.elapsed_ns, 150);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = SchedStats::default();
        assert_eq!(stats.critical_path_ns(), 0);
        assert_eq!(stats.imbalance(), 1.0);
        assert_eq!(stats.mean_worker_ns(), 0.0);
    }

    #[test]
    fn last_run_slot_takes_and_clears() {
        record_last_run(SchedStats {
            items: 7,
            ..Default::default()
        });
        assert_eq!(last_run_stats().unwrap().items, 7);
        assert_eq!(take_last_run_stats().unwrap().items, 7);
        assert!(take_last_run_stats().is_none());
    }
}
