//! Convenience re-exports of the most commonly used types.
//!
//! ```
//! use egd_core::prelude::*;
//! let tft = NamedStrategy::TitForTat.to_pure();
//! assert_eq!(tft.memory(), MemoryDepth::ONE);
//! ```

pub use crate::action::Move;
pub use crate::agent::{Agent, AgentId};
pub use crate::config::{SimulationConfig, SimulationConfigBuilder};
pub use crate::dynamics::{
    fermi_probability, GenerationDecision, Mutation, MutationEvent, NatureAgent,
    PairwiseComparison, PcEvent, SelectionIntensity,
};
pub use crate::error::{EgdError, EgdResult};
pub use crate::game::{
    CompiledStrategy, GameOutcome, GameStats, IpdGame, MarkovGame, MatchMode, Tournament,
    TournamentResult,
};
pub use crate::metrics::{FitnessStats, GenerationRecord};
pub use crate::payoff::PayoffMatrix;
pub use crate::population::{CensusEntry, Population};
pub use crate::simulation::{
    compute_generation_fitness, FitnessMode, PairEvaluator, Simulation, SimulationReport,
};
pub use crate::sset::{OpponentPolicy, SSetId, StrategySet};
pub use crate::state::{MemoryDepth, RememberedRound, StateIndex, StateSpace};
pub use crate::strategy::{
    space::StrategyFamily, MixedStrategy, NamedStrategy, PureStrategy, Strategy, StrategyKind,
    StrategySpace,
};
