//! Mixed (probabilistic) memory-n strategies.
//!
//! A mixed strategy assigns to every game state a probability of cooperating
//! (§III-D of the paper). Pure strategies are the special case in which every
//! probability is 0 or 1. Allowing mixed strategies widens the strategy space
//! from finite (but astronomically large) to a continuum.

use crate::error::{EgdError, EgdResult};
use crate::state::{MemoryDepth, StateIndex};
use crate::strategy::{PureStrategy, Strategy};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A probabilistic strategy: one cooperation probability per game state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedStrategy {
    memory: MemoryDepth,
    /// `probs[s]` is the probability of cooperating in state `s`.
    probs: Vec<f64>,
}

impl MixedStrategy {
    /// Builds a mixed strategy from an explicit per-state cooperation
    /// probability table of length `4^n`, validating that every entry lies in
    /// `[0, 1]`.
    pub fn from_probabilities(memory: MemoryDepth, probs: Vec<f64>) -> EgdResult<Self> {
        if probs.len() != memory.num_states() {
            return Err(EgdError::StrategyLengthMismatch {
                expected_states: memory.num_states(),
                actual: probs.len(),
            });
        }
        for &p in &probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(EgdError::InvalidProbability {
                    name: "cooperation probability",
                    value: p,
                });
            }
        }
        Ok(MixedStrategy { memory, probs })
    }

    /// A strategy that cooperates with the same probability `p` in every
    /// state.
    pub fn uniform(memory: MemoryDepth, p: f64) -> EgdResult<Self> {
        Self::from_probabilities(memory, vec![p; memory.num_states()])
    }

    /// Draws a random mixed strategy with independent uniform `[0, 1]`
    /// cooperation probabilities per state.
    pub fn random<R: Rng + ?Sized>(memory: MemoryDepth, rng: &mut R) -> Self {
        let probs = (0..memory.num_states()).map(|_| rng.gen::<f64>()).collect();
        MixedStrategy { memory, probs }
    }

    /// Embeds a pure strategy as the degenerate mixed strategy (probabilities
    /// 0 / 1).
    pub fn from_pure(pure: &PureStrategy) -> Self {
        let probs = pure
            .moves()
            .into_iter()
            .map(|m| if m.is_cooperation() { 1.0 } else { 0.0 })
            .collect();
        MixedStrategy {
            memory: pure.memory(),
            probs,
        }
    }

    /// "Trembles" a pure strategy: plays the prescribed move with probability
    /// `1 - epsilon` and the opposite move with probability `epsilon`. This is
    /// the standard way to encode execution errors directly in the strategy.
    pub fn trembling(pure: &PureStrategy, epsilon: f64) -> EgdResult<Self> {
        if !(0.0..=1.0).contains(&epsilon) || epsilon.is_nan() {
            return Err(EgdError::InvalidProbability {
                name: "epsilon",
                value: epsilon,
            });
        }
        let probs = pure
            .moves()
            .into_iter()
            .map(|m| {
                if m.is_cooperation() {
                    1.0 - epsilon
                } else {
                    epsilon
                }
            })
            .collect();
        Ok(MixedStrategy {
            memory: pure.memory(),
            probs,
        })
    }

    /// Generous Tit-for-Tat: a memory-one mixed strategy that always
    /// cooperates after the opponent cooperated and forgives a defection with
    /// probability `generosity`.
    pub fn generous_tit_for_tat(generosity: f64) -> EgdResult<Self> {
        if !(0.0..=1.0).contains(&generosity) || generosity.is_nan() {
            return Err(EgdError::InvalidProbability {
                name: "generosity",
                value: generosity,
            });
        }
        // States (my, opp): CC, CD, DC, DD — cooperate after opponent C,
        // forgive opponent D with probability `generosity`.
        Self::from_probabilities(MemoryDepth::ONE, vec![1.0, generosity, 1.0, generosity])
    }

    /// The memory depth of this strategy.
    #[inline]
    pub fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// The per-state cooperation probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Mean cooperation probability across states.
    pub fn mean_cooperation(&self) -> f64 {
        self.probs.iter().sum::<f64>() / self.probs.len() as f64
    }

    /// Rounds the strategy to the nearest pure strategy (probability >= 0.5
    /// becomes cooperation).
    pub fn to_pure(&self) -> PureStrategy {
        let moves: Vec<_> = self
            .probs
            .iter()
            .map(|&p| crate::action::Move::from_cooperation(p >= 0.5))
            .collect();
        PureStrategy::from_moves(self.memory, &moves).expect("lengths match by construction")
    }

    /// A stable fingerprint of the probability table (bit pattern hash), used
    /// as a pairwise-fitness cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0x84222325_cbf29ce4u64;
        hash ^= self.memory.steps() as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        for p in &self.probs {
            hash ^= p.to_bits();
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

impl Strategy for MixedStrategy {
    fn memory(&self) -> MemoryDepth {
        self.memory
    }

    fn cooperation_probability(&self, state: StateIndex) -> f64 {
        self.probs[state.index()]
    }

    fn is_deterministic(&self) -> bool {
        self.probs.iter().all(|&p| p == 0.0 || p == 1.0)
    }
}

impl fmt::Display for MixedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.probs.len() <= 8 {
            let entries: Vec<String> = self.probs.iter().map(|p| format!("{p:.2}")).collect();
            write!(f, "mixed[{}]", entries.join(", "))
        } else {
            write!(
                f,
                "mixed[{} states, mean p(C) = {:.3}]",
                self.probs.len(),
                self.mean_cooperation()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Move;
    use crate::rng::{stream, StreamKind};

    #[test]
    fn from_probabilities_validates() {
        assert!(MixedStrategy::from_probabilities(MemoryDepth::ONE, vec![0.5; 4]).is_ok());
        assert!(MixedStrategy::from_probabilities(MemoryDepth::ONE, vec![0.5; 3]).is_err());
        assert!(
            MixedStrategy::from_probabilities(MemoryDepth::ONE, vec![1.5, 0.0, 0.0, 0.0]).is_err()
        );
        assert!(
            MixedStrategy::from_probabilities(MemoryDepth::ONE, vec![f64::NAN, 0.0, 0.0, 0.0])
                .is_err()
        );
    }

    #[test]
    fn uniform_has_constant_probability() {
        let m = MixedStrategy::uniform(MemoryDepth::TWO, 0.25).unwrap();
        for s in 0..16u32 {
            assert_eq!(m.cooperation_probability(StateIndex(s)), 0.25);
        }
        assert!((m.mean_cooperation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_pure_is_deterministic() {
        let pure = PureStrategy::from_bitstring(MemoryDepth::ONE, "0110").unwrap();
        let mixed = MixedStrategy::from_pure(&pure);
        assert!(mixed.is_deterministic());
        assert_eq!(mixed.to_pure(), pure);
    }

    #[test]
    fn trembling_flips_with_epsilon() {
        let pure = PureStrategy::all_cooperate(MemoryDepth::ONE);
        let trembling = MixedStrategy::trembling(&pure, 0.1).unwrap();
        for s in 0..4u32 {
            assert!((trembling.cooperation_probability(StateIndex(s)) - 0.9).abs() < 1e-12);
        }
        assert!(!trembling.is_deterministic());
        assert!(MixedStrategy::trembling(&pure, 1.5).is_err());
    }

    #[test]
    fn gtft_forgives() {
        let gtft = MixedStrategy::generous_tit_for_tat(0.3).unwrap();
        // After opponent cooperation always cooperate; after defection forgive with p=0.3.
        assert_eq!(gtft.cooperation_probability(StateIndex(0)), 1.0); // CC
        assert_eq!(gtft.cooperation_probability(StateIndex(1)), 0.3); // CD
        assert_eq!(gtft.cooperation_probability(StateIndex(2)), 1.0); // DC
        assert_eq!(gtft.cooperation_probability(StateIndex(3)), 0.3); // DD
        assert!(MixedStrategy::generous_tit_for_tat(-0.1).is_err());
    }

    #[test]
    fn random_is_reproducible() {
        let mut a = stream(3, StreamKind::InitialStrategy, 1);
        let mut b = stream(3, StreamKind::InitialStrategy, 1);
        assert_eq!(
            MixedStrategy::random(MemoryDepth::THREE, &mut a),
            MixedStrategy::random(MemoryDepth::THREE, &mut b)
        );
    }

    #[test]
    fn to_pure_rounds() {
        let m =
            MixedStrategy::from_probabilities(MemoryDepth::ONE, vec![0.9, 0.4, 0.5, 0.1]).unwrap();
        let p = m.to_pure();
        assert_eq!(p.move_for(StateIndex(0)), Move::Cooperate);
        assert_eq!(p.move_for(StateIndex(1)), Move::Defect);
        assert_eq!(p.move_for(StateIndex(2)), Move::Cooperate);
        assert_eq!(p.move_for(StateIndex(3)), Move::Defect);
    }

    #[test]
    fn display_small_and_large() {
        let small = MixedStrategy::uniform(MemoryDepth::ONE, 0.5).unwrap();
        assert!(small.to_string().starts_with("mixed["));
        let large = MixedStrategy::uniform(MemoryDepth::THREE, 0.5).unwrap();
        assert!(large.to_string().contains("64 states"));
    }

    #[test]
    fn fingerprint_changes_with_probabilities() {
        let a = MixedStrategy::uniform(MemoryDepth::ONE, 0.5).unwrap();
        let b = MixedStrategy::uniform(MemoryDepth::ONE, 0.6).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
