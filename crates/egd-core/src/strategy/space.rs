//! Size and enumeration of the strategy space.
//!
//! The number of pure memory-`n` strategies is `2^(4^n)` — already `2^4096`
//! at memory-six (Table IV of the paper; note the paper's printed table lists
//! `2^1024` and `2^2048` for memory four and five, which is inconsistent with
//! its own formula `numStates = 4^n`, so we report the formula's values
//! `2^256` and `2^1024` and flag the difference in EXPERIMENTS.md).
//!
//! Because `2^4096` does not fit any machine integer, the exact counts are
//! produced as decimal strings by a tiny built-in big-number doubling routine.

use crate::error::EgdResult;
use crate::state::{MemoryDepth, StateSpace};
use crate::strategy::{MixedStrategy, PureStrategy, StrategyKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which family of strategies a population samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum StrategyFamily {
    /// Deterministic strategies (the paper's production setting).
    #[default]
    Pure,
    /// Probabilistic strategies (§III-D).
    Mixed,
}

/// Descriptor of the strategy space being explored: memory depth plus the
/// strategy family. Acts as the factory for random strategies (the Nature
/// Agent's `gen_new_strat()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategySpace {
    memory: MemoryDepth,
    family: StrategyFamily,
}

impl StrategySpace {
    /// Creates a strategy space.
    pub const fn new(memory: MemoryDepth, family: StrategyFamily) -> Self {
        StrategySpace { memory, family }
    }

    /// A pure strategy space (the paper's default).
    pub const fn pure(memory: MemoryDepth) -> Self {
        StrategySpace::new(memory, StrategyFamily::Pure)
    }

    /// A mixed strategy space.
    pub const fn mixed(memory: MemoryDepth) -> Self {
        StrategySpace::new(memory, StrategyFamily::Mixed)
    }

    /// The memory depth.
    pub const fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// The strategy family.
    pub const fn family(&self) -> StrategyFamily {
        self.family
    }

    /// The state space the strategies are defined over.
    pub const fn state_space(&self) -> StateSpace {
        StateSpace::new(self.memory)
    }

    /// Number of game states (`4^n`).
    pub const fn num_states(&self) -> usize {
        self.memory.num_states()
    }

    /// Base-2 logarithm of the number of pure strategies (`4^n`).
    pub const fn log2_num_pure_strategies(&self) -> u64 {
        self.memory.num_states() as u64
    }

    /// Exact number of pure strategies as a decimal string (`2^(4^n)`).
    pub fn num_pure_strategies_decimal(&self) -> String {
        pow2_decimal(self.log2_num_pure_strategies())
    }

    /// Number of decimal digits of the pure strategy count.
    pub fn num_pure_strategies_digits(&self) -> usize {
        // digits of 2^k = floor(k * log10(2)) + 1
        (self.log2_num_pure_strategies() as f64 * std::f64::consts::LOG10_2).floor() as usize + 1
    }

    /// Whether the pure strategy count fits in a `u64` (only memory ≤ 2 and
    /// the degenerate 64-state case of memory-3 minus one... in practice
    /// memory ≤ 2).
    pub fn num_pure_strategies_u64(&self) -> Option<u64> {
        let bits = self.log2_num_pure_strategies();
        if bits < 64 {
            Some(1u64 << bits)
        } else {
            None
        }
    }

    /// Draws a random strategy from this space — the Nature Agent's
    /// `gen_new_strat()` (§IV-E).
    pub fn random_strategy<R: Rng + ?Sized>(&self, rng: &mut R) -> StrategyKind {
        match self.family {
            StrategyFamily::Pure => StrategyKind::Pure(PureStrategy::random(self.memory, rng)),
            StrategyFamily::Mixed => StrategyKind::Mixed(MixedStrategy::random(self.memory, rng)),
        }
    }

    /// Enumerates *all* pure strategies of this space. Only possible for
    /// memory-one (16 strategies) and memory-two (65,536 strategies); deeper
    /// memories return an error because enumeration is infeasible — which is
    /// precisely the paper's motivation for population sampling.
    pub fn enumerate_pure(&self) -> EgdResult<Vec<PureStrategy>> {
        let count = self.num_pure_strategies_u64().ok_or_else(|| {
            crate::error::EgdError::InvalidConfig {
                reason: format!(
                    "cannot enumerate the {} pure {} strategies",
                    self.num_pure_strategies_decimal(),
                    self.memory
                ),
            }
        })?;
        if count > 1 << 20 {
            return Err(crate::error::EgdError::InvalidConfig {
                reason: format!("enumeration of {count} strategies is too large to materialise"),
            });
        }
        (0..count)
            .map(|id| PureStrategy::from_id(self.memory, id))
            .collect()
    }

    /// The paper's Table IV row for this memory depth:
    /// `(memory steps, number of pure strategies as "2^k")`.
    pub fn table_iv_row(&self) -> (u32, String) {
        (
            self.memory.steps(),
            format!("2^{}", self.log2_num_pure_strategies()),
        )
    }
}

/// Computes `2^k` as an exact decimal string via schoolbook doubling.
///
/// `k` up to a few tens of thousands is instantaneous; memory-six needs
/// `k = 4096` (a 1,234-digit number).
pub fn pow2_decimal(k: u64) -> String {
    // Little-endian vector of decimal digits.
    let mut digits: Vec<u8> = vec![1];
    for _ in 0..k {
        let mut carry = 0u8;
        for d in digits.iter_mut() {
            let doubled = *d * 2 + carry;
            *d = doubled % 10;
            carry = doubled / 10;
        }
        if carry > 0 {
            digits.push(carry);
        }
    }
    digits.iter().rev().map(|d| (b'0' + d) as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamKind};
    use crate::strategy::Strategy;

    #[test]
    fn pow2_decimal_small_values() {
        assert_eq!(pow2_decimal(0), "1");
        assert_eq!(pow2_decimal(1), "2");
        assert_eq!(pow2_decimal(4), "16");
        assert_eq!(pow2_decimal(10), "1024");
        assert_eq!(pow2_decimal(16), "65536");
        assert_eq!(pow2_decimal(64), "18446744073709551616");
    }

    #[test]
    fn table_iv_strategy_counts() {
        // Number of pure strategies is 2^(4^n).
        let expected_log2 = [4u64, 16, 64, 256, 1024, 4096];
        for (i, memory) in MemoryDepth::PAPER_RANGE.iter().enumerate() {
            let space = StrategySpace::pure(*memory);
            assert_eq!(space.log2_num_pure_strategies(), expected_log2[i]);
            assert_eq!(
                space.table_iv_row(),
                (i as u32 + 1, format!("2^{}", expected_log2[i]))
            );
        }
    }

    #[test]
    fn memory_one_has_sixteen_strategies() {
        let space = StrategySpace::pure(MemoryDepth::ONE);
        assert_eq!(space.num_pure_strategies_u64(), Some(16));
        assert_eq!(space.num_pure_strategies_decimal(), "16");
        let all = space.enumerate_pure().unwrap();
        assert_eq!(all.len(), 16);
        // All enumerated strategies are distinct (Table III).
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn memory_two_count() {
        let space = StrategySpace::pure(MemoryDepth::TWO);
        assert_eq!(space.num_pure_strategies_u64(), Some(65_536));
        assert_eq!(space.enumerate_pure().unwrap().len(), 65_536);
    }

    #[test]
    fn deep_memories_cannot_be_enumerated() {
        for memory in [MemoryDepth::THREE, MemoryDepth::FOUR, MemoryDepth::SIX] {
            assert!(StrategySpace::pure(memory).enumerate_pure().is_err());
        }
    }

    #[test]
    fn memory_six_count_has_1234_digits() {
        let space = StrategySpace::pure(MemoryDepth::SIX);
        assert_eq!(space.num_pure_strategies_u64(), None);
        assert_eq!(space.num_pure_strategies_digits(), 1234);
        let decimal = space.num_pure_strategies_decimal();
        assert_eq!(decimal.len(), 1234);
        // 2^4096 starts with 1044388881413152506...
        assert!(decimal.starts_with("10443888814131525066"));
    }

    #[test]
    fn random_strategy_respects_family() {
        let mut rng = stream(1, StreamKind::Mutation, 0);
        let pure = StrategySpace::pure(MemoryDepth::TWO).random_strategy(&mut rng);
        assert!(matches!(pure, StrategyKind::Pure(_)));
        let mixed = StrategySpace::mixed(MemoryDepth::TWO).random_strategy(&mut rng);
        assert!(matches!(mixed, StrategyKind::Mixed(_)));
        assert_eq!(pure.memory(), MemoryDepth::TWO);
        assert_eq!(mixed.memory(), MemoryDepth::TWO);
    }

    #[test]
    fn default_family_is_pure() {
        assert_eq!(StrategyFamily::default(), StrategyFamily::Pure);
    }

    #[test]
    fn digits_formula_matches_decimal_length() {
        for memory in [
            MemoryDepth::ONE,
            MemoryDepth::TWO,
            MemoryDepth::THREE,
            MemoryDepth::FOUR,
        ] {
            let space = StrategySpace::pure(memory);
            assert_eq!(
                space.num_pure_strategies_digits(),
                space.num_pure_strategies_decimal().len(),
                "{memory}"
            );
        }
    }
}
