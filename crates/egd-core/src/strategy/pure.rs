//! Pure (deterministic) memory-n strategies.
//!
//! A pure strategy is a bit vector with one bit per game state: bit `0`
//! prescribes cooperation, bit `1` defection (matching the move encoding of
//! [`crate::action::Move`]). For memory-`n` there are `4^n` states, so a
//! memory-six strategy is a 4096-bit genome — the size that, multiplied by
//! population scale, set the memory limit of the paper's Blue Gene runs.

use crate::action::Move;
use crate::error::{EgdError, EgdResult};
use crate::state::{MemoryDepth, StateIndex, StateSpace};
use crate::strategy::Strategy;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A deterministic strategy: one move per game state, packed 64 states per
/// `u64` word.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PureStrategy {
    memory: MemoryDepth,
    /// Packed move bits; bit `s % 64` of word `s / 64` is the move for state `s`.
    genome: Vec<u64>,
}

impl PureStrategy {
    /// Number of `u64` words needed to store a genome of `num_states` bits.
    fn words_for(num_states: usize) -> usize {
        num_states.div_ceil(64)
    }

    /// The strategy that cooperates in every state (`ALLC`).
    pub fn all_cooperate(memory: MemoryDepth) -> Self {
        PureStrategy {
            memory,
            genome: vec![0u64; Self::words_for(memory.num_states())],
        }
    }

    /// The strategy that defects in every state (`ALLD`).
    pub fn all_defect(memory: MemoryDepth) -> Self {
        let num_states = memory.num_states();
        let mut genome = vec![u64::MAX; Self::words_for(num_states)];
        Self::mask_tail(&mut genome, num_states);
        PureStrategy { memory, genome }
    }

    /// Clears any bits beyond `num_states` in the last word so that equal
    /// strategies always have bit-identical genomes.
    fn mask_tail(genome: &mut [u64], num_states: usize) {
        let rem = num_states % 64;
        if rem != 0 {
            if let Some(last) = genome.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Builds a strategy from an explicit move table (`moves[s]` is the move
    /// played in state `s`). The table length must be `4^n`.
    pub fn from_moves(memory: MemoryDepth, moves: &[Move]) -> EgdResult<Self> {
        let num_states = memory.num_states();
        if moves.len() != num_states {
            return Err(EgdError::StrategyLengthMismatch {
                expected_states: num_states,
                actual: moves.len(),
            });
        }
        let mut genome = vec![0u64; Self::words_for(num_states)];
        for (s, m) in moves.iter().enumerate() {
            if m.is_defection() {
                genome[s / 64] |= 1u64 << (s % 64);
            }
        }
        Ok(PureStrategy { memory, genome })
    }

    /// Builds a strategy from a bit string such as `"0101"` (`0` = cooperate,
    /// `1` = defect), state 0 first — the notation used by the paper when it
    /// reports that 85% of the population adopted `[0101]` (WSLS).
    pub fn from_bitstring(memory: MemoryDepth, bits: &str) -> EgdResult<Self> {
        let moves: Vec<Move> = bits
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| match c {
                '0' | 'c' | 'C' => Ok(Move::Cooperate),
                '1' | 'd' | 'D' => Ok(Move::Defect),
                other => Err(EgdError::InvalidConfig {
                    reason: format!("invalid character `{other}` in strategy bit string"),
                }),
            })
            .collect::<EgdResult<_>>()?;
        Self::from_moves(memory, &moves)
    }

    /// Builds a memory-n strategy from the low `4^n` bits of an integer id
    /// (bit `s` is the move in state `s`). Only valid for `n <= 3`
    /// (64 states or fewer).
    pub fn from_id(memory: MemoryDepth, id: u64) -> EgdResult<Self> {
        let num_states = memory.num_states();
        if num_states > 64 {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "strategy ids only exist for memories with at most 64 states, {memory} has {num_states}"
                ),
            });
        }
        let mut genome = vec![id];
        Self::mask_tail(&mut genome, num_states);
        Ok(PureStrategy { memory, genome })
    }

    /// Draws a uniformly random pure strategy: every state's move is an
    /// independent fair coin flip. This is the paper's `gen_new_strat()`.
    pub fn random<R: Rng + ?Sized>(memory: MemoryDepth, rng: &mut R) -> Self {
        let num_states = memory.num_states();
        let mut genome: Vec<u64> = (0..Self::words_for(num_states))
            .map(|_| rng.gen())
            .collect();
        Self::mask_tail(&mut genome, num_states);
        PureStrategy { memory, genome }
    }

    /// The memory depth of this strategy.
    #[inline]
    pub fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// Number of states the strategy covers.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.memory.num_states()
    }

    /// The move prescribed for `state`. `state` must be within range
    /// (debug-asserted); out-of-range indices in release builds read past the
    /// logical genome but stay within the allocated words.
    #[inline]
    pub fn move_for(&self, state: StateIndex) -> Move {
        let s = state.index();
        debug_assert!(s < self.num_states());
        let word = self.genome[s / 64];
        Move::from_bit(((word >> (s % 64)) & 1) as u8)
    }

    /// The full move table, state 0 first.
    pub fn moves(&self) -> Vec<Move> {
        (0..self.num_states() as u32)
            .map(|s| self.move_for(StateIndex(s)))
            .collect()
    }

    /// The genome as a `0`/`1` string, state 0 first.
    pub fn bitstring(&self) -> String {
        (0..self.num_states() as u32)
            .map(|s| {
                if self.move_for(StateIndex(s)).is_defection() {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }

    /// The packed genome words (read-only).
    pub fn genome_words(&self) -> &[u64] {
        &self.genome
    }

    /// The integer id of this strategy (only for memories with at most 64
    /// states, i.e. `n <= 3`).
    pub fn id(&self) -> Option<u64> {
        if self.num_states() <= 64 {
            Some(self.genome[0])
        } else {
            None
        }
    }

    /// Fraction of states in which the strategy cooperates.
    pub fn cooperation_fraction(&self) -> f64 {
        let defections: u32 = self.genome.iter().map(|w| w.count_ones()).sum();
        1.0 - defections as f64 / self.num_states() as f64
    }

    /// Hamming distance between two strategies' genomes (number of states in
    /// which they prescribe different moves). Panics if memories differ.
    pub fn hamming_distance(&self, other: &PureStrategy) -> u32 {
        assert_eq!(
            self.memory, other.memory,
            "hamming distance requires equal memory depths"
        );
        self.genome
            .iter()
            .zip(&other.genome)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Flips the move of a single state, returning the mutated strategy.
    /// Used for local-mutation experiments (a gentler alternative to the
    /// paper's full random resampling).
    pub fn with_flipped_state(&self, state: StateIndex) -> EgdResult<Self> {
        if state.index() >= self.num_states() {
            return Err(EgdError::StateOutOfRange {
                index: state.index(),
                num_states: self.num_states(),
            });
        }
        let mut clone = self.clone();
        clone.genome[state.index() / 64] ^= 1u64 << (state.index() % 64);
        Ok(clone)
    }

    /// Lifts a strategy to a deeper memory: the lifted strategy looks only at
    /// the most recent `n` rounds of its longer history and plays exactly as
    /// the original. Useful for embedding memory-one classics (TFT, WSLS)
    /// into memory-`m` populations.
    pub fn lifted_to(&self, target: MemoryDepth) -> EgdResult<Self> {
        if target < self.memory {
            return Err(EgdError::InvalidConfig {
                reason: format!("cannot lift {} strategy down to {target}", self.memory),
            });
        }
        if target == self.memory {
            return Ok(self.clone());
        }
        let source_space = StateSpace::new(self.memory);
        let target_space = StateSpace::new(target);
        let source_mask = self.memory.state_mask() as u32;
        let moves: Vec<Move> = target_space
            .states()
            .map(|s| {
                // The most recent `n` rounds occupy the low `2n` bits.
                let recent = StateIndex(s.0 & source_mask);
                debug_assert!(source_space.check(recent).is_ok());
                self.move_for(recent)
            })
            .collect();
        Self::from_moves(target, &moves)
    }

    /// A stable fingerprint of the genome (FNV-1a over the words), used as a
    /// pairwise-fitness cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        hash ^= self.memory.steps() as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        for word in &self.genome {
            hash ^= *word;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

impl Strategy for PureStrategy {
    fn memory(&self) -> MemoryDepth {
        self.memory
    }

    fn cooperation_probability(&self, state: StateIndex) -> f64 {
        if self.move_for(state).is_cooperation() {
            1.0
        } else {
            0.0
        }
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

impl fmt::Display for PureStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits = self.bitstring();
        if bits.len() <= 32 {
            write!(f, "[{bits}]")
        } else {
            write!(
                f,
                "[{}...{} ({} states)]",
                &bits[..16],
                &bits[bits.len() - 8..],
                self.num_states()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamKind};

    #[test]
    fn all_cooperate_and_all_defect() {
        for n in 1..=6 {
            let memory = MemoryDepth::new(n).unwrap();
            let allc = PureStrategy::all_cooperate(memory);
            let alld = PureStrategy::all_defect(memory);
            assert_eq!(allc.cooperation_fraction(), 1.0);
            assert_eq!(alld.cooperation_fraction(), 0.0);
            for s in StateSpace::new(memory).states() {
                assert_eq!(allc.move_for(s), Move::Cooperate);
                assert_eq!(alld.move_for(s), Move::Defect);
            }
        }
    }

    #[test]
    fn from_moves_round_trip() {
        let memory = MemoryDepth::TWO;
        let moves: Vec<Move> = (0..memory.num_states())
            .map(|s| Move::from_bit((s % 3 == 0) as u8))
            .collect();
        let strat = PureStrategy::from_moves(memory, &moves).unwrap();
        assert_eq!(strat.moves(), moves);
    }

    #[test]
    fn from_moves_rejects_wrong_length() {
        let moves = vec![Move::Cooperate; 5];
        assert!(PureStrategy::from_moves(MemoryDepth::ONE, &moves).is_err());
    }

    #[test]
    fn bitstring_round_trip() {
        let strat = PureStrategy::from_bitstring(MemoryDepth::ONE, "0110").unwrap();
        assert_eq!(strat.bitstring(), "0110");
        assert_eq!(strat.move_for(StateIndex(0)), Move::Cooperate);
        assert_eq!(strat.move_for(StateIndex(1)), Move::Defect);
        assert_eq!(strat.move_for(StateIndex(2)), Move::Defect);
        assert_eq!(strat.move_for(StateIndex(3)), Move::Cooperate);
    }

    #[test]
    fn bitstring_accepts_cd_characters() {
        let strat = PureStrategy::from_bitstring(MemoryDepth::ONE, "CDDC").unwrap();
        assert_eq!(strat.bitstring(), "0110");
        assert!(PureStrategy::from_bitstring(MemoryDepth::ONE, "01x1").is_err());
    }

    #[test]
    fn id_round_trip_memory_one() {
        // Table III: there are exactly 16 memory-one pure strategies.
        for id in 0..16u64 {
            let strat = PureStrategy::from_id(MemoryDepth::ONE, id).unwrap();
            assert_eq!(strat.id(), Some(id));
        }
    }

    #[test]
    fn id_unavailable_for_deep_memory() {
        let strat = PureStrategy::all_cooperate(MemoryDepth::FOUR);
        assert_eq!(strat.id(), None);
        assert!(PureStrategy::from_id(MemoryDepth::FOUR, 3).is_err());
    }

    #[test]
    fn random_strategies_differ_and_are_reproducible() {
        let mut rng1 = stream(5, StreamKind::InitialStrategy, 0);
        let mut rng2 = stream(5, StreamKind::InitialStrategy, 0);
        let a = PureStrategy::random(MemoryDepth::SIX, &mut rng1);
        let b = PureStrategy::random(MemoryDepth::SIX, &mut rng2);
        assert_eq!(a, b);
        let c = PureStrategy::random(MemoryDepth::SIX, &mut rng1);
        assert_ne!(a, c);
    }

    #[test]
    fn random_strategy_cooperation_fraction_near_half() {
        let mut rng = stream(11, StreamKind::InitialStrategy, 1);
        let strat = PureStrategy::random(MemoryDepth::SIX, &mut rng);
        let frac = strat.cooperation_fraction();
        assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn genome_tail_is_masked() {
        // memory-one: 4 states in one word; ALLD must have only 4 bits set.
        let alld = PureStrategy::all_defect(MemoryDepth::ONE);
        assert_eq!(alld.genome_words(), &[0b1111]);
        let mut rng = stream(3, StreamKind::InitialStrategy, 9);
        let r = PureStrategy::random(MemoryDepth::ONE, &mut rng);
        assert!(r.genome_words()[0] < 16);
    }

    #[test]
    fn hamming_distance() {
        let allc = PureStrategy::all_cooperate(MemoryDepth::TWO);
        let alld = PureStrategy::all_defect(MemoryDepth::TWO);
        assert_eq!(allc.hamming_distance(&alld), 16);
        assert_eq!(allc.hamming_distance(&allc), 0);
    }

    #[test]
    fn with_flipped_state() {
        let allc = PureStrategy::all_cooperate(MemoryDepth::ONE);
        let flipped = allc.with_flipped_state(StateIndex(2)).unwrap();
        assert_eq!(allc.hamming_distance(&flipped), 1);
        assert_eq!(flipped.move_for(StateIndex(2)), Move::Defect);
        assert!(allc.with_flipped_state(StateIndex(4)).is_err());
    }

    #[test]
    fn lift_preserves_behaviour_on_recent_history() {
        // TFT (memory-one) lifted to memory-three must still mirror the
        // opponent's most recent move.
        let tft = PureStrategy::from_bitstring(MemoryDepth::ONE, "0101").unwrap();
        let lifted = tft.lifted_to(MemoryDepth::THREE).unwrap();
        let space = StateSpace::new(MemoryDepth::THREE);
        for s in space.states() {
            let rounds = space.decode(s).unwrap();
            let expected = rounds[0].opponent_move;
            assert_eq!(lifted.move_for(s), expected);
        }
    }

    #[test]
    fn lift_to_same_memory_is_identity() {
        let strat = PureStrategy::from_bitstring(MemoryDepth::ONE, "0110").unwrap();
        assert_eq!(strat.lifted_to(MemoryDepth::ONE).unwrap(), strat);
        assert!(PureStrategy::all_defect(MemoryDepth::TWO)
            .lifted_to(MemoryDepth::ONE)
            .is_err());
    }

    #[test]
    fn display_truncates_long_genomes() {
        let short = PureStrategy::all_cooperate(MemoryDepth::ONE);
        assert_eq!(short.to_string(), "[0000]");
        let long = PureStrategy::all_defect(MemoryDepth::SIX);
        let shown = long.to_string();
        assert!(shown.contains("4096 states"));
        assert!(shown.len() < 64);
    }

    #[test]
    fn fingerprint_distinguishes_memories() {
        let a = PureStrategy::all_cooperate(MemoryDepth::ONE);
        let b = PureStrategy::all_cooperate(MemoryDepth::TWO);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
