//! Memory-n strategies: pure, mixed, and named classics.
//!
//! A strategy prescribes the next move for every possible game state (the
//! joint history of the last `n` rounds, see [`crate::state`]). Pure
//! strategies ([`PureStrategy`]) pick a deterministic move per state; mixed
//! strategies ([`MixedStrategy`]) cooperate with a per-state probability.
//!
//! The number of pure strategies explodes with memory depth
//! (`2^(4^n)`, see [`space`] and Table IV of the paper), which is why the
//! population-based sampling of the paper is needed in the first place.

pub mod mixed;
pub mod named;
pub mod pure;
pub mod space;

pub use mixed::MixedStrategy;
pub use named::NamedStrategy;
pub use pure::PureStrategy;
pub use space::StrategySpace;

use crate::action::Move;
use crate::state::{MemoryDepth, StateIndex};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Behaviour common to every strategy representation.
pub trait Strategy {
    /// The memory depth this strategy plays with.
    fn memory(&self) -> MemoryDepth;

    /// Probability of cooperating in the given state (0.0 or 1.0 for pure
    /// strategies).
    fn cooperation_probability(&self, state: StateIndex) -> f64;

    /// Whether the strategy never randomises.
    fn is_deterministic(&self) -> bool;

    /// Chooses the move for `state`, drawing from `rng` if the strategy is
    /// mixed.
    fn decide<R: Rng + ?Sized>(&self, state: StateIndex, rng: &mut R) -> Move {
        let p = self.cooperation_probability(state);
        if p >= 1.0 {
            Move::Cooperate
        } else if p <= 0.0 {
            Move::Defect
        } else {
            Move::from_cooperation(rng.gen_bool(p))
        }
    }
}

/// A strategy as stored in the population: either pure or mixed.
///
/// The paper's production runs use pure strategies; mixed strategies widen
/// the strategy space further (§III-D) and are supported end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// A deterministic strategy: one move per state.
    Pure(PureStrategy),
    /// A probabilistic strategy: one cooperation probability per state.
    Mixed(MixedStrategy),
}

impl StrategyKind {
    /// The pure variant, if this is a pure strategy.
    pub fn as_pure(&self) -> Option<&PureStrategy> {
        match self {
            StrategyKind::Pure(p) => Some(p),
            StrategyKind::Mixed(_) => None,
        }
    }

    /// The mixed variant, if this is a mixed strategy.
    pub fn as_mixed(&self) -> Option<&MixedStrategy> {
        match self {
            StrategyKind::Mixed(m) => Some(m),
            StrategyKind::Pure(_) => None,
        }
    }

    /// A stable, hashable fingerprint of the strategy contents, used as a key
    /// for pairwise-fitness caching. Two strategies with equal fingerprints
    /// and equal memory depth behave identically.
    pub fn fingerprint(&self) -> u64 {
        match self {
            StrategyKind::Pure(p) => p.fingerprint(),
            StrategyKind::Mixed(m) => m.fingerprint(),
        }
    }
}

impl Strategy for StrategyKind {
    fn memory(&self) -> MemoryDepth {
        match self {
            StrategyKind::Pure(p) => p.memory(),
            StrategyKind::Mixed(m) => m.memory(),
        }
    }

    fn cooperation_probability(&self, state: StateIndex) -> f64 {
        match self {
            StrategyKind::Pure(p) => p.cooperation_probability(state),
            StrategyKind::Mixed(m) => m.cooperation_probability(state),
        }
    }

    fn is_deterministic(&self) -> bool {
        match self {
            StrategyKind::Pure(_) => true,
            StrategyKind::Mixed(m) => m.is_deterministic(),
        }
    }
}

impl From<PureStrategy> for StrategyKind {
    fn from(p: PureStrategy) -> Self {
        StrategyKind::Pure(p)
    }
}

impl From<MixedStrategy> for StrategyKind {
    fn from(m: MixedStrategy) -> Self {
        StrategyKind::Mixed(m)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyKind::Pure(p) => write!(f, "{p}"),
            StrategyKind::Mixed(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamKind};

    #[test]
    fn strategy_kind_dispatch() {
        let pure = PureStrategy::all_cooperate(MemoryDepth::ONE);
        let kind: StrategyKind = pure.clone().into();
        assert_eq!(kind.memory(), MemoryDepth::ONE);
        assert!(kind.is_deterministic());
        assert_eq!(kind.cooperation_probability(StateIndex(0)), 1.0);
        assert_eq!(kind.as_pure(), Some(&pure));
        assert!(kind.as_mixed().is_none());
    }

    #[test]
    fn mixed_kind_dispatch() {
        let mixed = MixedStrategy::uniform(MemoryDepth::ONE, 0.5).unwrap();
        let kind: StrategyKind = mixed.clone().into();
        assert!(!kind.is_deterministic());
        assert_eq!(kind.cooperation_probability(StateIndex(2)), 0.5);
        assert_eq!(kind.as_mixed(), Some(&mixed));
        assert!(kind.as_pure().is_none());
    }

    #[test]
    fn decide_pure_ignores_rng() {
        let mut rng = stream(1, StreamKind::Auxiliary, 0);
        let allc = StrategyKind::Pure(PureStrategy::all_cooperate(MemoryDepth::ONE));
        let alld = StrategyKind::Pure(PureStrategy::all_defect(MemoryDepth::ONE));
        for s in 0..4u32 {
            assert_eq!(allc.decide(StateIndex(s), &mut rng), Move::Cooperate);
            assert_eq!(alld.decide(StateIndex(s), &mut rng), Move::Defect);
        }
    }

    #[test]
    fn decide_mixed_uses_probability() {
        let mut rng = stream(7, StreamKind::Auxiliary, 1);
        let half = StrategyKind::Mixed(MixedStrategy::uniform(MemoryDepth::ONE, 0.5).unwrap());
        let n = 4000;
        let coops = (0..n)
            .filter(|_| half.decide(StateIndex(0), &mut rng).is_cooperation())
            .count();
        let fraction = coops as f64 / n as f64;
        assert!((fraction - 0.5).abs() < 0.05, "fraction {fraction}");
    }

    #[test]
    fn fingerprints_differ_between_distinct_strategies() {
        let a = StrategyKind::Pure(PureStrategy::all_cooperate(MemoryDepth::TWO));
        let b = StrategyKind::Pure(PureStrategy::all_defect(MemoryDepth::TWO));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }
}
