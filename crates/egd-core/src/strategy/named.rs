//! Named classic strategies of the repeated Prisoner's Dilemma literature.
//!
//! These are the strategies the paper uses as reference points: Tit-for-Tat
//! (§I, §III-B), Win-Stay-Lose-Shift (§III-F, Table V, and the validation run
//! of §VI-A), unconditional cooperation/defection, and a handful of other
//! memory-one and memory-two classics. Each can be materialised at any memory
//! depth via [`PureStrategy::lifted_to`].

use crate::action::Move;
use crate::error::{EgdError, EgdResult};
use crate::state::{MemoryDepth, StateIndex, StateSpace};
use crate::strategy::PureStrategy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The classic strategies bundled with the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamedStrategy {
    /// Always cooperate.
    AlwaysCooperate,
    /// Always defect.
    AlwaysDefect,
    /// Tit-for-Tat: copy the opponent's previous move (memory-one).
    TitForTat,
    /// Suspicious Tit-for-Tat: like TFT but written so that every state with
    /// an opponent defection answers with defection (identical table to TFT;
    /// kept for completeness of the classic roster — it differs from TFT only
    /// in its opening move, which the framework fixes to cooperation).
    SuspiciousTitForTat,
    /// Win-Stay-Lose-Shift (Pavlov): repeat your move after a good payoff
    /// (R or T), switch after a bad one (S or P). Memory-one; the strategy
    /// that dominates the paper's validation run (Fig. 2).
    WinStayLoseShift,
    /// Grim trigger truncated to memory-one: cooperate only after mutual
    /// cooperation.
    GrimTrigger,
    /// Tit-for-Two-Tats: defect only after the opponent defected in both of
    /// the last two rounds (memory-two).
    TitForTwoTats,
    /// Two-Tits-for-Tat: defect if the opponent defected in either of the
    /// last two rounds (memory-two).
    TwoTitsForTat,
    /// Alternator: cooperate after mutual cooperation or mutual defection,
    /// defect otherwise (the "anti-WSLS" reference point).
    AntiWinStayLoseShift,
}

impl NamedStrategy {
    /// Every named strategy, in a stable order.
    pub const ALL: [NamedStrategy; 9] = [
        NamedStrategy::AlwaysCooperate,
        NamedStrategy::AlwaysDefect,
        NamedStrategy::TitForTat,
        NamedStrategy::SuspiciousTitForTat,
        NamedStrategy::WinStayLoseShift,
        NamedStrategy::GrimTrigger,
        NamedStrategy::TitForTwoTats,
        NamedStrategy::TwoTitsForTat,
        NamedStrategy::AntiWinStayLoseShift,
    ];

    /// The conventional short name (e.g. `"TFT"`, `"WSLS"`).
    pub fn short_name(self) -> &'static str {
        match self {
            NamedStrategy::AlwaysCooperate => "ALLC",
            NamedStrategy::AlwaysDefect => "ALLD",
            NamedStrategy::TitForTat => "TFT",
            NamedStrategy::SuspiciousTitForTat => "STFT",
            NamedStrategy::WinStayLoseShift => "WSLS",
            NamedStrategy::GrimTrigger => "GRIM",
            NamedStrategy::TitForTwoTats => "TF2T",
            NamedStrategy::TwoTitsForTat => "2TFT",
            NamedStrategy::AntiWinStayLoseShift => "ANTI-WSLS",
        }
    }

    /// Parses a short name (case-insensitive).
    pub fn from_short_name(name: &str) -> EgdResult<Self> {
        let upper = name.to_ascii_uppercase();
        Self::ALL
            .into_iter()
            .find(|s| s.short_name() == upper)
            .ok_or_else(|| EgdError::InvalidConfig {
                reason: format!("unknown strategy name `{name}`"),
            })
    }

    /// The native memory depth of this strategy.
    pub fn native_memory(self) -> MemoryDepth {
        match self {
            NamedStrategy::TitForTwoTats | NamedStrategy::TwoTitsForTat => MemoryDepth::TWO,
            _ => MemoryDepth::ONE,
        }
    }

    /// Materialises the strategy at its native memory depth.
    pub fn to_pure(self) -> PureStrategy {
        match self {
            NamedStrategy::AlwaysCooperate => PureStrategy::all_cooperate(MemoryDepth::ONE),
            NamedStrategy::AlwaysDefect => PureStrategy::all_defect(MemoryDepth::ONE),
            // States ordered (my, opp): CC, CD, DC, DD.
            NamedStrategy::TitForTat | NamedStrategy::SuspiciousTitForTat => {
                PureStrategy::from_bitstring(MemoryDepth::ONE, "0101").expect("valid TFT table")
            }
            NamedStrategy::WinStayLoseShift => {
                PureStrategy::from_bitstring(MemoryDepth::ONE, "0110").expect("valid WSLS table")
            }
            NamedStrategy::GrimTrigger => {
                PureStrategy::from_bitstring(MemoryDepth::ONE, "0111").expect("valid GRIM table")
            }
            NamedStrategy::AntiWinStayLoseShift => {
                PureStrategy::from_bitstring(MemoryDepth::ONE, "1001")
                    .expect("valid anti-WSLS table")
            }
            NamedStrategy::TitForTwoTats => {
                Self::memory_two_from_rule(|_mine, opp_recent, opp_older| {
                    // Defect only after two consecutive opponent defections.
                    Move::from_cooperation(!(opp_recent.is_defection() && opp_older.is_defection()))
                })
            }
            NamedStrategy::TwoTitsForTat => {
                Self::memory_two_from_rule(|_mine, opp_recent, opp_older| {
                    // Defect if the opponent defected in either remembered round.
                    Move::from_cooperation(
                        opp_recent.is_cooperation() && opp_older.is_cooperation(),
                    )
                })
            }
        }
    }

    /// Materialises the strategy lifted to an arbitrary memory depth
    /// (at least its native depth).
    pub fn to_pure_with_memory(self, memory: MemoryDepth) -> EgdResult<PureStrategy> {
        self.to_pure().lifted_to(memory)
    }

    /// Builds a memory-two strategy from a rule over (my most recent move,
    /// opponent's most recent move, opponent's older move).
    fn memory_two_from_rule(rule: impl Fn(Move, Move, Move) -> Move) -> PureStrategy {
        let memory = MemoryDepth::TWO;
        let space = StateSpace::new(memory);
        let moves: Vec<Move> = space
            .states()
            .map(|s| {
                let rounds = space.decode(s).expect("valid state");
                rule(
                    rounds[0].my_move,
                    rounds[0].opponent_move,
                    rounds[1].opponent_move,
                )
            })
            .collect();
        PureStrategy::from_moves(memory, &moves).expect("lengths match")
    }

    /// Identifies whether a pure strategy equals this named strategy at the
    /// strategy's memory depth (after lifting the named strategy if needed).
    pub fn matches(self, strategy: &PureStrategy) -> bool {
        match self.to_pure_with_memory(strategy.memory()) {
            Ok(lifted) => &lifted == strategy,
            Err(_) => false,
        }
    }

    /// Finds the named strategy (if any) that a pure strategy implements.
    pub fn identify(strategy: &PureStrategy) -> Option<NamedStrategy> {
        // TFT and STFT share a move table; report TFT.
        Self::ALL
            .into_iter()
            .filter(|s| *s != NamedStrategy::SuspiciousTitForTat)
            .find(|s| s.matches(strategy))
    }

    /// The paper's Table V: the WSLS memory-one state/strategy table, as
    /// `(state, move)` pairs in state order.
    pub fn wsls_table() -> Vec<(StateIndex, Move)> {
        let wsls = NamedStrategy::WinStayLoseShift.to_pure();
        StateSpace::new(MemoryDepth::ONE)
            .states()
            .map(|s| (s, wsls.move_for(s)))
            .collect()
    }
}

impl fmt::Display for NamedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RememberedRound;

    #[test]
    fn tft_copies_opponent() {
        let tft = NamedStrategy::TitForTat.to_pure();
        let space = StateSpace::new(MemoryDepth::ONE);
        for s in space.states() {
            let round = space.decode(s).unwrap()[0];
            assert_eq!(tft.move_for(s), round.opponent_move);
        }
    }

    #[test]
    fn wsls_stays_after_win_shifts_after_loss() {
        let wsls = NamedStrategy::WinStayLoseShift.to_pure();
        let space = StateSpace::new(MemoryDepth::ONE);
        let payoffs = crate::payoff::PayoffMatrix::PAPER;
        for s in space.states() {
            let round = space.decode(s).unwrap()[0];
            let my_payoff = payoffs.payoff(round.my_move, round.opponent_move);
            let won = my_payoff >= payoffs.reward; // R or T counts as a win
            let expected = if won {
                round.my_move
            } else {
                round.my_move.flipped()
            };
            assert_eq!(
                wsls.move_for(s),
                expected,
                "state {}",
                space.format_state(s)
            );
        }
    }

    #[test]
    fn wsls_bitstring_matches_expected_encoding() {
        // In our (my, opp) state ordering CC, CD, DC, DD the WSLS table is
        // C, D, D, C = "0110". (The paper's Fig. 2 reports the same strategy
        // as [0101] under its own state ordering CC, CD, DD, DC.)
        assert_eq!(
            NamedStrategy::WinStayLoseShift.to_pure().bitstring(),
            "0110"
        );
    }

    #[test]
    fn wsls_table_matches_paper_table_five_semantics() {
        let table = NamedStrategy::wsls_table();
        assert_eq!(table.len(), 4);
        // After mutual cooperation (state 0) WSLS cooperates; after mutual
        // defection (state DD) it also cooperates.
        assert_eq!(table[0].1, Move::Cooperate);
        assert_eq!(table[3].1, Move::Cooperate);
        assert_eq!(table[1].1, Move::Defect);
        assert_eq!(table[2].1, Move::Defect);
    }

    #[test]
    fn grim_cooperates_only_after_mutual_cooperation() {
        let grim = NamedStrategy::GrimTrigger.to_pure();
        assert_eq!(grim.move_for(StateIndex(0)), Move::Cooperate);
        for s in 1..4u32 {
            assert_eq!(grim.move_for(StateIndex(s)), Move::Defect);
        }
    }

    #[test]
    fn tf2t_defects_only_after_two_defections() {
        let tf2t = NamedStrategy::TitForTwoTats.to_pure();
        let space = StateSpace::new(MemoryDepth::TWO);
        for s in space.states() {
            let rounds = space.decode(s).unwrap();
            let expected_defect =
                rounds[0].opponent_move.is_defection() && rounds[1].opponent_move.is_defection();
            assert_eq!(tf2t.move_for(s).is_defection(), expected_defect);
        }
    }

    #[test]
    fn two_tft_defects_after_any_defection() {
        let ttft = NamedStrategy::TwoTitsForTat.to_pure();
        let space = StateSpace::new(MemoryDepth::TWO);
        let provoked = space
            .encode(&[
                RememberedRound::new(Move::Cooperate, Move::Cooperate),
                RememberedRound::new(Move::Cooperate, Move::Defect),
            ])
            .unwrap();
        assert_eq!(ttft.move_for(provoked), Move::Defect);
        assert_eq!(ttft.move_for(StateIndex::INITIAL), Move::Cooperate);
    }

    #[test]
    fn identify_named_strategies() {
        for named in NamedStrategy::ALL {
            if named == NamedStrategy::SuspiciousTitForTat {
                continue; // identical table to TFT
            }
            let pure = named.to_pure();
            assert_eq!(NamedStrategy::identify(&pure), Some(named), "{named}");
        }
        // A random-looking strategy is not identified as a classic.
        let odd = PureStrategy::from_bitstring(MemoryDepth::ONE, "1101").unwrap();
        assert_eq!(NamedStrategy::identify(&odd), None);
    }

    #[test]
    fn identify_lifted_wsls() {
        let lifted = NamedStrategy::WinStayLoseShift
            .to_pure_with_memory(MemoryDepth::THREE)
            .unwrap();
        assert_eq!(
            NamedStrategy::identify(&lifted),
            Some(NamedStrategy::WinStayLoseShift)
        );
    }

    #[test]
    fn short_name_round_trip() {
        for named in NamedStrategy::ALL {
            assert_eq!(
                NamedStrategy::from_short_name(named.short_name()).unwrap(),
                named
            );
        }
        assert!(NamedStrategy::from_short_name("wsls").is_ok());
        assert!(NamedStrategy::from_short_name("NOPE").is_err());
    }

    #[test]
    fn native_memory() {
        assert_eq!(NamedStrategy::TitForTat.native_memory(), MemoryDepth::ONE);
        assert_eq!(
            NamedStrategy::TitForTwoTats.native_memory(),
            MemoryDepth::TWO
        );
    }

    #[test]
    fn anti_wsls_is_complement_of_wsls() {
        let wsls = NamedStrategy::WinStayLoseShift.to_pure();
        let anti = NamedStrategy::AntiWinStayLoseShift.to_pure();
        assert_eq!(wsls.hamming_distance(&anti), 4);
    }
}
