//! Payoff matrices for two-player symmetric games.
//!
//! The paper uses the standard Prisoner's Dilemma payoff vector
//! `f[R, S, T, P] = [3, 0, 4, 1]` (Table I): *Reward* for mutual cooperation,
//! *Sucker* payoff for cooperating against a defector, *Temptation* for
//! defecting against a cooperator and *Punishment* for mutual defection.

use crate::action::Move;
use crate::error::EgdError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A symmetric 2x2 payoff matrix expressed through the classic
/// Reward / Sucker / Temptation / Punishment values.
///
/// The payoff is always from the perspective of the focal player:
/// [`PayoffMatrix::payoff`]`(my_move, opponent_move)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PayoffMatrix {
    /// Payoff when both players cooperate (`R`).
    pub reward: f64,
    /// Payoff when the focal player cooperates and the opponent defects (`S`).
    pub sucker: f64,
    /// Payoff when the focal player defects and the opponent cooperates (`T`).
    pub temptation: f64,
    /// Payoff when both players defect (`P`).
    pub punishment: f64,
}

impl PayoffMatrix {
    /// The payoff matrix used throughout the paper: `[R,S,T,P] = [3,0,4,1]`.
    pub const PAPER: PayoffMatrix = PayoffMatrix {
        reward: 3.0,
        sucker: 0.0,
        temptation: 4.0,
        punishment: 1.0,
    };

    /// The classic Axelrod-tournament payoffs `[R,S,T,P] = [3,0,5,1]`.
    pub const AXELROD: PayoffMatrix = PayoffMatrix {
        reward: 3.0,
        sucker: 0.0,
        temptation: 5.0,
        punishment: 1.0,
    };

    /// Creates a payoff matrix from the `[R, S, T, P]` vector.
    pub const fn new(reward: f64, sucker: f64, temptation: f64, punishment: f64) -> Self {
        PayoffMatrix {
            reward,
            sucker,
            temptation,
            punishment,
        }
    }

    /// Creates a payoff matrix from a `[R, S, T, P]` array, mirroring the
    /// paper's `f[R,S,T,P]` notation.
    pub const fn from_rstp(values: [f64; 4]) -> Self {
        PayoffMatrix::new(values[0], values[1], values[2], values[3])
    }

    /// The `[R, S, T, P]` vector of this matrix.
    pub const fn as_rstp(&self) -> [f64; 4] {
        [self.reward, self.sucker, self.temptation, self.punishment]
    }

    /// The *donation game* parameterisation: cooperation costs the donor `c`
    /// and gives the recipient `b` (with `b > c > 0`). A common analytic
    /// special case of the Prisoner's Dilemma.
    pub fn donation(benefit: f64, cost: f64) -> Self {
        PayoffMatrix {
            reward: benefit - cost,
            sucker: -cost,
            temptation: benefit,
            punishment: 0.0,
        }
    }

    /// The *snowdrift* (hawk–dove) game, in which cooperation against a
    /// defector is still better than mutual defection. Included so that the
    /// framework generalises beyond the Prisoner's Dilemma.
    pub fn snowdrift(benefit: f64, cost: f64) -> Self {
        PayoffMatrix {
            reward: benefit - cost / 2.0,
            sucker: benefit - cost,
            temptation: benefit,
            punishment: 0.0,
        }
    }

    /// Payoff of the focal player when it plays `my_move` against
    /// `opponent_move`.
    #[inline]
    pub fn payoff(&self, my_move: Move, opponent_move: Move) -> f64 {
        match (my_move, opponent_move) {
            (Move::Cooperate, Move::Cooperate) => self.reward,
            (Move::Cooperate, Move::Defect) => self.sucker,
            (Move::Defect, Move::Cooperate) => self.temptation,
            (Move::Defect, Move::Defect) => self.punishment,
        }
    }

    /// Payoffs of both players `(focal, opponent)` for a round.
    #[inline]
    pub fn pair_payoffs(&self, my_move: Move, opponent_move: Move) -> (f64, f64) {
        (
            self.payoff(my_move, opponent_move),
            self.payoff(opponent_move, my_move),
        )
    }

    /// Payoff indexed by the outcome's 2-bit encoding
    /// (`my_bit * 2 + opp_bit`), handy for branch-free accumulation in the
    /// optimised kernels.
    #[inline]
    pub fn payoff_by_bits(&self, my_bit: u8, opp_bit: u8) -> f64 {
        debug_assert!(my_bit <= 1 && opp_bit <= 1);
        self.lookup_table()[((my_bit << 1) | opp_bit) as usize]
    }

    /// A 4-entry lookup table indexed by `my_bit * 2 + opp_bit`
    /// (`[R, S, T, P]` reordered to `[CC, CD, DC, DD]`).
    #[inline]
    pub fn lookup_table(&self) -> [f64; 4] {
        [self.reward, self.sucker, self.temptation, self.punishment]
    }

    /// Whether these payoffs satisfy the strict Prisoner's Dilemma ordering
    /// `T > R > P > S`. Under this ordering defection is the dominant
    /// single-round strategy even though mutual cooperation is collectively
    /// better.
    pub fn is_prisoners_dilemma(&self) -> bool {
        self.temptation > self.reward
            && self.reward > self.punishment
            && self.punishment > self.sucker
    }

    /// Whether repeated-game cooperation is collectively efficient,
    /// i.e. `2R > T + S`. Without this condition players could do better by
    /// alternating exploitation instead of mutually cooperating.
    pub fn favours_mutual_cooperation(&self) -> bool {
        2.0 * self.reward > self.temptation + self.sucker
    }

    /// Validates that the payoffs are finite; returns the matrix unchanged.
    pub fn validated(self) -> Result<Self, EgdError> {
        let values = self.as_rstp();
        if values.iter().all(|v| v.is_finite()) {
            Ok(self)
        } else {
            Err(EgdError::InvalidPayoff {
                values,
                reason: "payoff values must be finite".to_string(),
            })
        }
    }

    /// Largest payoff a single round can award.
    pub fn max_payoff(&self) -> f64 {
        self.as_rstp().into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest payoff a single round can award.
    pub fn min_payoff(&self) -> f64 {
        self.as_rstp().into_iter().fold(f64::INFINITY, f64::min)
    }
}

impl Default for PayoffMatrix {
    /// The paper's payoffs `[3, 0, 4, 1]`.
    fn default() -> Self {
        PayoffMatrix::PAPER
    }
}

impl fmt::Display for PayoffMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[R={}, S={}, T={}, P={}]",
            self.reward, self.sucker, self.temptation, self.punishment
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_matches_table_one() {
        let m = PayoffMatrix::PAPER;
        assert_eq!(m.as_rstp(), [3.0, 0.0, 4.0, 1.0]);
        assert_eq!(m.payoff(Move::Cooperate, Move::Cooperate), 3.0);
        assert_eq!(m.payoff(Move::Cooperate, Move::Defect), 0.0);
        assert_eq!(m.payoff(Move::Defect, Move::Cooperate), 4.0);
        assert_eq!(m.payoff(Move::Defect, Move::Defect), 1.0);
    }

    #[test]
    fn paper_matrix_is_a_prisoners_dilemma() {
        assert!(PayoffMatrix::PAPER.is_prisoners_dilemma());
        assert!(PayoffMatrix::AXELROD.is_prisoners_dilemma());
    }

    #[test]
    fn paper_matrix_favours_mutual_cooperation() {
        // 2R = 6 > T + S = 4.
        assert!(PayoffMatrix::PAPER.favours_mutual_cooperation());
    }

    #[test]
    fn pair_payoffs_are_symmetric() {
        let m = PayoffMatrix::PAPER;
        let (a, b) = m.pair_payoffs(Move::Cooperate, Move::Defect);
        assert_eq!((a, b), (0.0, 4.0));
        let (a, b) = m.pair_payoffs(Move::Defect, Move::Cooperate);
        assert_eq!((a, b), (4.0, 0.0));
    }

    #[test]
    fn payoff_by_bits_matches_enum_path() {
        let m = PayoffMatrix::PAPER;
        for my in Move::ALL {
            for opp in Move::ALL {
                assert_eq!(m.payoff(my, opp), m.payoff_by_bits(my.bit(), opp.bit()));
            }
        }
    }

    #[test]
    fn donation_game_is_prisoners_dilemma() {
        let m = PayoffMatrix::donation(2.0, 1.0);
        assert!(m.is_prisoners_dilemma());
        assert_eq!(m.payoff(Move::Cooperate, Move::Cooperate), 1.0);
        assert_eq!(m.payoff(Move::Cooperate, Move::Defect), -1.0);
    }

    #[test]
    fn snowdrift_is_not_a_prisoners_dilemma() {
        let m = PayoffMatrix::snowdrift(4.0, 2.0);
        // In snowdrift S > P, so the strict PD ordering fails.
        assert!(!m.is_prisoners_dilemma());
    }

    #[test]
    fn from_rstp_round_trips() {
        let values = [3.0, 0.0, 4.0, 1.0];
        assert_eq!(PayoffMatrix::from_rstp(values).as_rstp(), values);
    }

    #[test]
    fn validation_rejects_non_finite() {
        let m = PayoffMatrix::new(f64::NAN, 0.0, 4.0, 1.0);
        assert!(m.validated().is_err());
        assert!(PayoffMatrix::PAPER.validated().is_ok());
    }

    #[test]
    fn min_max_payoff() {
        let m = PayoffMatrix::PAPER;
        assert_eq!(m.max_payoff(), 4.0);
        assert_eq!(m.min_payoff(), 0.0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(PayoffMatrix::default(), PayoffMatrix::PAPER);
    }

    #[test]
    fn display_format() {
        assert_eq!(PayoffMatrix::PAPER.to_string(), "[R=3, S=0, T=4, P=1]");
    }
}
