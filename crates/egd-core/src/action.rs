//! The two possible moves of a Prisoner's Dilemma round.
//!
//! Throughout the paper (and this crate) moves are encoded as single bits:
//! `0` means **cooperate** and `1` means **defect**. All history/state
//! encodings build on this bit convention.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single move in a Prisoner's Dilemma round: cooperate or defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Move {
    /// Cooperate (`C`, bit value `0`).
    Cooperate,
    /// Defect (`D`, bit value `1`).
    Defect,
}

impl Move {
    /// All moves, in bit order (`C`, then `D`).
    pub const ALL: [Move; 2] = [Move::Cooperate, Move::Defect];

    /// The bit encoding of this move: `0` for cooperate, `1` for defect.
    #[inline]
    pub const fn bit(self) -> u8 {
        match self {
            Move::Cooperate => 0,
            Move::Defect => 1,
        }
    }

    /// Builds a move from its bit encoding (any non-zero value defects).
    #[inline]
    pub const fn from_bit(bit: u8) -> Move {
        if bit == 0 {
            Move::Cooperate
        } else {
            Move::Defect
        }
    }

    /// Builds a move from a boolean "cooperate?" flag.
    #[inline]
    pub const fn from_cooperation(cooperates: bool) -> Move {
        if cooperates {
            Move::Cooperate
        } else {
            Move::Defect
        }
    }

    /// Whether this move is a cooperation.
    #[inline]
    pub const fn is_cooperation(self) -> bool {
        matches!(self, Move::Cooperate)
    }

    /// Whether this move is a defection.
    #[inline]
    pub const fn is_defection(self) -> bool {
        matches!(self, Move::Defect)
    }

    /// The opposite move. Used to model execution errors ("trembling hand"):
    /// with some probability an agent plays the opposite of what its strategy
    /// prescribes.
    #[inline]
    pub const fn flipped(self) -> Move {
        match self {
            Move::Cooperate => Move::Defect,
            Move::Defect => Move::Cooperate,
        }
    }

    /// Single-character label used in tables and population maps (`C` / `D`).
    #[inline]
    pub const fn symbol(self) -> char {
        match self {
            Move::Cooperate => 'C',
            Move::Defect => 'D',
        }
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

impl From<bool> for Move {
    /// `true` maps to [`Move::Defect`] (bit 1), matching the bit convention.
    fn from(defects: bool) -> Self {
        if defects {
            Move::Defect
        } else {
            Move::Cooperate
        }
    }
}

impl From<Move> for u8 {
    fn from(m: Move) -> u8 {
        m.bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trip() {
        for m in Move::ALL {
            assert_eq!(Move::from_bit(m.bit()), m);
        }
    }

    #[test]
    fn cooperate_is_zero_defect_is_one() {
        assert_eq!(Move::Cooperate.bit(), 0);
        assert_eq!(Move::Defect.bit(), 1);
    }

    #[test]
    fn from_bit_treats_any_nonzero_as_defect() {
        assert_eq!(Move::from_bit(0), Move::Cooperate);
        assert_eq!(Move::from_bit(1), Move::Defect);
        assert_eq!(Move::from_bit(7), Move::Defect);
    }

    #[test]
    fn flipped_is_involution() {
        for m in Move::ALL {
            assert_eq!(m.flipped().flipped(), m);
            assert_ne!(m.flipped(), m);
        }
    }

    #[test]
    fn display_symbols() {
        assert_eq!(Move::Cooperate.to_string(), "C");
        assert_eq!(Move::Defect.to_string(), "D");
    }

    #[test]
    fn from_bool_and_into_u8() {
        assert_eq!(Move::from(true), Move::Defect);
        assert_eq!(Move::from(false), Move::Cooperate);
        assert_eq!(u8::from(Move::Defect), 1);
        assert_eq!(u8::from(Move::Cooperate), 0);
    }

    #[test]
    fn from_cooperation_flag() {
        assert_eq!(Move::from_cooperation(true), Move::Cooperate);
        assert_eq!(Move::from_cooperation(false), Move::Defect);
    }

    #[test]
    fn predicates() {
        assert!(Move::Cooperate.is_cooperation());
        assert!(!Move::Cooperate.is_defection());
        assert!(Move::Defect.is_defection());
        assert!(!Move::Defect.is_cooperation());
    }
}
