//! The Iterated Prisoner's Dilemma game engine.
//!
//! Two strategies face each other for a fixed number of rounds (200 in the
//! paper, following Maynard Smith & Price). Both players start from the
//! all-cooperation history (the paper's "first play of each agent is
//! arbitrarily set to 0"), look up their move for the current state, and then
//! both histories advance. Execution errors (§III-F) flip a prescribed move
//! with a configurable probability.

use crate::action::Move;
use crate::error::{EgdError, EgdResult};
use crate::game::compiled::{self, BatchedDraws, CompiledPair, CompiledStrategy};
use crate::game::GameStats;
use crate::payoff::PayoffMatrix;
use crate::state::{MemoryDepth, StateIndex, StateSpace};
use crate::strategy::{PureStrategy, Strategy, StrategyKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of a single Iterated Prisoner's Dilemma game.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameOutcome {
    /// Total fitness accumulated by player A.
    pub fitness_a: f64,
    /// Total fitness accumulated by player B.
    pub fitness_b: f64,
    /// Number of rounds in which A cooperated.
    pub cooperations_a: u32,
    /// Number of rounds in which B cooperated.
    pub cooperations_b: u32,
    /// Number of rounds played.
    pub rounds: u32,
}

impl GameOutcome {
    /// The outcome seen from player A's perspective as [`GameStats`].
    pub fn stats_for_a(&self) -> GameStats {
        GameStats {
            my_fitness: self.fitness_a,
            opponent_fitness: self.fitness_b,
            rounds: self.rounds as u64,
            my_cooperations: self.cooperations_a as u64,
            opponent_cooperations: self.cooperations_b as u64,
        }
    }

    /// The outcome with the two players swapped.
    pub fn swapped(&self) -> GameOutcome {
        GameOutcome {
            fitness_a: self.fitness_b,
            fitness_b: self.fitness_a,
            cooperations_a: self.cooperations_b,
            cooperations_b: self.cooperations_a,
            rounds: self.rounds,
        }
    }

    /// Joint cooperation rate of the game.
    pub fn cooperation_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.cooperations_a + self.cooperations_b) as f64 / (2 * self.rounds) as f64
        }
    }
}

/// Configuration of an Iterated Prisoner's Dilemma game between two
/// strategies of the same memory depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpdGame {
    memory: MemoryDepth,
    rounds: u32,
    payoffs: PayoffMatrix,
    /// Probability that an executed move is the opposite of the prescribed
    /// one ("trembling hand" error, §III-F).
    noise: f64,
    /// State space of the game, hoisted out of the per-game path (every
    /// engine used to rebuild it per call).
    space: StateSpace,
    /// The payoff lookup table `[CC, CD, DC, DD]`, hoisted likewise.
    table: [f64; 4],
}

// Manual codec impls: only the four configuration fields are encoded — the
// cached `space`/`table` are derived state, so payloads stay identical to
// the pre-hoist encoding and a decoded game can never carry a lookup table
// that disagrees with its payoff matrix.
impl Serialize for IpdGame {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.memory.serialize_into(out);
        self.rounds.serialize_into(out);
        self.payoffs.serialize_into(out);
        self.noise.serialize_into(out);
    }
}

impl Deserialize for IpdGame {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, serde::CodecError> {
        let memory = MemoryDepth::deserialize_from(input)?;
        let rounds = u32::deserialize_from(input)?;
        let payoffs = PayoffMatrix::deserialize_from(input)?;
        let noise = f64::deserialize_from(input)?;
        IpdGame::new(memory, rounds, payoffs, noise)
            .map_err(|e| serde::CodecError::new(format!("invalid IpdGame payload: {e}")))
    }
}

impl IpdGame {
    /// The number of rounds per generation used in the paper.
    pub const PAPER_ROUNDS: u32 = 200;

    /// Creates a game with the paper's defaults: 200 rounds, payoff matrix
    /// `[3,0,4,1]`, no execution noise.
    pub fn paper_defaults(memory: MemoryDepth) -> Self {
        IpdGame {
            memory,
            rounds: Self::PAPER_ROUNDS,
            payoffs: PayoffMatrix::PAPER,
            noise: 0.0,
            space: StateSpace::new(memory),
            table: PayoffMatrix::PAPER.lookup_table(),
        }
    }

    /// Creates a fully parameterised game.
    pub fn new(
        memory: MemoryDepth,
        rounds: u32,
        payoffs: PayoffMatrix,
        noise: f64,
    ) -> EgdResult<Self> {
        if !(0.0..=1.0).contains(&noise) || noise.is_nan() {
            return Err(EgdError::InvalidProbability {
                name: "noise",
                value: noise,
            });
        }
        if rounds == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "a game must have at least one round".to_string(),
            });
        }
        let payoffs = payoffs.validated()?;
        Ok(IpdGame {
            memory,
            rounds,
            payoffs,
            noise,
            space: StateSpace::new(memory),
            table: payoffs.lookup_table(),
        })
    }

    /// The memory depth both strategies must have.
    pub fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// Number of rounds per game.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The payoff matrix in use.
    pub fn payoffs(&self) -> &PayoffMatrix {
        &self.payoffs
    }

    /// The execution-noise probability.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Returns a copy of this game with a different noise level.
    pub fn with_noise(&self, noise: f64) -> EgdResult<Self> {
        IpdGame::new(self.memory, self.rounds, self.payoffs, noise)
    }

    /// Returns a copy of this game with a different round count.
    pub fn with_rounds(&self, rounds: u32) -> EgdResult<Self> {
        IpdGame::new(self.memory, rounds, self.payoffs, self.noise)
    }

    /// Whether a game between the two given strategies is fully
    /// deterministic (both strategies pure, no execution noise), in which
    /// case its outcome can be cached by strategy pair.
    pub fn is_deterministic_for(&self, a: &StrategyKind, b: &StrategyKind) -> bool {
        self.noise == 0.0 && a.is_deterministic() && b.is_deterministic()
    }

    fn check_memory(&self, a: MemoryDepth, b: MemoryDepth) -> EgdResult<()> {
        if a != self.memory || b != self.memory {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "strategy memories ({a}, {b}) do not match the game's {}",
                    self.memory
                ),
            });
        }
        Ok(())
    }

    /// Plays a full game between two strategies, drawing from `rng` for mixed
    /// strategies and execution noise. This is the general engine; for pure
    /// strategies without noise prefer [`IpdGame::play_pure`].
    pub fn play<R: Rng + ?Sized>(
        &self,
        a: &StrategyKind,
        b: &StrategyKind,
        rng: &mut R,
    ) -> EgdResult<GameOutcome> {
        self.check_memory(a.memory(), b.memory())?;
        let space = &self.space;
        // Both players start from the all-cooperation view; A's view and B's
        // view are always perspective swaps of each other.
        let mut view_a = StateIndex::INITIAL;
        let mut view_b = StateIndex::INITIAL;
        let mut outcome = GameOutcome {
            fitness_a: 0.0,
            fitness_b: 0.0,
            cooperations_a: 0,
            cooperations_b: 0,
            rounds: self.rounds,
        };
        let table = &self.table;
        for _ in 0..self.rounds {
            let mut move_a = a.decide(view_a, rng);
            let mut move_b = b.decide(view_b, rng);
            if self.noise > 0.0 {
                if rng.gen_bool(self.noise) {
                    move_a = move_a.flipped();
                }
                if rng.gen_bool(self.noise) {
                    move_b = move_b.flipped();
                }
            }
            let bits_a = ((move_a.bit() << 1) | move_b.bit()) as usize;
            let bits_b = ((move_b.bit() << 1) | move_a.bit()) as usize;
            outcome.fitness_a += table[bits_a];
            outcome.fitness_b += table[bits_b];
            outcome.cooperations_a += move_a.is_cooperation() as u32;
            outcome.cooperations_b += move_b.is_cooperation() as u32;
            view_a = space.advance(view_a, move_a, move_b);
            view_b = space.advance(view_b, move_b, move_a);
        }
        Ok(outcome)
    }

    /// Plays a full game between two *compiled* strategies — the stochastic
    /// rung of the Fig. 3 kernel ladder.
    ///
    /// Produces a byte-identical [`GameOutcome`] to [`IpdGame::play`] on the
    /// same strategies **and leaves `rng` at the same stream position**: per
    /// round, each player consumes one draw exactly when its current state's
    /// cooperation probability is interior (matching `Strategy::decide`),
    /// followed by the two unconditional noise draws when `noise > 0` — the
    /// same sequence as the paper-literal loop. The per-draw decision is a
    /// single integer compare (see [`compiled`] for the bit-exactness
    /// argument), B's move is read from its perspective-swapped table
    /// indexed by A's view, and the state advance is a branch-free
    /// shift-and-mask. Payoffs accumulate in the same order as `play`, so
    /// the f64 sums are bit-identical too.
    pub fn play_compiled<R: Rng + ?Sized>(
        &self,
        a: &CompiledStrategy,
        b: &CompiledStrategy,
        rng: &mut R,
    ) -> EgdResult<GameOutcome> {
        self.check_memory(a.memory(), b.memory())?;
        self.play_pair(&CompiledPair::new(a, b), rng)
    }

    /// Plays a pre-paired compiled pairing (see [`CompiledPair`]). The round
    /// loop is monomorphised over three facts decided once per game — does A
    /// ever draw, does B ever draw, is there execution noise — so a
    /// deterministic opponent in a mixed-vs-pure pairing (the bulk of the
    /// skewed workload) decides with a branch-free compare instead of a
    /// three-way match.
    pub fn play_pair<R: Rng + ?Sized>(
        &self,
        pair: &CompiledPair<'_>,
        rng: &mut R,
    ) -> EgdResult<GameOutcome> {
        if pair.a_thr.len() != self.memory.num_states()
            || pair.b_thr.len() != self.memory.num_states()
        {
            return Err(EgdError::InvalidConfig {
                reason: "compiled strategy tables do not match the game's memory".to_string(),
            });
        }
        let noise = self.noise > 0.0;
        Ok(match (pair.a_deterministic, pair.b_deterministic, noise) {
            (false, false, false) => self.run_pair::<R, false, false, false>(pair, rng),
            (false, false, true) => self.run_pair::<R, false, false, true>(pair, rng),
            (false, true, false) => self.run_pair::<R, false, true, false>(pair, rng),
            (false, true, true) => self.run_pair::<R, false, true, true>(pair, rng),
            (true, false, false) => self.run_pair::<R, true, false, false>(pair, rng),
            (true, false, true) => self.run_pair::<R, true, false, true>(pair, rng),
            (true, true, false) => self.run_pair::<R, true, true, false>(pair, rng),
            (true, true, true) => self.run_pair::<R, true, true, true>(pair, rng),
        })
    }

    /// The monomorphised round loop. `A_PURE` / `B_PURE` assert that every
    /// state of that player is a sentinel (decide without drawing); `NOISE`
    /// adds the two unconditional noise draws per round.
    fn run_pair<R: Rng + ?Sized, const A_PURE: bool, const B_PURE: bool, const NOISE: bool>(
        &self,
        pair: &CompiledPair<'_>,
        rng: &mut R,
    ) -> GameOutcome {
        let num_states = self.memory.num_states();
        // Indexing below uses `view & mask` with `mask = len - 1`, which the
        // optimiser can prove in-bounds — no per-round bounds checks.
        let a_thr = &pair.a_thr[..num_states];
        let b_thr = &pair.b_thr[..num_states];
        let a_mask = (a_thr.len() - 1) as u64;
        let b_mask = (b_thr.len() - 1) as u64;
        let noise_thr = if NOISE {
            compiled::draw_threshold(self.noise)
        } else {
            0
        };
        let table = &self.table;

        let mut view_a = 0u64; // all-cooperation start, packed
        let mut fitness_a = 0.0f64;
        let mut fitness_b = 0.0f64;
        let mut coop_a = 0u32;
        let mut coop_b = 0u32;

        for _ in 0..self.rounds {
            let ta = a_thr[(view_a & a_mask) as usize];
            let tb = b_thr[(view_a & b_mask) as usize];
            let mut ca = if A_PURE {
                ta == compiled::THR_ALWAYS
            } else {
                Self::draw_coop(ta, rng)
            };
            let mut cb = if B_PURE {
                tb == compiled::THR_ALWAYS
            } else {
                Self::draw_coop(tb, rng)
            };
            if NOISE {
                // Noise draws are unconditional (gen_bool is always called),
                // unlike the strategy draws above.
                if (rng.next_u64() >> compiled::DRAW_SHIFT) < noise_thr {
                    ca = !ca;
                }
                if (rng.next_u64() >> compiled::DRAW_SHIFT) < noise_thr {
                    cb = !cb;
                }
            }
            // Defection is bit 1, so the joint-round encoding from A's side
            // is `(!ca << 1) | !cb` — also the advance nibble for A's view.
            let bit_a = !ca as u64;
            let bit_b = !cb as u64;
            let bits_a = ((bit_a << 1) | bit_b) as usize;
            let bits_b = ((bit_b << 1) | bit_a) as usize;
            fitness_a += table[bits_a];
            fitness_b += table[bits_b];
            coop_a += ca as u32;
            coop_b += cb as u32;
            view_a = (view_a << 2) | bits_a as u64;
        }

        GameOutcome {
            fitness_a,
            fitness_b,
            cooperations_a: coop_a,
            cooperations_b: coop_b,
            rounds: self.rounds,
        }
    }

    /// One compiled decision: sentinel states consume no draw (exactly like
    /// `Strategy::decide`), interior states consume one `next_u64`.
    #[inline(always)]
    fn draw_coop<R: Rng + ?Sized>(thr: u64, rng: &mut R) -> bool {
        match thr {
            compiled::THR_ALWAYS => true,
            compiled::THR_NEVER => false,
            t => (rng.next_u64() >> compiled::DRAW_SHIFT) < t,
        }
    }

    /// Plays every lane of a [`BatchedDraws`] batch at the widest supported
    /// lane width — the batched rung of the Fig. 3 kernel ladder.
    ///
    /// Lanes are chunked into groups of [`BatchedDraws::MAX_WIDTH`] games
    /// that advance round-by-round together: the K serial RNG multiply
    /// chains interleave, hiding the 128-bit-multiply latency that bounds
    /// the one-game-at-a-time kernel, while the lane-major threshold tables
    /// stream densely. Each lane still consumes exactly its own per-pair
    /// draw sequence and accumulates payoffs in per-round order, so every
    /// lane's outcome and final stream position are bit-identical to
    /// [`IpdGame::play_pair`] on the same pairing and seed (tail chunks
    /// narrower than the width change nothing — lanes never interact).
    pub fn play_batched(&self, batch: &mut BatchedDraws) -> EgdResult<()> {
        self.play_batched_width(batch, BatchedDraws::MAX_WIDTH)
    }

    /// [`IpdGame::play_batched`] at an explicit lane width (1/2/4/8/16) —
    /// the knob the `egd-bench` width harness sweeps. Lanes beyond the last
    /// full chunk run at the widest power of two that still fits.
    pub fn play_batched_width(&self, batch: &mut BatchedDraws, width: usize) -> EgdResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if batch.num_states() != self.memory.num_states() {
            return Err(EgdError::InvalidConfig {
                reason: "batched game tables do not match the game's memory".to_string(),
            });
        }
        if !(1..=BatchedDraws::MAX_WIDTH).contains(&width) || !width.is_power_of_two() {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "lane width {width} is not a power of two in 1..={}",
                    BatchedDraws::MAX_WIDTH
                ),
            });
        }
        if self.noise > 0.0 {
            self.run_batch::<true>(batch, width);
        } else {
            self.run_batch::<false>(batch, width);
        }
        Ok(())
    }

    /// The outcome of lane `k` of a played batch.
    pub fn batch_outcome(&self, batch: &BatchedDraws, k: usize) -> GameOutcome {
        GameOutcome {
            fitness_a: batch.fitness_a[k],
            fitness_b: batch.fitness_b[k],
            cooperations_a: batch.cooperations_a[k],
            cooperations_b: batch.cooperations_b[k],
            rounds: self.rounds,
        }
    }

    /// Dispatches the batch to a stride-monomorphised run. The common
    /// memory depths (one to three, strides 8/32/128) get a compile-time
    /// `STRIDE`, which turns the per-round threshold mask into an immediate
    /// and lets the compiler prove every lane-table index in-bounds —
    /// deeper memories fall back to the dynamic-stride instantiation
    /// (`STRIDE = 0`), which keeps the checks.
    fn run_batch<const NOISE: bool>(&self, batch: &mut BatchedDraws, width: usize) {
        match 2 * self.memory.num_states() {
            8 => self.run_batch_strided::<8, NOISE>(batch, width),
            32 => self.run_batch_strided::<32, NOISE>(batch, width),
            128 => self.run_batch_strided::<128, NOISE>(batch, width),
            _ => self.run_batch_strided::<0, NOISE>(batch, width),
        }
    }

    /// Chunks the batch into monomorphised lane groups of at most `width`.
    fn run_batch_strided<const STRIDE: usize, const NOISE: bool>(
        &self,
        batch: &mut BatchedDraws,
        width: usize,
    ) {
        let n = batch.len();
        let mut base = 0;
        let mut w = width;
        while base < n {
            while w > n - base {
                w /= 2;
            }
            match w {
                16 => self.run_lanes::<16, STRIDE, NOISE>(batch, base),
                8 => self.run_lanes::<8, STRIDE, NOISE>(batch, base),
                4 => self.run_lanes::<4, STRIDE, NOISE>(batch, base),
                2 => self.run_lanes::<2, STRIDE, NOISE>(batch, base),
                _ => self.run_lanes::<1, STRIDE, NOISE>(batch, base),
            }
            base += w;
        }
    }

    /// The lane-parallel round loop over lanes `base..base + W`.
    ///
    /// Round-major, lane-minor: per round every lane decides, draws, and
    /// accumulates before any lane moves to the next round. Because lanes
    /// share no state, this loop interchange preserves each lane's exact
    /// draw sequence and f64 summation order — it only interleaves the
    /// independent RNG dependency chains so the CPU can overlap them.
    fn run_lanes<const W: usize, const STRIDE: usize, const NOISE: bool>(
        &self,
        batch: &mut BatchedDraws,
        base: usize,
    ) {
        let num_states = self.memory.num_states();
        // With a compile-time stride both the mask and every slice length
        // below are constants, so the per-round threshold indexing compiles
        // to unchecked loads.
        let stride = if STRIDE == 0 { 2 * num_states } else { STRIDE };
        debug_assert_eq!(stride, 2 * num_states);
        let mask = (stride / 2 - 1) as u64;
        let noise_thr = if NOISE {
            compiled::draw_threshold(self.noise)
        } else {
            0
        };

        // Hot lane state lives in fixed-size local arrays (registers / L1).
        let mut state: [u128; W] = std::array::from_fn(|l| batch.rng_state[base + l]);
        // Views are kept pre-masked throughout the loop (masked on load and
        // after every update), so the state index needs no AND on the load
        // path and the threshold index is provably in-bounds.
        let mut view: [u64; W] = std::array::from_fn(|l| batch.view[base + l] & mask);
        let mut fitness_a = [0.0f64; W];
        let mut fitness_b = [0.0f64; W];
        let mut defect_a = [0u32; W];
        let mut defect_b = [0u32; W];
        // Per-lane interleaved threshold slices of exact length
        // `2 * num_states` (one cache line serves both players' lookups).
        // With a compile-time stride each slice length is a constant, so the
        // masked index below is provably in-bounds.
        let thr: [&[u64]; W] = std::array::from_fn(|l| &batch.thr[(base + l) * stride..][..stride]);
        // Both players' payoffs for one round, indexed by A's history bits —
        // the same `table` values run_pair reads, pre-paired so a round does
        // one indexed load from one cache line.
        let table = &self.table;
        let pay: [[f64; 2]; 4] = std::array::from_fn(|bits| {
            let swapped = ((bits & 1) << 1) | (bits >> 1);
            [table[bits], table[swapped]]
        });

        // Jump-ahead multipliers: draw `j` of a round (1-indexed) is
        // `xsl_rr(s0 · M^j)` for the round's base state `s0`, because the
        // MCG update is a wrapping product and `(s·M^a)·M^b = s·M^(a+b)`
        // exactly. Computing each draw off `s0` turns the round's serial
        // multiply chain (up to 4 dependent 128-bit muls with noise) into
        // independent multiplies the CPU can overlap — bit-identical
        // outputs and stream positions, a fraction of the latency.
        const JUMPS: [u128; 4] = rand_pcg::Pcg64Mcg::JUMP_MULTIPLIERS;

        // The decide branches are expanded into a tree so that every jump
        // multiplier below is a literal: which draw index each player uses
        // is fixed per (interior-A, interior-B) leaf, and interior-ness is
        // fixed per (strategy, state), so the branches predict
        // near-perfectly and no draw-counter bookkeeping survives into the
        // loop. Sentinel thresholds (`thr + 1 <= 1` ⇔ never/always) consume
        // no draw, exactly as in the per-game kernel. The loop tracks
        // *defections* (`da`/`db`), which are the history bits themselves;
        // cooperation counts are recovered exactly as `rounds - defections`
        // after the loop.
        for _ in 0..self.rounds {
            for l in 0..W {
                // `view` is kept pre-masked (below), so it IS the state
                // index — no AND on the load path.
                let s = view[l] as usize;
                let ta = thr[l][2 * s];
                let tb = thr[l][2 * s + 1];
                let s0 = state[l];
                let mut da;
                let mut db;
                let mut s_end;
                if ta.wrapping_add(1) > 1 {
                    let (nx, out) = rand_pcg::Pcg64Mcg::step_jump(s0, JUMPS[0]);
                    da = (out >> compiled::DRAW_SHIFT) >= ta;
                    if tb.wrapping_add(1) > 1 {
                        let (nx2, out2) = rand_pcg::Pcg64Mcg::step_jump(s0, JUMPS[1]);
                        db = (out2 >> compiled::DRAW_SHIFT) >= tb;
                        s_end = nx2;
                        if NOISE {
                            let (fa, fb, nx3) =
                                Self::noise_flips(s0, JUMPS[2], JUMPS[3], noise_thr);
                            da ^= fa;
                            db ^= fb;
                            s_end = nx3;
                        }
                    } else {
                        db = tb != compiled::THR_ALWAYS;
                        s_end = nx;
                        if NOISE {
                            let (fa, fb, nx3) =
                                Self::noise_flips(s0, JUMPS[1], JUMPS[2], noise_thr);
                            da ^= fa;
                            db ^= fb;
                            s_end = nx3;
                        }
                    }
                } else {
                    da = ta != compiled::THR_ALWAYS;
                    if tb.wrapping_add(1) > 1 {
                        let (nx, out) = rand_pcg::Pcg64Mcg::step_jump(s0, JUMPS[0]);
                        db = (out >> compiled::DRAW_SHIFT) >= tb;
                        s_end = nx;
                        if NOISE {
                            let (fa, fb, nx3) =
                                Self::noise_flips(s0, JUMPS[1], JUMPS[2], noise_thr);
                            da ^= fa;
                            db ^= fb;
                            s_end = nx3;
                        }
                    } else {
                        db = tb != compiled::THR_ALWAYS;
                        s_end = s0;
                        if NOISE {
                            let (fa, fb, nx3) =
                                Self::noise_flips(s0, JUMPS[0], JUMPS[1], noise_thr);
                            da ^= fa;
                            db ^= fb;
                            s_end = nx3;
                        }
                    }
                }
                state[l] = s_end;
                let bits_a = (((da as u64) << 1) | db as u64) as usize;
                let [pa, pb] = pay[bits_a];
                fitness_a[l] += pa;
                fitness_b[l] += pb;
                defect_a[l] += da as u32;
                defect_b[l] += db as u32;
                view[l] = ((view[l] << 2) | bits_a as u64) & mask;
            }
        }

        for l in 0..W {
            batch.rng_state[base + l] = state[l];
            batch.view[base + l] = view[l];
            batch.fitness_a[base + l] = fitness_a[l];
            batch.fitness_b[base + l] = fitness_b[l];
            batch.cooperations_a[base + l] = self.rounds - defect_a[l];
            batch.cooperations_b[base + l] = self.rounds - defect_b[l];
        }
    }

    /// The two unconditional noise draws of a round, computed off the
    /// round's base state with the caller's (compile-time constant) jump
    /// multipliers: returns whether A's and B's actions flip, and the
    /// stream position after both draws.
    #[inline(always)]
    fn noise_flips(s0: u128, jump_a: u128, jump_b: u128, noise_thr: u64) -> (bool, bool, u128) {
        let (_, out_a) = rand_pcg::Pcg64Mcg::step_jump(s0, jump_a);
        let (nx, out_b) = rand_pcg::Pcg64Mcg::step_jump(s0, jump_b);
        (
            (out_a >> compiled::DRAW_SHIFT) < noise_thr,
            (out_b >> compiled::DRAW_SHIFT) < noise_thr,
            nx,
        )
    }

    /// Plays a deterministic game between two pure strategies with no
    /// execution noise. No randomness is consumed; the result depends only on
    /// the strategy pair, which makes it cacheable.
    ///
    /// Because the joint state space is finite, deterministic play eventually
    /// enters a cycle; this engine detects the cycle and closes the remaining
    /// rounds analytically, so a 200-round (or 10^6-round) game costs at most
    /// `4^n` simulated rounds.
    pub fn play_pure(&self, a: &PureStrategy, b: &PureStrategy) -> EgdResult<GameOutcome> {
        self.check_memory(a.memory(), b.memory())?;
        if self.noise > 0.0 {
            return Err(EgdError::InvalidConfig {
                reason: "play_pure requires a noise-free game; use play() with an RNG".to_string(),
            });
        }
        let space = &self.space;
        let table = &self.table;
        let num_states = self.memory.num_states();

        // `visited[s]` records the round at which A's view first equalled `s`
        // (plus payoff/cooperation prefix sums at that time) so that the cycle
        // can be closed exactly.
        let mut first_seen: Vec<i64> = vec![-1; num_states];
        let mut prefix: Vec<(f64, f64, u32, u32)> = Vec::with_capacity(num_states + 1);

        let mut view_a = StateIndex::INITIAL;
        let mut fitness_a = 0.0f64;
        let mut fitness_b = 0.0f64;
        let mut coop_a = 0u32;
        let mut coop_b = 0u32;

        let mut round = 0u32;
        while round < self.rounds {
            let s = view_a.index();
            if first_seen[s] >= 0 {
                // Cycle detected: rounds [first_seen[s], round) repeat forever.
                let start = first_seen[s] as usize;
                let cycle_len = (round as usize - start) as u32;
                let (fa0, fb0, ca0, cb0) = prefix[start];
                let cycle_fa = fitness_a - fa0;
                let cycle_fb = fitness_b - fb0;
                let cycle_ca = coop_a - ca0;
                let cycle_cb = coop_b - cb0;
                let remaining = self.rounds - round;
                let full_cycles = remaining / cycle_len;
                fitness_a += cycle_fa * full_cycles as f64;
                fitness_b += cycle_fb * full_cycles as f64;
                coop_a += cycle_ca * full_cycles;
                coop_b += cycle_cb * full_cycles;
                let leftover = remaining % cycle_len;
                // Replay the first `leftover` rounds of the cycle.
                let mut v = StateIndex(s as u32);
                for _ in 0..leftover {
                    let (fa, fb, ca, cb, next) = Self::step_pure(a, b, space, v, table);
                    fitness_a += fa;
                    fitness_b += fb;
                    coop_a += ca;
                    coop_b += cb;
                    v = next;
                }
                break;
            }
            first_seen[s] = round as i64;
            prefix.push((fitness_a, fitness_b, coop_a, coop_b));

            let (fa, fb, ca, cb, next) = Self::step_pure(a, b, space, view_a, table);
            fitness_a += fa;
            fitness_b += fb;
            coop_a += ca;
            coop_b += cb;
            view_a = next;
            round += 1;
        }

        Ok(GameOutcome {
            fitness_a,
            fitness_b,
            cooperations_a: coop_a,
            cooperations_b: coop_b,
            rounds: self.rounds,
        })
    }

    /// One deterministic round: both strategies read their move from A's view
    /// (B uses the perspective swap), payoffs accrue, and A's view advances.
    #[inline]
    fn step_pure(
        a: &PureStrategy,
        b: &PureStrategy,
        space: &StateSpace,
        view_a: StateIndex,
        table: &[f64; 4],
    ) -> (f64, f64, u32, u32, StateIndex) {
        let view_b = space.swap_perspective(view_a);
        let move_a = a.move_for(view_a);
        let move_b = b.move_for(view_b);
        let bits_a = ((move_a.bit() << 1) | move_b.bit()) as usize;
        let bits_b = ((move_b.bit() << 1) | move_a.bit()) as usize;
        (
            table[bits_a],
            table[bits_b],
            move_a.is_cooperation() as u32,
            move_b.is_cooperation() as u32,
            space.advance(view_a, move_a, move_b),
        )
    }

    /// Plays a game and returns the full move trace — handy for debugging,
    /// teaching examples and tests.
    pub fn play_with_trace<R: Rng + ?Sized>(
        &self,
        a: &StrategyKind,
        b: &StrategyKind,
        rng: &mut R,
    ) -> EgdResult<(GameOutcome, Vec<(Move, Move)>)> {
        self.check_memory(a.memory(), b.memory())?;
        let space = &self.space;
        let mut view_a = StateIndex::INITIAL;
        let mut view_b = StateIndex::INITIAL;
        let mut trace = Vec::with_capacity(self.rounds as usize);
        let mut outcome = GameOutcome {
            fitness_a: 0.0,
            fitness_b: 0.0,
            cooperations_a: 0,
            cooperations_b: 0,
            rounds: self.rounds,
        };
        for _ in 0..self.rounds {
            let mut move_a = a.decide(view_a, rng);
            let mut move_b = b.decide(view_b, rng);
            if self.noise > 0.0 {
                if rng.gen_bool(self.noise) {
                    move_a = move_a.flipped();
                }
                if rng.gen_bool(self.noise) {
                    move_b = move_b.flipped();
                }
            }
            let (pa, pb) = self.payoffs.pair_payoffs(move_a, move_b);
            outcome.fitness_a += pa;
            outcome.fitness_b += pb;
            outcome.cooperations_a += move_a.is_cooperation() as u32;
            outcome.cooperations_b += move_b.is_cooperation() as u32;
            trace.push((move_a, move_b));
            view_a = space.advance(view_a, move_a, move_b);
            view_b = space.advance(view_b, move_b, move_a);
        }
        Ok((outcome, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamKind};
    use crate::strategy::{MixedStrategy, NamedStrategy};

    fn kind(named: NamedStrategy) -> StrategyKind {
        StrategyKind::Pure(named.to_pure())
    }

    #[test]
    fn paper_defaults() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        assert_eq!(game.rounds(), 200);
        assert_eq!(*game.payoffs(), PayoffMatrix::PAPER);
        assert_eq!(game.noise(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(IpdGame::new(MemoryDepth::ONE, 0, PayoffMatrix::PAPER, 0.0).is_err());
        assert!(IpdGame::new(MemoryDepth::ONE, 10, PayoffMatrix::PAPER, 1.5).is_err());
        assert!(IpdGame::new(MemoryDepth::ONE, 10, PayoffMatrix::PAPER, 0.05).is_ok());
    }

    #[test]
    fn allc_vs_alld_payoffs() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let allc = NamedStrategy::AlwaysCooperate.to_pure();
        let alld = NamedStrategy::AlwaysDefect.to_pure();
        let outcome = game.play_pure(&allc, &alld).unwrap();
        // ALLC is the sucker every round (0), ALLD gets the temptation (4).
        assert_eq!(outcome.fitness_a, 0.0);
        assert_eq!(outcome.fitness_b, 4.0 * 200.0);
        assert_eq!(outcome.cooperations_a, 200);
        assert_eq!(outcome.cooperations_b, 0);
    }

    #[test]
    fn mutual_cooperation_between_tft_players() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let tft = NamedStrategy::TitForTat.to_pure();
        let outcome = game.play_pure(&tft, &tft).unwrap();
        assert_eq!(outcome.fitness_a, 3.0 * 200.0);
        assert_eq!(outcome.fitness_b, 3.0 * 200.0);
        assert_eq!(outcome.cooperation_rate(), 1.0);
    }

    #[test]
    fn tft_vs_alld_defects_after_first_round() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let tft = NamedStrategy::TitForTat.to_pure();
        let alld = NamedStrategy::AlwaysDefect.to_pure();
        let outcome = game.play_pure(&tft, &alld).unwrap();
        // Round 1: TFT cooperates (S=0), ALLD defects (T=4).
        // All later rounds: mutual defection (P=1 each).
        assert_eq!(outcome.fitness_a, 0.0 + 199.0);
        assert_eq!(outcome.fitness_b, 4.0 + 199.0);
        assert_eq!(outcome.cooperations_a, 1);
        assert_eq!(outcome.cooperations_b, 0);
    }

    #[test]
    fn play_pure_matches_generic_play_for_deterministic_strategies() {
        let game = IpdGame::paper_defaults(MemoryDepth::TWO);
        let mut rng = stream(17, StreamKind::GamePlay, 0);
        for seed in 0..30u64 {
            let mut srng = stream(seed, StreamKind::InitialStrategy, seed);
            let a = PureStrategy::random(MemoryDepth::TWO, &mut srng);
            let b = PureStrategy::random(MemoryDepth::TWO, &mut srng);
            let fast = game.play_pure(&a, &b).unwrap();
            let slow = game
                .play(&StrategyKind::Pure(a), &StrategyKind::Pure(b), &mut rng)
                .unwrap();
            assert!(
                (fast.fitness_a - slow.fitness_a).abs() < 1e-9,
                "seed {seed}"
            );
            assert!(
                (fast.fitness_b - slow.fitness_b).abs() < 1e-9,
                "seed {seed}"
            );
            assert_eq!(fast.cooperations_a, slow.cooperations_a);
            assert_eq!(fast.cooperations_b, slow.cooperations_b);
        }
    }

    #[test]
    fn cycle_detection_handles_long_games() {
        // A 10^6-round game between random memory-three strategies must be
        // exact and fast thanks to cycle closure.
        let mut srng = stream(3, StreamKind::InitialStrategy, 0);
        let a = PureStrategy::random(MemoryDepth::THREE, &mut srng);
        let b = PureStrategy::random(MemoryDepth::THREE, &mut srng);
        let long = IpdGame::new(MemoryDepth::THREE, 1_000_000, PayoffMatrix::PAPER, 0.0).unwrap();
        let outcome = long.play_pure(&a, &b).unwrap();
        // The average per-round payoff must lie within the payoff range.
        let avg_a = outcome.fitness_a / 1_000_000.0;
        assert!((0.0..=4.0).contains(&avg_a));
        // Cross-check against the generic engine on a short prefix scaled up
        // is not exact (transient), so instead verify internal consistency:
        // total fitness of both players per round is between 2P and 2R..T+S range.
        let total_avg = (outcome.fitness_a + outcome.fitness_b) / 1_000_000.0;
        assert!((2.0..=6.0).contains(&total_avg));
    }

    #[test]
    fn play_pure_rejects_noise_and_memory_mismatch() {
        let noisy = IpdGame::new(MemoryDepth::ONE, 10, PayoffMatrix::PAPER, 0.1).unwrap();
        let tft = NamedStrategy::TitForTat.to_pure();
        assert!(noisy.play_pure(&tft, &tft).is_err());
        let game = IpdGame::paper_defaults(MemoryDepth::TWO);
        assert!(game.play_pure(&tft, &tft).is_err());
    }

    #[test]
    fn noise_breaks_tft_cooperation() {
        // With errors, two TFT players fall into defection spirals and earn
        // less than perfect mutual cooperation — the motivation for WSLS.
        let mut rng = stream(5, StreamKind::GamePlay, 1);
        let game = IpdGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.05).unwrap();
        let tft = kind(NamedStrategy::TitForTat);
        let mut total = 0.0;
        let trials = 50;
        for _ in 0..trials {
            total += game.play(&tft, &tft, &mut rng).unwrap().fitness_a;
        }
        let mean = total / trials as f64;
        assert!(
            mean < 0.9 * 600.0,
            "mean fitness {mean} too close to noise-free value"
        );
    }

    #[test]
    fn wsls_recovers_from_noise_better_than_tft() {
        let mut rng = stream(6, StreamKind::GamePlay, 2);
        let game = IpdGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.02).unwrap();
        let tft = kind(NamedStrategy::TitForTat);
        let wsls = kind(NamedStrategy::WinStayLoseShift);
        let trials = 200;
        let mut tft_total = 0.0;
        let mut wsls_total = 0.0;
        for _ in 0..trials {
            tft_total += game.play(&tft, &tft, &mut rng).unwrap().fitness_a;
            wsls_total += game.play(&wsls, &wsls, &mut rng).unwrap().fitness_a;
        }
        assert!(
            wsls_total > tft_total,
            "WSLS self-play ({wsls_total}) should outperform TFT self-play ({tft_total}) under noise"
        );
    }

    /// Plays the same pairing through the paper-literal and compiled kernels
    /// on clone streams and asserts byte-identical outcomes plus identical
    /// final stream positions.
    fn assert_compiled_matches(game: &IpdGame, a: &StrategyKind, b: &StrategyKind, seed: u64) {
        use rand::RngCore;
        let mut slow_rng = stream(seed, StreamKind::GamePlay, 11);
        let mut fast_rng = stream(seed, StreamKind::GamePlay, 11);
        let slow = game.play(a, b, &mut slow_rng).unwrap();
        let ca = CompiledStrategy::compile(a);
        let cb = CompiledStrategy::compile(b);
        let fast = game.play_compiled(&ca, &cb, &mut fast_rng).unwrap();
        assert_eq!(slow.fitness_a.to_bits(), fast.fitness_a.to_bits());
        assert_eq!(slow.fitness_b.to_bits(), fast.fitness_b.to_bits());
        assert_eq!(slow.cooperations_a, fast.cooperations_a);
        assert_eq!(slow.cooperations_b, fast.cooperations_b);
        assert_eq!(slow.rounds, fast.rounds);
        assert_eq!(
            slow_rng.next_u64(),
            fast_rng.next_u64(),
            "kernels consumed different numbers of draws"
        );
    }

    #[test]
    fn compiled_kernel_matches_play_for_mixed_pairs() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let gtft = StrategyKind::Mixed(MixedStrategy::generous_tit_for_tat(0.3).unwrap());
        let alld = kind(NamedStrategy::AlwaysDefect);
        assert_compiled_matches(&game, &gtft, &alld, 3);
        assert_compiled_matches(&game, &alld, &gtft, 4);
        assert_compiled_matches(&game, &gtft, &gtft, 5);
    }

    #[test]
    fn compiled_kernel_matches_play_under_noise() {
        let game = IpdGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.05).unwrap();
        let tft = kind(NamedStrategy::TitForTat);
        let wsls = kind(NamedStrategy::WinStayLoseShift);
        assert_compiled_matches(&game, &tft, &wsls, 6);
        // Full-noise edge case: gen_bool(1.0) still draws every round.
        let chaos = IpdGame::new(MemoryDepth::ONE, 50, PayoffMatrix::PAPER, 1.0).unwrap();
        assert_compiled_matches(&chaos, &tft, &wsls, 7);
    }

    #[test]
    fn compiled_kernel_matches_play_at_memory_two() {
        let game = IpdGame::new(MemoryDepth::TWO, 200, PayoffMatrix::PAPER, 0.0).unwrap();
        let mut srng = stream(21, StreamKind::InitialStrategy, 2);
        for _ in 0..10 {
            let a = StrategyKind::Mixed(MixedStrategy::random(MemoryDepth::TWO, &mut srng));
            let b = StrategyKind::Pure(PureStrategy::random(MemoryDepth::TWO, &mut srng));
            assert_compiled_matches(&game, &a, &b, 8);
        }
    }

    /// Plays `pairs` through the per-game compiled kernel and through
    /// [`IpdGame::play_batched_width`] at every supported width, asserting
    /// bit-identical outcomes *and* final stream positions per lane.
    fn assert_batched_matches(game: &IpdGame, pairs: &[(StrategyKind, StrategyKind)], seed: u64) {
        use crate::rng::{substream_state, StreamKind};
        let compiled: Vec<(CompiledStrategy, CompiledStrategy)> = pairs
            .iter()
            .map(|(a, b)| (CompiledStrategy::compile(a), CompiledStrategy::compile(b)))
            .collect();
        let mut batch = BatchedDraws::new();
        for width in [1usize, 2, 4, 8, 16] {
            batch.begin(game.memory().num_states());
            for (k, (ca, cb)) in compiled.iter().enumerate() {
                let state = substream_state(seed, StreamKind::GamePlay, k as u64, 0);
                batch.push_game(CompiledPair::new(ca, cb), state);
            }
            game.play_batched_width(&mut batch, width).unwrap();
            for (k, (ca, cb)) in compiled.iter().enumerate() {
                let state = substream_state(seed, StreamKind::GamePlay, k as u64, 0);
                let mut rng = crate::rng::SimRng::new(state);
                let reference = game.play_compiled(ca, cb, &mut rng).unwrap();
                let batched = game.batch_outcome(&batch, k);
                assert_eq!(
                    reference.fitness_a.to_bits(),
                    batched.fitness_a.to_bits(),
                    "lane {k} width {width}"
                );
                assert_eq!(reference.fitness_b.to_bits(), batched.fitness_b.to_bits());
                assert_eq!(reference.cooperations_a, batched.cooperations_a);
                assert_eq!(reference.cooperations_b, batched.cooperations_b);
                assert_eq!(
                    rng.raw_state(),
                    batch.final_rng_state(k),
                    "lane {k} width {width} consumed a different number of draws"
                );
            }
        }
    }

    fn sample_pairs(memory: MemoryDepth, n: usize, seed: u64) -> Vec<(StrategyKind, StrategyKind)> {
        use crate::strategy::PureStrategy;
        let mut srng = stream(seed, StreamKind::InitialStrategy, 5);
        (0..n)
            .map(|i| {
                let a = if i % 3 == 0 {
                    StrategyKind::Pure(PureStrategy::random(memory, &mut srng))
                } else {
                    StrategyKind::Mixed(MixedStrategy::random(memory, &mut srng))
                };
                let b = if i % 2 == 0 {
                    StrategyKind::Mixed(MixedStrategy::random(memory, &mut srng))
                } else {
                    StrategyKind::Pure(PureStrategy::random(memory, &mut srng))
                };
                (a, b)
            })
            .collect()
    }

    #[test]
    fn batched_kernel_matches_per_game_kernel() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        assert_batched_matches(&game, &sample_pairs(MemoryDepth::ONE, 13, 31), 101);
        let m2 = IpdGame::new(MemoryDepth::TWO, 150, PayoffMatrix::PAPER, 0.0).unwrap();
        assert_batched_matches(&m2, &sample_pairs(MemoryDepth::TWO, 9, 32), 102);
    }

    #[test]
    fn batched_kernel_matches_per_game_kernel_under_noise() {
        let game = IpdGame::new(MemoryDepth::ONE, 120, PayoffMatrix::PAPER, 0.05).unwrap();
        assert_batched_matches(&game, &sample_pairs(MemoryDepth::ONE, 17, 33), 103);
    }

    #[test]
    fn batched_kernel_handles_empty_and_single_batches() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let mut batch = BatchedDraws::new();
        batch.begin(game.memory().num_states());
        assert!(batch.is_empty());
        game.play_batched(&mut batch).unwrap();
        assert_batched_matches(&game, &sample_pairs(MemoryDepth::ONE, 1, 34), 104);
    }

    #[test]
    fn batched_kernel_rejects_bad_width_and_memory() {
        let game = IpdGame::paper_defaults(MemoryDepth::TWO);
        let tft = CompiledStrategy::compile(&kind(NamedStrategy::TitForTat));
        let mut batch = BatchedDraws::new();
        batch.begin(4);
        batch.push_game(CompiledPair::new(&tft, &tft), 7);
        // Memory-ONE tables in a memory-TWO game.
        assert!(game.play_batched(&mut batch).is_err());
        let m1 = IpdGame::paper_defaults(MemoryDepth::ONE);
        assert!(m1.play_batched_width(&mut batch, 3).is_err());
        assert!(m1.play_batched_width(&mut batch, 32).is_err());
        assert!(m1.play_batched_width(&mut batch, 0).is_err());
    }

    #[test]
    fn compiled_kernel_rejects_memory_mismatch() {
        let game = IpdGame::paper_defaults(MemoryDepth::TWO);
        let tft = CompiledStrategy::compile(&kind(NamedStrategy::TitForTat));
        let mut rng = stream(1, StreamKind::GamePlay, 0);
        assert!(game.play_compiled(&tft, &tft, &mut rng).is_err());
    }

    #[test]
    fn mixed_strategy_games_are_reproducible_with_same_stream() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let gtft = StrategyKind::Mixed(MixedStrategy::generous_tit_for_tat(0.3).unwrap());
        let alld = kind(NamedStrategy::AlwaysDefect);
        let mut rng1 = stream(9, StreamKind::GamePlay, 4);
        let mut rng2 = stream(9, StreamKind::GamePlay, 4);
        let o1 = game.play(&gtft, &alld, &mut rng1).unwrap();
        let o2 = game.play(&gtft, &alld, &mut rng2).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn trace_length_and_consistency() {
        let game = IpdGame::new(MemoryDepth::ONE, 10, PayoffMatrix::PAPER, 0.0).unwrap();
        let mut rng = stream(2, StreamKind::GamePlay, 7);
        let (outcome, trace) = game
            .play_with_trace(
                &kind(NamedStrategy::TitForTat),
                &kind(NamedStrategy::AlwaysDefect),
                &mut rng,
            )
            .unwrap();
        assert_eq!(trace.len(), 10);
        let coop_a = trace.iter().filter(|(a, _)| a.is_cooperation()).count() as u32;
        assert_eq!(coop_a, outcome.cooperations_a);
        // TFT's first move is cooperation, all later moves mirror ALLD.
        assert_eq!(trace[0].0, Move::Cooperate);
        assert!(trace[1..].iter().all(|(a, _)| a.is_defection()));
    }

    #[test]
    fn swapped_outcome() {
        let o = GameOutcome {
            fitness_a: 1.0,
            fitness_b: 2.0,
            cooperations_a: 3,
            cooperations_b: 4,
            rounds: 5,
        };
        let s = o.swapped();
        assert_eq!(s.fitness_a, 2.0);
        assert_eq!(s.fitness_b, 1.0);
        assert_eq!(s.cooperations_a, 4);
        assert_eq!(s.cooperations_b, 3);
    }

    #[test]
    fn is_deterministic_for() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let pure = kind(NamedStrategy::TitForTat);
        let mixed = StrategyKind::Mixed(MixedStrategy::uniform(MemoryDepth::ONE, 0.5).unwrap());
        assert!(game.is_deterministic_for(&pure, &pure));
        assert!(!game.is_deterministic_for(&pure, &mixed));
        let noisy = game.with_noise(0.01).unwrap();
        assert!(!noisy.is_deterministic_for(&pure, &pure));
    }
}
