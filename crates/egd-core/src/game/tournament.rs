//! Axelrod-style round-robin tournaments.
//!
//! The paper motivates its population model with Axelrod's famous computer
//! tournaments (§III-B): every submitted strategy plays an Iterated
//! Prisoner's Dilemma against every other (and, in Axelrod's setup, against a
//! copy of itself), and the total score decides the winner. This module
//! provides that tournament as a first-class object — useful both as a
//! teaching tool (the `strategy_explorer` example) and as a building block
//! for strategy-screening experiments on top of the population engine.

use crate::error::{EgdError, EgdResult};
use crate::game::{IpdGame, MarkovGame};
use crate::rng::{substream, StreamKind};
use crate::strategy::{Strategy, StrategyKind};
use serde::{Deserialize, Serialize};

/// How match payoffs are obtained in a tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MatchMode {
    /// Play the rounds explicitly, averaging over `repetitions` matches
    /// (Axelrod's original protocol ran five matches per pairing).
    Simulated {
        /// Number of repeated matches to average per pairing.
        repetitions: u32,
    },
    /// Use the exact expected payoff from the Markov analyser (no sampling
    /// error; equivalent to infinitely many repetitions).
    #[default]
    Exact,
}

/// The result of one participant in a tournament.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentEntry {
    /// Index of the participant in the input list.
    pub participant: usize,
    /// Total score accumulated over all pairings.
    pub total_score: f64,
    /// Mean score per pairing.
    pub mean_score: f64,
    /// Number of pairings won (strictly higher payoff than the opponent).
    pub wins: usize,
    /// Number of pairings lost.
    pub losses: usize,
    /// Number of drawn pairings.
    pub draws: usize,
}

/// Full results of a round-robin tournament.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentResult {
    /// One entry per participant, sorted by descending total score.
    pub ranking: Vec<TournamentEntry>,
    /// `payoff_matrix[i][j]` is participant `i`'s (average) payoff when
    /// playing participant `j`.
    pub payoff_matrix: Vec<Vec<f64>>,
    /// Whether self-play pairings were included.
    pub include_self_play: bool,
}

impl TournamentResult {
    /// The index of the winning participant.
    pub fn winner(&self) -> usize {
        self.ranking[0].participant
    }

    /// The entry of a given participant.
    pub fn entry_of(&self, participant: usize) -> Option<&TournamentEntry> {
        self.ranking.iter().find(|e| e.participant == participant)
    }
}

/// A round-robin Iterated Prisoner's Dilemma tournament.
#[derive(Debug, Clone)]
pub struct Tournament {
    game: IpdGame,
    markov: MarkovGame,
    mode: MatchMode,
    include_self_play: bool,
    seed: u64,
}

impl Tournament {
    /// Creates a tournament with the given game parameters.
    pub fn new(
        game: IpdGame,
        mode: MatchMode,
        include_self_play: bool,
        seed: u64,
    ) -> EgdResult<Self> {
        if let MatchMode::Simulated { repetitions } = mode {
            if repetitions == 0 {
                return Err(EgdError::InvalidConfig {
                    reason: "a simulated tournament needs at least one repetition".to_string(),
                });
            }
        }
        let markov = MarkovGame::new(game.memory(), game.rounds(), *game.payoffs(), game.noise())?;
        Ok(Tournament {
            game,
            markov,
            mode,
            include_self_play,
            seed,
        })
    }

    /// Axelrod-style defaults: the configured game, exact payoffs, self-play
    /// included (as in the original tournament, where every program also met
    /// its own twin).
    pub fn axelrod(game: IpdGame) -> EgdResult<Self> {
        Tournament::new(game, MatchMode::Exact, true, 0)
    }

    /// The match mode.
    pub fn mode(&self) -> MatchMode {
        self.mode
    }

    /// Average payoffs `(to_a, to_b)` of one pairing.
    fn pairing_payoffs(
        &self,
        i: usize,
        a: &StrategyKind,
        j: usize,
        b: &StrategyKind,
    ) -> EgdResult<(f64, f64)> {
        match self.mode {
            MatchMode::Exact => {
                let e = self.markov.finite_horizon(a, b)?;
                Ok((e.payoff_a, e.payoff_b))
            }
            MatchMode::Simulated { repetitions } => {
                let mut total_a = 0.0;
                let mut total_b = 0.0;
                for rep in 0..repetitions {
                    let pair_id = ((i as u64) << 24) ^ ((j as u64) << 8) ^ rep as u64;
                    let mut rng = substream(self.seed, StreamKind::GamePlay, pair_id, rep as u64);
                    let outcome = self.game.play(a, b, &mut rng)?;
                    total_a += outcome.fitness_a;
                    total_b += outcome.fitness_b;
                }
                Ok((total_a / repetitions as f64, total_b / repetitions as f64))
            }
        }
    }

    /// Runs the round robin over the given participants.
    pub fn run(&self, participants: &[StrategyKind]) -> EgdResult<TournamentResult> {
        if participants.len() < 2 {
            return Err(EgdError::InvalidConfig {
                reason: "a tournament needs at least two participants".to_string(),
            });
        }
        for (i, p) in participants.iter().enumerate() {
            if p.memory() != self.game.memory() {
                return Err(EgdError::InvalidConfig {
                    reason: format!(
                        "participant {i} has {} but the tournament game is {}",
                        p.memory(),
                        self.game.memory()
                    ),
                });
            }
        }
        let n = participants.len();
        let mut payoff_matrix = vec![vec![0.0; n]; n];
        let mut entries: Vec<TournamentEntry> = (0..n)
            .map(|participant| TournamentEntry {
                participant,
                total_score: 0.0,
                mean_score: 0.0,
                wins: 0,
                losses: 0,
                draws: 0,
            })
            .collect();

        for i in 0..n {
            for j in i..n {
                if i == j && !self.include_self_play {
                    continue;
                }
                let (to_i, to_j) =
                    self.pairing_payoffs(i, &participants[i], j, &participants[j])?;
                payoff_matrix[i][j] = to_i;
                payoff_matrix[j][i] = to_j;
                entries[i].total_score += to_i;
                if i != j {
                    entries[j].total_score += to_j;
                } else {
                    // Self play contributes once to the diagonal participant.
                }
                if i != j {
                    if to_i > to_j {
                        entries[i].wins += 1;
                        entries[j].losses += 1;
                    } else if to_j > to_i {
                        entries[j].wins += 1;
                        entries[i].losses += 1;
                    } else {
                        entries[i].draws += 1;
                        entries[j].draws += 1;
                    }
                }
            }
        }

        let pairings_per_participant = (n - 1 + usize::from(self.include_self_play)) as f64;
        for entry in &mut entries {
            entry.mean_score = entry.total_score / pairings_per_participant;
        }
        entries.sort_by(|a, b| {
            b.total_score
                .partial_cmp(&a.total_score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.participant.cmp(&b.participant))
        });
        Ok(TournamentResult {
            ranking: entries,
            payoff_matrix,
            include_self_play: self.include_self_play,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::PayoffMatrix;
    use crate::state::MemoryDepth;
    use crate::strategy::{MixedStrategy, NamedStrategy, PureStrategy};

    fn classics() -> Vec<StrategyKind> {
        [
            NamedStrategy::AlwaysCooperate,
            NamedStrategy::AlwaysDefect,
            NamedStrategy::TitForTat,
            NamedStrategy::WinStayLoseShift,
            NamedStrategy::GrimTrigger,
        ]
        .into_iter()
        .map(|n| StrategyKind::Pure(n.to_pure()))
        .collect()
    }

    #[test]
    fn validation() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        assert!(Tournament::new(game, MatchMode::Simulated { repetitions: 0 }, true, 0).is_err());
        let tournament = Tournament::axelrod(game).unwrap();
        assert!(tournament.run(&classics()[..1]).is_err());
        let deep = StrategyKind::Pure(PureStrategy::all_defect(MemoryDepth::TWO));
        assert!(tournament.run(&[deep.clone(), deep]).is_err());
    }

    #[test]
    fn noise_free_round_robin_is_won_by_a_retaliator() {
        // Without errors, the nice-but-retaliating strategies (GRIM, TFT,
        // WSLS) head the table and ALLD places behind them — the classic
        // Axelrod result that unconditional defection does not win round
        // robins dominated by reciprocators.
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let tournament = Tournament::axelrod(game).unwrap();
        let result = tournament.run(&classics()).unwrap();
        let winner = result.winner();
        // Winner is one of GRIM (4), TFT (2) or WSLS (3).
        assert!(
            [2usize, 3, 4].contains(&winner),
            "winner was participant {winner}"
        );
        // ALLD (index 1) is not the winner.
        assert_ne!(winner, 1);
        // The payoff matrix diagonal holds self-play payoffs: ALLC self-play
        // earns full mutual cooperation.
        assert!((result.payoff_matrix[0][0] - 600.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_round_robin_promotes_wsls_over_tft() {
        let game = IpdGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.02).unwrap();
        let tournament = Tournament::new(game, MatchMode::Exact, true, 0).unwrap();
        let result = tournament.run(&classics()).unwrap();
        let wsls_entry = result.entry_of(3).unwrap();
        let tft_entry = result.entry_of(2).unwrap();
        assert!(
            wsls_entry.total_score > tft_entry.total_score,
            "WSLS ({}) should out-score TFT ({}) under noise",
            wsls_entry.total_score,
            tft_entry.total_score
        );
    }

    #[test]
    fn alld_always_beats_or_draws_every_single_pairing() {
        // ALLD never loses an individual pairing (it cannot be out-scored in
        // a single match) even though it does not win the tournament —
        // exactly the paper's point that TFT "will not do better than its
        // opponent" in any single game yet wins overall.
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let tournament = Tournament::new(game, MatchMode::Exact, false, 0).unwrap();
        let result = tournament.run(&classics()).unwrap();
        let alld = result.entry_of(1).unwrap();
        assert_eq!(alld.losses, 0);
        let tft = result.entry_of(2).unwrap();
        assert_eq!(tft.wins, 0, "TFT never strictly wins a pairing");
    }

    #[test]
    fn simulated_mode_matches_exact_mode_for_deterministic_strategies() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let exact = Tournament::new(game, MatchMode::Exact, true, 0)
            .unwrap()
            .run(&classics())
            .unwrap();
        let simulated = Tournament::new(game, MatchMode::Simulated { repetitions: 1 }, true, 0)
            .unwrap()
            .run(&classics())
            .unwrap();
        for (a, b) in exact.ranking.iter().zip(&simulated.ranking) {
            assert_eq!(a.participant, b.participant);
            assert!((a.total_score - b.total_score).abs() < 1e-6);
        }
    }

    #[test]
    fn simulated_mode_is_reproducible_for_mixed_strategies() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let participants = vec![
            StrategyKind::Mixed(MixedStrategy::generous_tit_for_tat(0.2).unwrap()),
            StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure()),
            StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure()),
        ];
        let run = |seed| {
            Tournament::new(game, MatchMode::Simulated { repetitions: 3 }, false, seed)
                .unwrap()
                .run(&participants)
                .unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).payoff_matrix, run(6).payoff_matrix);
    }

    #[test]
    fn mean_scores_divide_by_pairings() {
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let result = Tournament::new(game, MatchMode::Exact, false, 0)
            .unwrap()
            .run(&classics())
            .unwrap();
        for entry in &result.ranking {
            assert!((entry.mean_score - entry.total_score / 4.0).abs() < 1e-9);
        }
        assert!(!result.include_self_play);
    }
}
