//! Game engines: the Iterated Prisoner's Dilemma simulator, the paper-literal
//! "naive" implementation, and an exact Markov-chain payoff calculator.
//!
//! * [`IpdGame`] is the production engine: packed-state lookups, optional
//!   execution noise, deterministic fast path for pure strategies.
//! * [`naive`] re-implements the paper's pseudo-code literally (a linear
//!   `find_state` search over an explicit state table) — the "Original" rung
//!   of the Fig. 3 optimisation ladder and a cross-check oracle for tests.
//! * [`markov`] computes expected payoffs exactly by evolving the joint-state
//!   distribution of the Markov chain induced by two (possibly noisy)
//!   strategies.
//! * [`compiled`] is the stochastic rung of the optimisation ladder:
//!   strategies compiled into integer-threshold tables that
//!   [`IpdGame::play_compiled`] executes with the exact RNG draw sequence of
//!   the paper-literal loop.

pub mod compiled;
pub mod ipd;
pub mod markov;
pub mod naive;
pub mod tournament;

pub use compiled::{BatchedDraws, CompiledPair, CompiledPairTable, CompiledStrategy};
pub use ipd::{GameOutcome, IpdGame};
pub use markov::MarkovGame;
pub use tournament::{MatchMode, Tournament, TournamentResult};

use serde::{Deserialize, Serialize};

/// Aggregate statistics of one or more games, used by SSet fitness
/// accumulation and by the cooperation metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GameStats {
    /// Total payoff accumulated by the focal player.
    pub my_fitness: f64,
    /// Total payoff accumulated by the opponent.
    pub opponent_fitness: f64,
    /// Number of rounds played.
    pub rounds: u64,
    /// Number of rounds in which the focal player cooperated.
    pub my_cooperations: u64,
    /// Number of rounds in which the opponent cooperated.
    pub opponent_cooperations: u64,
}

impl GameStats {
    /// Merges the statistics of another game into this one.
    pub fn merge(&mut self, other: &GameStats) {
        self.my_fitness += other.my_fitness;
        self.opponent_fitness += other.opponent_fitness;
        self.rounds += other.rounds;
        self.my_cooperations += other.my_cooperations;
        self.opponent_cooperations += other.opponent_cooperations;
    }

    /// Fraction of rounds in which the focal player cooperated.
    pub fn my_cooperation_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.my_cooperations as f64 / self.rounds as f64
        }
    }

    /// Fraction of rounds in which either player cooperated, averaged over
    /// both players.
    pub fn joint_cooperation_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.my_cooperations + self.opponent_cooperations) as f64 / (2 * self.rounds) as f64
        }
    }

    /// Mean per-round payoff of the focal player.
    pub fn my_mean_payoff(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.my_fitness / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = GameStats {
            my_fitness: 10.0,
            opponent_fitness: 5.0,
            rounds: 4,
            my_cooperations: 2,
            opponent_cooperations: 1,
        };
        let b = GameStats {
            my_fitness: 1.0,
            opponent_fitness: 2.0,
            rounds: 1,
            my_cooperations: 1,
            opponent_cooperations: 0,
        };
        a.merge(&b);
        assert_eq!(a.my_fitness, 11.0);
        assert_eq!(a.opponent_fitness, 7.0);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.my_cooperations, 3);
        assert_eq!(a.opponent_cooperations, 1);
    }

    #[test]
    fn rates_handle_zero_rounds() {
        let empty = GameStats::default();
        assert_eq!(empty.my_cooperation_rate(), 0.0);
        assert_eq!(empty.joint_cooperation_rate(), 0.0);
        assert_eq!(empty.my_mean_payoff(), 0.0);
    }

    #[test]
    fn rates_compute_fractions() {
        let stats = GameStats {
            my_fitness: 6.0,
            opponent_fitness: 6.0,
            rounds: 4,
            my_cooperations: 2,
            opponent_cooperations: 4,
        };
        assert_eq!(stats.my_cooperation_rate(), 0.5);
        assert_eq!(stats.joint_cooperation_rate(), 0.75);
        assert_eq!(stats.my_mean_payoff(), 1.5);
    }
}
