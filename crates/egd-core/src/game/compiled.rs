//! Compiled strategy tables: the stochastic rung of the Fig. 3 kernel ladder.
//!
//! The paper-literal stochastic engine ([`IpdGame::play`]) pays, every round,
//! for dynamic [`StrategyKind`] dispatch, a bounds-checked probability
//! lookup, a float multiply-and-compare inside `gen_bool`, and *two*
//! `StateSpace::advance` calls (one per player's view). None of that is
//! necessary: a strategy's per-state cooperation probabilities can be
//! compiled once into a dense table of exact integer thresholds, after which
//! a round is `draw u64 → integer compare → packed-state advance`, and B's
//! view never needs to be tracked because B's table can be pre-permuted
//! through the perspective swap ([`StateSpace::swap_perspective`]) so it is
//! indexed directly by A's view.
//!
//! # Bit-exact threshold conversion
//!
//! The conversion is **provably bit-identical** to the vendored `rand`
//! pipeline the paper-literal loop uses. `Strategy::decide` draws nothing
//! for `p >= 1.0` / `p <= 0.0` and otherwise calls `gen_bool(p)`, which
//! draws `m = next_u64() >> 11` (53 uniform mantissa bits) and tests
//!
//! ```text
//! (m as f64) * 2^-53 < p
//! ```
//!
//! Both the `u64 → f64` conversion (`m < 2^53` fits the mantissa) and the
//! scaling by the power of two `2^-53` are *exact* in IEEE-754 double
//! precision, so the float test equals the real-number comparison
//! `m < p·2^53`, which for integer `m` is exactly `m < ceil(p·2^53)`
//! (`p·2^53` is itself exact: multiplying a finite double by `2^53` only
//! shifts its exponent). The compiled kernel therefore stores
//! `ceil(p·2^53)` per state and performs one integer compare per draw —
//! consuming the **exact same RNG draw sequence** and producing the exact
//! same moves as the paper-literal loop, which is what keeps every
//! determinism golden byte-identical. The [`crate::game`] proptest
//! equivalence suite and `tests/compiled_equivalence.rs` enforce this.

use crate::state::{MemoryDepth, StateIndex, StateSpace};
use crate::strategy::{Strategy, StrategyKind};

/// Number of low bits `rand` discards when drawing an `f64` (64 − 53).
pub const DRAW_SHIFT: u32 = 11;

/// `2^53` as a float — the scale of the 53-bit uniform draw.
const TWO_POW_53: f64 = 9_007_199_254_740_992.0;

/// Sentinel threshold: defect in this state without consuming a draw
/// (`p <= 0.0` in `Strategy::decide`).
pub const THR_NEVER: u64 = 0;

/// Sentinel threshold: cooperate in this state without consuming a draw
/// (`p >= 1.0` in `Strategy::decide`).
pub const THR_ALWAYS: u64 = u64::MAX;

/// Compiles a per-state cooperation probability into its decision threshold.
///
/// Returns [`THR_ALWAYS`] / [`THR_NEVER`] for the draw-free pure cases and
/// otherwise `ceil(p·2^53)`, which lies in `1..=2^53 - 1` and satisfies
/// `gen_bool(p) == (next_u64() >> 11) < threshold` bit-for-bit (see the
/// module docs for the proof).
#[inline]
pub fn cooperation_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        THR_ALWAYS
    } else if p <= 0.0 {
        THR_NEVER
    } else {
        // Exact: p·2^53 only shifts the exponent, ceil is exact, and the
        // result is at most 2^53 - 1 < 2^64.
        (p * TWO_POW_53).ceil() as u64
    }
}

/// Compiles a probability that is *always* drawn against (execution noise:
/// `gen_bool(p)` is called unconditionally when `noise > 0`, including for
/// `p = 1.0`). No sentinels: the threshold for `p = 1.0` is `2^53`, which
/// every 53-bit draw is below — exactly like `gen_bool(1.0)`.
#[inline]
pub fn draw_threshold(p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0, "draw_threshold needs p in (0, 1]");
    (p * TWO_POW_53).ceil() as u64
}

/// A strategy compiled for the stochastic game kernel: one decision
/// threshold per state, stored twice — indexed by the player's own view and
/// pre-permuted through the perspective swap so an opponent's table can be
/// indexed directly by the focal player's view.
///
/// Compilation is pure per-strategy work (no game parameters involved), so a
/// compiled strategy can be interned by fingerprint and shared across every
/// game of a generation (see `egd-parallel`'s interning layer).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStrategy {
    memory: MemoryDepth,
    /// `thr[s]` decides the move when the *own* view is `s`.
    thr: Vec<u64>,
    /// `thr_swapped[s]` decides the move when the *opponent's* view is `s`
    /// (i.e. `thr_swapped[s] = thr[swap_perspective(s)]`).
    thr_swapped: Vec<u64>,
    /// Whether every state is a sentinel (cached at compile time so the
    /// game loop can specialise to a draw-free decision).
    deterministic: bool,
}

impl CompiledStrategy {
    /// Compiles a strategy (pure or mixed) into its threshold tables.
    pub fn compile(strategy: &StrategyKind) -> Self {
        let memory = strategy.memory();
        let space = StateSpace::new(memory);
        let num_states = memory.num_states();
        let thr: Vec<u64> = (0..num_states)
            .map(|s| cooperation_threshold(strategy.cooperation_probability(StateIndex(s as u32))))
            .collect();
        let thr_swapped: Vec<u64> = (0..num_states)
            .map(|s| thr[space.swap_perspective(StateIndex(s as u32)).index()])
            .collect();
        let deterministic = thr.iter().all(|&t| t == THR_ALWAYS || t == THR_NEVER);
        CompiledStrategy {
            memory,
            thr,
            thr_swapped,
            deterministic,
        }
    }

    /// The memory depth the strategy plays at.
    #[inline]
    pub fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// Thresholds indexed by the player's own view.
    #[inline]
    pub fn thresholds(&self) -> &[u64] {
        &self.thr
    }

    /// Thresholds indexed by the *opponent's* view (perspective-swapped).
    #[inline]
    pub fn swapped_thresholds(&self) -> &[u64] {
        &self.thr_swapped
    }

    /// Whether the compiled strategy never consumes a draw (every state is a
    /// sentinel) — true exactly when the source strategy is deterministic.
    #[inline]
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }
}

/// A borrowed pairing of two compiled strategies, with the loop
/// specialisation (who can ever draw) decided once up front. Building one is
/// free — no per-pair tables are allocated; A plays from its own-view table
/// and B from its perspective-swapped table, both indexed by A's view.
#[derive(Debug, Clone, Copy)]
pub struct CompiledPair<'a> {
    /// A's thresholds, indexed by A's view.
    pub a_thr: &'a [u64],
    /// B's perspective-swapped thresholds, indexed by A's view.
    pub b_thr: &'a [u64],
    /// Whether A never draws (every A state is a sentinel).
    pub a_deterministic: bool,
    /// Whether B never draws.
    pub b_deterministic: bool,
}

impl<'a> CompiledPair<'a> {
    /// Pairs two compiled strategies of equal memory depth.
    pub fn new(a: &'a CompiledStrategy, b: &'a CompiledStrategy) -> Self {
        debug_assert_eq!(a.memory(), b.memory());
        CompiledPair {
            a_thr: a.thresholds(),
            b_thr: b.swapped_thresholds(),
            a_deterministic: a.is_deterministic(),
            b_deterministic: b.is_deterministic(),
        }
    }
}

/// An owned pairing of two compiled strategies with both threshold tables
/// interleaved per state in one contiguous allocation (`thr[2s]` = A's
/// own-view threshold, `thr[2s + 1]` = B's perspective-swapped one) — the
/// exact lane layout [`BatchedDraws`] uses, so pushing a lane is one dense
/// `memcpy` instead of per-element gathers. This is the unit
/// `egd-parallel`'s interner caches per fingerprint pair so repeated
/// pairings (the focal strategy of an SSet against the whole population,
/// generation after generation) skip table construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPairTable {
    num_states: usize,
    /// Interleaved thresholds: `thr[2s]` is A's at state `s`, `thr[2s + 1]`
    /// B's swapped one.
    thr: Box<[u64]>,
    a_deterministic: bool,
    b_deterministic: bool,
}

impl CompiledPairTable {
    /// Builds the dense pair table for `(a, b)` of equal memory depth.
    pub fn build(a: &CompiledStrategy, b: &CompiledStrategy) -> Self {
        debug_assert_eq!(a.memory(), b.memory());
        let num_states = a.thresholds().len();
        let mut thr = Vec::with_capacity(2 * num_states);
        for (&ta, &tb) in a.thresholds().iter().zip(b.swapped_thresholds()) {
            thr.push(ta);
            thr.push(tb);
        }
        CompiledPairTable {
            num_states,
            thr: thr.into_boxed_slice(),
            a_deterministic: a.is_deterministic(),
            b_deterministic: b.is_deterministic(),
        }
    }

    /// Number of states per player table.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The interleaved threshold lane (`[a0, b0, a1, b1, …]`), ready to be
    /// copied verbatim into a [`BatchedDraws`] lane.
    #[inline]
    pub fn interleaved_thr(&self) -> &[u64] {
        &self.thr
    }

    /// A's threshold at state `s`.
    #[inline]
    pub fn a_thr_at(&self, s: usize) -> u64 {
        self.thr[2 * s]
    }

    /// B's perspective-swapped threshold at state `s`.
    #[inline]
    pub fn b_thr_at(&self, s: usize) -> u64 {
        self.thr[2 * s + 1]
    }
}

/// The lane-parallel batch stage of the kernel ladder: K independent games
/// laid out structure-of-arrays, advanced together by
/// [`IpdGame::play_batched`](crate::game::IpdGame::play_batched).
///
/// Each lane carries its own RNG state, packed view, and accumulators, and
/// reads its thresholds from one dense lane-major table that interleaves
/// both players per state (`thr[lane * 2n + 2s]` = A, `… + 1` = B-swapped,
/// so a round touches one cache line per lane). Lanes are fully independent — the
/// batch kernel interleaves their serial 128-bit-multiply RNG chains for
/// instruction-level parallelism, but every lane consumes *exactly* the draw
/// sequence the one-game-at-a-time compiled kernel would (sentinel states
/// draw nothing, interior states draw once, noise draws are unconditional)
/// and accumulates payoffs in the same per-round order, so outcomes and
/// final stream positions are bit-identical per game. The `ceil(p·2^53)`
/// equivalence proof in the module docs is per-draw and therefore extends
/// unchanged to batched draws.
#[derive(Debug, Clone, Default)]
pub struct BatchedDraws {
    num_states: usize,
    /// Lane-major interleaved thresholds: `thr[k * 2 * num_states + 2 * s]`
    /// is A's threshold at state `s`, the next element B's swapped one.
    pub(crate) thr: Vec<u64>,
    /// Per-lane raw RNG state: the start state going in, the final stream
    /// position after [`IpdGame::play_batched`](crate::game::IpdGame::play_batched).
    pub(crate) rng_state: Vec<u128>,
    /// Per-lane packed view of player A (all-cooperation start).
    pub(crate) view: Vec<u64>,
    /// Per-lane accumulated fitness of player A.
    pub fitness_a: Vec<f64>,
    /// Per-lane accumulated fitness of player B.
    pub fitness_b: Vec<f64>,
    /// Per-lane cooperation count of player A.
    pub cooperations_a: Vec<u32>,
    /// Per-lane cooperation count of player B.
    pub cooperations_b: Vec<u32>,
}

impl BatchedDraws {
    /// Widest lane chunk the batch kernel monomorphises.
    pub const MAX_WIDTH: usize = 16;

    /// Creates an empty batch.
    pub fn new() -> Self {
        BatchedDraws::default()
    }

    /// Clears the batch and fixes the per-player table size for the games
    /// about to be pushed. Allocations are retained across generations.
    pub fn begin(&mut self, num_states: usize) {
        debug_assert!(num_states.is_power_of_two());
        self.num_states = num_states;
        self.thr.clear();
        self.rng_state.clear();
        self.view.clear();
        self.fitness_a.clear();
        self.fitness_b.clear();
        self.cooperations_a.clear();
        self.cooperations_b.clear();
    }

    /// Appends one game lane: a compiled pairing plus the raw RNG state of
    /// its per-pair stream (see `egd_core::rng::substream_state`).
    pub fn push_game(&mut self, pair: CompiledPair<'_>, rng_state: u128) {
        debug_assert_eq!(pair.a_thr.len(), self.num_states);
        debug_assert_eq!(pair.b_thr.len(), self.num_states);
        self.thr.reserve(2 * self.num_states);
        for (&ta, &tb) in pair.a_thr.iter().zip(pair.b_thr) {
            self.thr.push(ta);
            self.thr.push(tb);
        }
        self.rng_state.push(rng_state);
        self.view.push(0);
        self.fitness_a.push(0.0);
        self.fitness_b.push(0.0);
        self.cooperations_a.push(0);
        self.cooperations_b.push(0);
    }

    /// Appends one game lane from an owned pair table. The table already
    /// holds the batch's interleaved lane layout, so this is one contiguous
    /// copy — the cheap path the engines and harnesses use for interned
    /// tables.
    pub fn push_game_table(&mut self, table: &CompiledPairTable, rng_state: u128) {
        debug_assert_eq!(table.num_states(), self.num_states);
        self.thr.extend_from_slice(table.interleaved_thr());
        self.rng_state.push(rng_state);
        self.view.push(0);
        self.fitness_a.push(0.0);
        self.fitness_b.push(0.0);
        self.cooperations_a.push(0);
        self.cooperations_b.push(0);
    }

    /// Number of game lanes in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.rng_state.len()
    }

    /// Whether the batch holds no games.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rng_state.is_empty()
    }

    /// Per-player table size the batch was begun with.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Lane `k`'s final raw RNG state (its stream position after play).
    #[inline]
    pub fn final_rng_state(&self, k: usize) -> u128 {
        self.rng_state[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamKind};
    use crate::strategy::{MixedStrategy, NamedStrategy, PureStrategy};
    use rand::{Rng, RngCore};

    #[test]
    fn sentinels_for_pure_probabilities() {
        assert_eq!(cooperation_threshold(1.0), THR_ALWAYS);
        assert_eq!(cooperation_threshold(0.0), THR_NEVER);
        // Interior probabilities never collide with the sentinels.
        for p in [f64::MIN_POSITIVE, 1e-300, 0.25, 0.5, 1.0 - f64::EPSILON] {
            let t = cooperation_threshold(p);
            assert!(t > THR_NEVER && t < THR_ALWAYS, "p = {p} gave {t}");
        }
    }

    #[test]
    fn threshold_matches_gen_bool_exactly() {
        // For random probabilities and random draws, the integer compare must
        // reproduce gen_bool bit-for-bit (same verdict from the same draw).
        let mut rng = stream(41, StreamKind::Auxiliary, 7);
        for _ in 0..20_000 {
            let p: f64 = rng.gen();
            let raw = rng.next_u64();
            let m = raw >> DRAW_SHIFT;
            let float_verdict = (m as f64) * (1.0 / TWO_POW_53) < p;
            let int_verdict = m < cooperation_threshold(p);
            assert_eq!(float_verdict, int_verdict, "p = {p}, m = {m}");
        }
    }

    #[test]
    fn threshold_matches_gen_bool_at_boundaries() {
        // Probe m values right at the threshold for awkward probabilities.
        for p in [0.5, 0.25, 0.1, 1.0 / 3.0, 1.0 - f64::EPSILON, 5e-324] {
            let t = cooperation_threshold(p);
            for m in [t.saturating_sub(1), t, t + 1] {
                if m >= (1u64 << 53) {
                    continue;
                }
                let float_verdict = (m as f64) * (1.0 / TWO_POW_53) < p;
                assert_eq!(float_verdict, m < t, "p = {p}, m = {m}");
            }
        }
    }

    #[test]
    fn draw_threshold_of_one_accepts_every_draw() {
        assert_eq!(draw_threshold(1.0), 1u64 << 53);
        // The largest possible 53-bit draw is still below it.
        assert!(((u64::MAX) >> DRAW_SHIFT) < draw_threshold(1.0));
    }

    #[test]
    fn pure_strategies_compile_to_sentinel_tables() {
        let tft = StrategyKind::Pure(NamedStrategy::TitForTat.to_pure());
        let compiled = CompiledStrategy::compile(&tft);
        assert!(compiled.is_deterministic());
        // TFT: cooperate after opponent C (states 0, 2), defect after D (1, 3).
        assert_eq!(
            compiled.thresholds(),
            &[THR_ALWAYS, THR_NEVER, THR_ALWAYS, THR_NEVER]
        );
        // Swapped table: indexed by the opponent's view (swap of own view).
        assert_eq!(
            compiled.swapped_thresholds(),
            &[THR_ALWAYS, THR_ALWAYS, THR_NEVER, THR_NEVER]
        );
    }

    #[test]
    fn mixed_strategies_compile_per_state() {
        let gtft = StrategyKind::Mixed(MixedStrategy::generous_tit_for_tat(0.3).unwrap());
        let compiled = CompiledStrategy::compile(&gtft);
        assert!(!compiled.is_deterministic());
        assert_eq!(compiled.thresholds()[0], THR_ALWAYS);
        assert_eq!(compiled.thresholds()[1], cooperation_threshold(0.3));
    }

    #[test]
    fn swapped_table_is_the_perspective_permutation() {
        let mut rng = stream(5, StreamKind::InitialStrategy, 3);
        for memory in [MemoryDepth::ONE, MemoryDepth::TWO, MemoryDepth::THREE] {
            let space = StateSpace::new(memory);
            let s = StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng));
            let compiled = CompiledStrategy::compile(&s);
            for state in space.states() {
                assert_eq!(
                    compiled.swapped_thresholds()[state.index()],
                    compiled.thresholds()[space.swap_perspective(state).index()]
                );
            }
        }
    }

    #[test]
    fn pair_table_matches_borrowed_pair() {
        let mut rng = stream(13, StreamKind::InitialStrategy, 1);
        let a = CompiledStrategy::compile(&StrategyKind::Mixed(MixedStrategy::random(
            MemoryDepth::TWO,
            &mut rng,
        )));
        let b = CompiledStrategy::compile(&StrategyKind::Pure(PureStrategy::random(
            MemoryDepth::TWO,
            &mut rng,
        )));
        let table = CompiledPairTable::build(&a, &b);
        let pair = CompiledPair::new(&a, &b);
        assert_eq!(table.num_states(), 16);
        assert_eq!(table.interleaved_thr().len(), 32);
        for s in 0..16 {
            assert_eq!(table.a_thr_at(s), pair.a_thr[s]);
            assert_eq!(table.b_thr_at(s), pair.b_thr[s]);
            assert_eq!(table.interleaved_thr()[2 * s], pair.a_thr[s]);
            assert_eq!(table.interleaved_thr()[2 * s + 1], pair.b_thr[s]);
        }
    }

    #[test]
    fn batched_draws_layout_is_lane_major() {
        let tft =
            CompiledStrategy::compile(&StrategyKind::Pure(NamedStrategy::TitForTat.to_pure()));
        let gtft = CompiledStrategy::compile(&StrategyKind::Mixed(
            MixedStrategy::generous_tit_for_tat(0.3).unwrap(),
        ));
        let mut batch = BatchedDraws::new();
        batch.begin(4);
        batch.push_game(CompiledPair::new(&tft, &gtft), 3);
        batch.push_game_table(&CompiledPairTable::build(&gtft, &tft), 5);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.num_states(), 4);
        // Lane 0 occupies interleaved thresholds [0, 8), lane 1 [8, 16).
        for s in 0..4 {
            assert_eq!(batch.thr[2 * s], tft.thresholds()[s]);
            assert_eq!(batch.thr[2 * s + 1], gtft.swapped_thresholds()[s]);
            assert_eq!(batch.thr[8 + 2 * s], gtft.thresholds()[s]);
            assert_eq!(batch.thr[8 + 2 * s + 1], tft.swapped_thresholds()[s]);
        }
        // begin() resets lanes but keeps the configured table size.
        batch.begin(4);
        assert!(batch.is_empty());
        assert!(batch.thr.is_empty());
    }

    #[test]
    fn compile_matches_decide_probabilities() {
        let mut rng = stream(11, StreamKind::InitialStrategy, 9);
        let pure = StrategyKind::Pure(PureStrategy::random(MemoryDepth::TWO, &mut rng));
        let compiled = CompiledStrategy::compile(&pure);
        for s in 0..16usize {
            let p = pure.cooperation_probability(StateIndex(s as u32));
            assert_eq!(compiled.thresholds()[s], cooperation_threshold(p));
        }
    }
}
