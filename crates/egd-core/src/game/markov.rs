//! Exact expected payoffs via the Markov chain of joint game states.
//!
//! A pair of (possibly mixed, possibly noisy) memory-`n` strategies induces a
//! Markov chain on the `4^n` joint states: given the focal player's current
//! view, each player's cooperation probability is fixed, the four move
//! combinations have product probabilities, and each combination advances the
//! view deterministically. Evolving the state distribution therefore yields
//! *exact* expected per-round and finite-horizon payoffs — no sampling error.
//!
//! This engine serves three purposes:
//! * an analytic oracle against which the simulation engines are tested,
//! * a fast path for noisy games (a 200-round noisy game needs 200 · 4^n · 4
//!   multiply-adds instead of many sampled replays), and
//! * the classical tool for studying memory-one dynamics (Nowak & Sigmund's
//!   WSLS analysis), which the paper's validation run (§VI-A) reproduces.

use crate::error::{EgdError, EgdResult};
use crate::payoff::PayoffMatrix;
use crate::state::{MemoryDepth, StateIndex, StateSpace};
use crate::strategy::{Strategy, StrategyKind};
use serde::{Deserialize, Serialize};

/// Expected payoffs of a strategy pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpectedPayoffs {
    /// Expected total (or per-round, for stationary analysis) payoff of
    /// player A.
    pub payoff_a: f64,
    /// Expected payoff of player B.
    pub payoff_b: f64,
    /// Expected cooperation rate of player A.
    pub cooperation_a: f64,
    /// Expected cooperation rate of player B.
    pub cooperation_b: f64,
}

/// Exact Markov-chain game analysis for a fixed memory depth, payoff matrix
/// and noise level.
#[derive(Debug, Clone)]
pub struct MarkovGame {
    memory: MemoryDepth,
    payoffs: PayoffMatrix,
    noise: f64,
    rounds: u32,
}

impl MarkovGame {
    /// Creates a Markov analyser mirroring an [`crate::game::IpdGame`]
    /// configuration.
    pub fn new(
        memory: MemoryDepth,
        rounds: u32,
        payoffs: PayoffMatrix,
        noise: f64,
    ) -> EgdResult<Self> {
        if !(0.0..=1.0).contains(&noise) || noise.is_nan() {
            return Err(EgdError::InvalidProbability {
                name: "noise",
                value: noise,
            });
        }
        if rounds == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "a game must have at least one round".to_string(),
            });
        }
        Ok(MarkovGame {
            memory,
            payoffs: payoffs.validated()?,
            noise,
            rounds,
        })
    }

    /// The paper's defaults (200 rounds, `[3,0,4,1]`, no noise).
    pub fn paper_defaults(memory: MemoryDepth) -> Self {
        MarkovGame {
            memory,
            payoffs: PayoffMatrix::PAPER,
            noise: 0.0,
            rounds: 200,
        }
    }

    /// The memory depth.
    pub fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// The configured noise level.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Number of rounds for finite-horizon analysis.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Effective cooperation probability after execution noise: the player
    /// intends to cooperate with probability `p` and each executed move flips
    /// with probability `e`, so the executed cooperation probability is
    /// `p(1-e) + (1-p)e`.
    #[inline]
    fn effective(&self, p: f64) -> f64 {
        p * (1.0 - self.noise) + (1.0 - p) * self.noise
    }

    fn check_memory(&self, a: &StrategyKind, b: &StrategyKind) -> EgdResult<()> {
        if a.memory() != self.memory || b.memory() != self.memory {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "strategy memories ({}, {}) do not match the analyser's {}",
                    a.memory(),
                    b.memory(),
                    self.memory
                ),
            });
        }
        Ok(())
    }

    /// Per-state cooperation probabilities of both players, indexed by player
    /// A's view.
    fn cooperation_tables(&self, a: &StrategyKind, b: &StrategyKind) -> (Vec<f64>, Vec<f64>) {
        let space = StateSpace::new(self.memory);
        let n = self.memory.num_states();
        let mut pa = Vec::with_capacity(n);
        let mut pb = Vec::with_capacity(n);
        for s in space.states() {
            pa.push(self.effective(a.cooperation_probability(s)));
            pb.push(self.effective(b.cooperation_probability(space.swap_perspective(s))));
        }
        (pa, pb)
    }

    /// Evolves the state distribution one round, accumulating expected
    /// payoffs and cooperation counts.
    fn step(
        &self,
        space: &StateSpace,
        dist: &[f64],
        pa: &[f64],
        pb: &[f64],
        acc: &mut ExpectedPayoffs,
    ) -> Vec<f64> {
        let mut next = vec![0.0; dist.len()];
        let table = self.payoffs.lookup_table();
        for (s, &mass) in dist.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let state = StateIndex(s as u32);
            let ca = pa[s];
            let cb = pb[s];
            // Probabilities of the four move combinations (A, B).
            let combos = [
                (
                    crate::action::Move::Cooperate,
                    crate::action::Move::Cooperate,
                    ca * cb,
                ),
                (
                    crate::action::Move::Cooperate,
                    crate::action::Move::Defect,
                    ca * (1.0 - cb),
                ),
                (
                    crate::action::Move::Defect,
                    crate::action::Move::Cooperate,
                    (1.0 - ca) * cb,
                ),
                (
                    crate::action::Move::Defect,
                    crate::action::Move::Defect,
                    (1.0 - ca) * (1.0 - cb),
                ),
            ];
            for (ma, mb, p) in combos {
                if p == 0.0 {
                    continue;
                }
                let w = mass * p;
                let bits_a = ((ma.bit() << 1) | mb.bit()) as usize;
                let bits_b = ((mb.bit() << 1) | ma.bit()) as usize;
                acc.payoff_a += w * table[bits_a];
                acc.payoff_b += w * table[bits_b];
                acc.cooperation_a += w * ma.is_cooperation() as u32 as f64;
                acc.cooperation_b += w * mb.is_cooperation() as u32 as f64;
                let ns = space.advance(state, ma, mb);
                next[ns.index()] += w;
            }
        }
        next
    }

    /// Exact expected payoffs of a finite game of [`MarkovGame::rounds`]
    /// rounds starting from the all-cooperation history — the analytic
    /// counterpart of [`crate::game::IpdGame::play`].
    pub fn finite_horizon(&self, a: &StrategyKind, b: &StrategyKind) -> EgdResult<ExpectedPayoffs> {
        self.check_memory(a, b)?;
        let space = StateSpace::new(self.memory);
        let (pa, pb) = self.cooperation_tables(a, b);
        let mut dist = vec![0.0; self.memory.num_states()];
        dist[StateIndex::INITIAL.index()] = 1.0;
        let mut acc = ExpectedPayoffs {
            payoff_a: 0.0,
            payoff_b: 0.0,
            cooperation_a: 0.0,
            cooperation_b: 0.0,
        };
        for _ in 0..self.rounds {
            dist = self.step(&space, &dist, &pa, &pb, &mut acc);
        }
        acc.cooperation_a /= self.rounds as f64;
        acc.cooperation_b /= self.rounds as f64;
        Ok(acc)
    }

    /// Expected *per-round* payoffs in the long-run (stationary) regime,
    /// computed by evolving the distribution until it stops changing.
    /// For noisy games the chain is ergodic and this converges to the unique
    /// stationary distribution; for deterministic games it converges onto the
    /// limit cycle average.
    pub fn stationary(&self, a: &StrategyKind, b: &StrategyKind) -> EgdResult<ExpectedPayoffs> {
        self.check_memory(a, b)?;
        let space = StateSpace::new(self.memory);
        let (pa, pb) = self.cooperation_tables(a, b);
        let n = self.memory.num_states();
        let mut dist = vec![0.0; n];
        dist[StateIndex::INITIAL.index()] = 1.0;

        // Burn-in: evolve without accumulating until the distribution is
        // (nearly) invariant, with a cap proportional to the state count.
        let mut scratch = ExpectedPayoffs {
            payoff_a: 0.0,
            payoff_b: 0.0,
            cooperation_a: 0.0,
            cooperation_b: 0.0,
        };
        let max_burn = 64 * n.max(16);
        for _ in 0..max_burn {
            let next = self.step(&space, &dist, &pa, &pb, &mut scratch);
            let delta: f64 = next.iter().zip(&dist).map(|(x, y)| (x - y).abs()).sum();
            dist = next;
            if delta < 1e-12 {
                break;
            }
        }

        // Average one full sweep of `window` rounds to smooth over limit
        // cycles of deterministic pairs.
        let window = (4 * n).max(64) as u32;
        let mut acc = ExpectedPayoffs {
            payoff_a: 0.0,
            payoff_b: 0.0,
            cooperation_a: 0.0,
            cooperation_b: 0.0,
        };
        for _ in 0..window {
            dist = self.step(&space, &dist, &pa, &pb, &mut acc);
        }
        let w = window as f64;
        Ok(ExpectedPayoffs {
            payoff_a: acc.payoff_a / w,
            payoff_b: acc.payoff_b / w,
            cooperation_a: acc.cooperation_a / w,
            cooperation_b: acc.cooperation_b / w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::IpdGame;
    use crate::rng::{stream, StreamKind};
    use crate::strategy::{MixedStrategy, NamedStrategy, PureStrategy};

    fn kind(named: NamedStrategy) -> StrategyKind {
        StrategyKind::Pure(named.to_pure())
    }

    #[test]
    fn validation() {
        assert!(MarkovGame::new(MemoryDepth::ONE, 0, PayoffMatrix::PAPER, 0.0).is_err());
        assert!(MarkovGame::new(MemoryDepth::ONE, 10, PayoffMatrix::PAPER, -0.1).is_err());
        assert!(MarkovGame::new(MemoryDepth::ONE, 10, PayoffMatrix::PAPER, 0.1).is_ok());
    }

    #[test]
    fn finite_horizon_matches_simulation_for_deterministic_pairs() {
        let markov = MarkovGame::paper_defaults(MemoryDepth::ONE);
        let sim = IpdGame::paper_defaults(MemoryDepth::ONE);
        for a in NamedStrategy::ALL {
            for b in NamedStrategy::ALL {
                if a.native_memory() != MemoryDepth::ONE || b.native_memory() != MemoryDepth::ONE {
                    continue;
                }
                let sa = a.to_pure();
                let sb = b.to_pure();
                let exact = markov.finite_horizon(&kind(a), &kind(b)).unwrap();
                let played = sim.play_pure(&sa, &sb).unwrap();
                assert!(
                    (exact.payoff_a - played.fitness_a).abs() < 1e-6,
                    "{a} vs {b}: markov {} sim {}",
                    exact.payoff_a,
                    played.fitness_a
                );
                assert!((exact.payoff_b - played.fitness_b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn finite_horizon_matches_simulation_for_random_memory_two() {
        let markov = MarkovGame::new(MemoryDepth::TWO, 50, PayoffMatrix::PAPER, 0.0).unwrap();
        let sim = IpdGame::new(MemoryDepth::TWO, 50, PayoffMatrix::PAPER, 0.0).unwrap();
        let mut rng = stream(8, StreamKind::InitialStrategy, 5);
        for _ in 0..10 {
            let a = PureStrategy::random(MemoryDepth::TWO, &mut rng);
            let b = PureStrategy::random(MemoryDepth::TWO, &mut rng);
            let exact = markov
                .finite_horizon(
                    &StrategyKind::Pure(a.clone()),
                    &StrategyKind::Pure(b.clone()),
                )
                .unwrap();
            let played = sim.play_pure(&a, &b).unwrap();
            assert!((exact.payoff_a - played.fitness_a).abs() < 1e-6);
            assert!((exact.payoff_b - played.fitness_b).abs() < 1e-6);
        }
    }

    #[test]
    fn noisy_expectation_matches_monte_carlo() {
        let noise = 0.05;
        let markov = MarkovGame::new(MemoryDepth::ONE, 100, PayoffMatrix::PAPER, noise).unwrap();
        let sim = IpdGame::new(MemoryDepth::ONE, 100, PayoffMatrix::PAPER, noise).unwrap();
        let tft = kind(NamedStrategy::TitForTat);
        let wsls = kind(NamedStrategy::WinStayLoseShift);
        let exact = markov.finite_horizon(&tft, &wsls).unwrap();
        let mut rng = stream(33, StreamKind::GamePlay, 0);
        let trials = 3000;
        let mut total_a = 0.0;
        for _ in 0..trials {
            total_a += sim.play(&tft, &wsls, &mut rng).unwrap().fitness_a;
        }
        let mc = total_a / trials as f64;
        let rel_err = (mc - exact.payoff_a).abs() / exact.payoff_a;
        assert!(
            rel_err < 0.03,
            "MC {mc} vs exact {} (rel err {rel_err})",
            exact.payoff_a
        );
    }

    #[test]
    fn stationary_wsls_self_play_recovers_cooperation_under_noise() {
        // The key qualitative fact behind the paper's validation run:
        // WSLS self-play keeps nearly full cooperation under small noise,
        // whereas TFT self-play degrades to ~50% payoff.
        let markov = MarkovGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.01).unwrap();
        let wsls = kind(NamedStrategy::WinStayLoseShift);
        let tft = kind(NamedStrategy::TitForTat);
        let wsls_self = markov.stationary(&wsls, &wsls).unwrap();
        let tft_self = markov.stationary(&tft, &tft).unwrap();
        assert!(
            wsls_self.payoff_a > 2.8,
            "WSLS per-round payoff {}",
            wsls_self.payoff_a
        );
        assert!(
            tft_self.payoff_a < 2.5,
            "TFT per-round payoff {}",
            tft_self.payoff_a
        );
        assert!(wsls_self.cooperation_a > 0.9);
    }

    #[test]
    fn alld_exploits_allc_exactly() {
        let markov = MarkovGame::paper_defaults(MemoryDepth::ONE);
        let allc = kind(NamedStrategy::AlwaysCooperate);
        let alld = kind(NamedStrategy::AlwaysDefect);
        let e = markov.finite_horizon(&allc, &alld).unwrap();
        assert!((e.payoff_a - 0.0).abs() < 1e-9);
        assert!((e.payoff_b - 800.0).abs() < 1e-9);
        assert!((e.cooperation_a - 1.0).abs() < 1e-9);
        assert!((e.cooperation_b - 0.0).abs() < 1e-9);
    }

    #[test]
    fn gtft_against_alld_cooperates_at_generosity_rate() {
        let markov = MarkovGame::new(MemoryDepth::ONE, 400, PayoffMatrix::PAPER, 0.0).unwrap();
        let gtft = StrategyKind::Mixed(MixedStrategy::generous_tit_for_tat(0.25).unwrap());
        let alld = kind(NamedStrategy::AlwaysDefect);
        let e = markov.stationary(&gtft, &alld).unwrap();
        // In the long run GTFT cooperates with probability = generosity.
        assert!((e.cooperation_a - 0.25).abs() < 0.01, "{}", e.cooperation_a);
        assert!((e.cooperation_b - 0.0).abs() < 1e-9);
    }

    #[test]
    fn memory_mismatch_rejected() {
        let markov = MarkovGame::paper_defaults(MemoryDepth::TWO);
        let tft = kind(NamedStrategy::TitForTat);
        assert!(markov.finite_horizon(&tft, &tft).is_err());
        assert!(markov.stationary(&tft, &tft).is_err());
    }

    #[test]
    fn probability_mass_is_conserved() {
        // Cooperation rates always land in [0, 1] and payoffs within the
        // per-round payoff bounds — indirect evidence the distribution stays
        // normalised.
        let markov = MarkovGame::new(MemoryDepth::TWO, 100, PayoffMatrix::PAPER, 0.02).unwrap();
        let mut rng = stream(12, StreamKind::InitialStrategy, 2);
        for _ in 0..5 {
            let a = StrategyKind::Pure(PureStrategy::random(MemoryDepth::TWO, &mut rng));
            let b = StrategyKind::Pure(PureStrategy::random(MemoryDepth::TWO, &mut rng));
            let e = markov.finite_horizon(&a, &b).unwrap();
            assert!((0.0..=1.0).contains(&e.cooperation_a));
            assert!((0.0..=1.0).contains(&e.cooperation_b));
            assert!(e.payoff_a >= 0.0 && e.payoff_a <= 4.0 * 100.0);
            assert!(e.payoff_b >= 0.0 && e.payoff_b <= 4.0 * 100.0);
        }
    }
}
