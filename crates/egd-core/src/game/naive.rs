//! Paper-literal ("Original") game engine.
//!
//! The paper's pseudo-code (§IV-C) represents the current view as an explicit
//! list of remembered rounds and finds the current state by linearly scanning
//! a global state table (`find_state`). That is how the unoptimised code of
//! Fig. 3 works, and why the per-round cost grows with the memory depth: the
//! scan compares against up to `4^n` candidate states.
//!
//! This module reproduces that implementation faithfully. It is used
//! * as the "Original" rung of the Fig. 3 optimisation ladder, and
//! * as an independent oracle: property tests check that the optimised
//!   engine in [`crate::game::ipd`] computes identical results.

use crate::error::{EgdError, EgdResult};
use crate::game::GameOutcome;
use crate::payoff::PayoffMatrix;
use crate::state::{MemoryDepth, RememberedRound, StateSpace};
use crate::strategy::PureStrategy;

/// The paper's `global states` array: every possible current view, listed in
/// state-index order, as explicit rounds (most recent first).
#[derive(Debug, Clone)]
pub struct StateTable {
    memory: MemoryDepth,
    /// `entries[s]` is the explicit history corresponding to state `s`.
    entries: Vec<Vec<RememberedRound>>,
}

impl StateTable {
    /// Builds the state table for a memory depth (the paper's "Set up global
    /// states" initialisation step).
    pub fn build(memory: MemoryDepth) -> Self {
        let space = StateSpace::new(memory);
        let entries = space
            .states()
            .map(|s| space.decode(s).expect("state from own space"))
            .collect();
        StateTable { memory, entries }
    }

    /// The memory depth of the table.
    pub fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// Number of entries (`4^n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a valid memory depth).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The paper's `find_state`: linearly scans the table for the entry that
    /// matches `view`. Cost is `O(4^n · n)` comparisons per lookup — this is
    /// exactly the cost the optimised engine removes.
    pub fn find_state(&self, view: &[RememberedRound]) -> Option<usize> {
        self.entries
            .iter()
            .position(|entry| entry.as_slice() == view)
    }

    /// The explicit history of state `s`.
    pub fn entry(&self, s: usize) -> &[RememberedRound] {
        &self.entries[s]
    }
}

/// The paper-literal IPD engine (pure strategies, no noise).
#[derive(Debug, Clone)]
pub struct NaiveIpd {
    table: StateTable,
    rounds: u32,
    payoffs: PayoffMatrix,
}

impl NaiveIpd {
    /// Creates the naive engine with the paper's defaults (200 rounds,
    /// `[3,0,4,1]` payoffs).
    pub fn paper_defaults(memory: MemoryDepth) -> Self {
        Self::new(memory, 200, PayoffMatrix::PAPER)
    }

    /// Creates the naive engine.
    pub fn new(memory: MemoryDepth, rounds: u32, payoffs: PayoffMatrix) -> Self {
        NaiveIpd {
            table: StateTable::build(memory),
            rounds,
            payoffs,
        }
    }

    /// Number of rounds per game.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Plays a deterministic game following the paper's pseudo-code: both
    /// players keep an explicit `current_view` list of remembered rounds and
    /// locate their state by linear search each round.
    pub fn play(
        &self,
        my_strat: &PureStrategy,
        opp_strat: &PureStrategy,
    ) -> EgdResult<GameOutcome> {
        let memory = self.table.memory();
        if my_strat.memory() != memory || opp_strat.memory() != memory {
            return Err(EgdError::InvalidConfig {
                reason: "strategy memory does not match the naive engine's state table".to_string(),
            });
        }
        let steps = memory.steps() as usize;
        // current_view[i] holds round i (most recent first); initialised to
        // all-cooperation, matching the paper's zero-filled current view.
        let mut view_mine: Vec<RememberedRound> =
            vec![RememberedRound::mutual_cooperation(); steps];
        let mut view_opp: Vec<RememberedRound> = vec![RememberedRound::mutual_cooperation(); steps];

        let mut outcome = GameOutcome {
            fitness_a: 0.0,
            fitness_b: 0.0,
            cooperations_a: 0,
            cooperations_b: 0,
            rounds: self.rounds,
        };

        for _ in 0..self.rounds {
            let my_state = self
                .table
                .find_state(&view_mine)
                .expect("every reachable view is in the table");
            let opp_state = self
                .table
                .find_state(&view_opp)
                .expect("every reachable view is in the table");
            let play0 = my_strat.move_for(crate::state::StateIndex(my_state as u32));
            let play1 = opp_strat.move_for(crate::state::StateIndex(opp_state as u32));

            let (mine, theirs) = self.payoffs.pair_payoffs(play0, play1);
            outcome.fitness_a += mine;
            outcome.fitness_b += theirs;
            outcome.cooperations_a += play0.is_cooperation() as u32;
            outcome.cooperations_b += play1.is_cooperation() as u32;

            // Shift both views: newest round enters at the front.
            view_mine.rotate_right(1);
            view_mine[0] = RememberedRound::new(play0, play1);
            view_opp.rotate_right(1);
            view_opp[0] = RememberedRound::new(play1, play0);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::IpdGame;
    use crate::rng::{stream, StreamKind};
    use crate::strategy::NamedStrategy;

    #[test]
    fn state_table_sizes() {
        for n in 1..=4 {
            let memory = MemoryDepth::new(n).unwrap();
            let table = StateTable::build(memory);
            assert_eq!(table.len(), memory.num_states());
            assert!(!table.is_empty());
        }
    }

    #[test]
    fn find_state_locates_every_entry() {
        let table = StateTable::build(MemoryDepth::TWO);
        for s in 0..table.len() {
            let entry = table.entry(s).to_vec();
            assert_eq!(table.find_state(&entry), Some(s));
        }
        // A view of the wrong length is never found.
        assert_eq!(table.find_state(&[]), None);
    }

    #[test]
    fn naive_matches_optimised_engine_on_classics() {
        let naive = NaiveIpd::paper_defaults(MemoryDepth::ONE);
        let fast = IpdGame::paper_defaults(MemoryDepth::ONE);
        let classics = [
            NamedStrategy::AlwaysCooperate,
            NamedStrategy::AlwaysDefect,
            NamedStrategy::TitForTat,
            NamedStrategy::WinStayLoseShift,
            NamedStrategy::GrimTrigger,
        ];
        for a in classics {
            for b in classics {
                let sa = a.to_pure();
                let sb = b.to_pure();
                let n = naive.play(&sa, &sb).unwrap();
                let f = fast.play_pure(&sa, &sb).unwrap();
                assert_eq!(n.fitness_a, f.fitness_a, "{a} vs {b}");
                assert_eq!(n.fitness_b, f.fitness_b, "{a} vs {b}");
                assert_eq!(n.cooperations_a, f.cooperations_a, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn naive_matches_optimised_engine_on_random_memory_two() {
        let naive = NaiveIpd::new(MemoryDepth::TWO, 64, PayoffMatrix::PAPER);
        let fast = IpdGame::new(MemoryDepth::TWO, 64, PayoffMatrix::PAPER, 0.0).unwrap();
        let mut rng = stream(21, StreamKind::InitialStrategy, 3);
        for _ in 0..20 {
            let a = PureStrategy::random(MemoryDepth::TWO, &mut rng);
            let b = PureStrategy::random(MemoryDepth::TWO, &mut rng);
            let n = naive.play(&a, &b).unwrap();
            let f = fast.play_pure(&a, &b).unwrap();
            assert_eq!(n.fitness_a, f.fitness_a);
            assert_eq!(n.fitness_b, f.fitness_b);
        }
    }

    #[test]
    fn naive_rejects_memory_mismatch() {
        let naive = NaiveIpd::paper_defaults(MemoryDepth::ONE);
        let deep = PureStrategy::all_cooperate(MemoryDepth::TWO);
        let shallow = PureStrategy::all_cooperate(MemoryDepth::ONE);
        assert!(naive.play(&deep, &shallow).is_err());
    }

    #[test]
    fn rounds_accessor() {
        assert_eq!(NaiveIpd::paper_defaults(MemoryDepth::ONE).rounds(), 200);
    }
}
