//! Agents: the basic building block of the model.
//!
//! An agent belongs to exactly one Strategy Set (SSet) and plays the SSet's
//! strategy in Iterated Prisoner's Dilemma games against a subset of the
//! opponent strategies in the population. Within an SSet the opponent
//! strategies are partitioned across the agents so that, per generation,
//! every strategy-vs-strategy pairing is played exactly once (§IV-A of the
//! paper: "In each generation, each agent is assigned s/a opposing SSets to
//! play against").

use crate::sset::SSetId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Globally unique agent identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AgentId(pub u64);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// An agent: a member of an SSet with a slot index used to derive its share
/// of the opponent work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Agent {
    /// Globally unique identifier.
    pub id: AgentId,
    /// The SSet this agent belongs to.
    pub sset: SSetId,
    /// The agent's slot within its SSet (`0 .. agents_per_sset`).
    pub slot: u32,
}

impl Agent {
    /// Creates an agent.
    pub fn new(id: AgentId, sset: SSetId, slot: u32) -> Self {
        Agent { id, sset, slot }
    }

    /// The contiguous block of opponent indices (into the list of opponent
    /// SSets) that this agent is responsible for, when `num_opponents`
    /// opponents are divided across `agents_per_sset` agents.
    ///
    /// The blocks of all agents of an SSet partition `0..num_opponents`
    /// exactly: the first `num_opponents % agents_per_sset` agents receive
    /// one extra opponent each.
    pub fn opponent_block(&self, num_opponents: usize, agents_per_sset: u32) -> Range<usize> {
        block_for_slot(self.slot, num_opponents, agents_per_sset)
    }
}

/// Computes the opponent block for an agent slot. Shared with the parallel
/// partitioner so both sides agree exactly on who plays whom.
pub fn block_for_slot(slot: u32, num_opponents: usize, agents_per_sset: u32) -> Range<usize> {
    assert!(agents_per_sset > 0, "an SSet must have at least one agent");
    assert!(slot < agents_per_sset, "slot out of range");
    let agents = agents_per_sset as usize;
    let slot = slot as usize;
    let base = num_opponents / agents;
    let extra = num_opponents % agents;
    let start = slot * base + slot.min(extra);
    let len = base + usize::from(slot < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_opponents_exactly() {
        for num_opponents in [0usize, 1, 5, 16, 17, 100, 101] {
            for agents in [1u32, 2, 3, 4, 7, 16] {
                let mut covered = Vec::new();
                for slot in 0..agents {
                    let block = block_for_slot(slot, num_opponents, agents);
                    covered.extend(block);
                }
                let expected: Vec<usize> = (0..num_opponents).collect();
                assert_eq!(
                    covered, expected,
                    "opponents {num_opponents}, agents {agents}"
                );
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        for num_opponents in [7usize, 31, 64, 1000] {
            for agents in [2u32, 3, 5, 8] {
                let sizes: Vec<usize> = (0..agents)
                    .map(|slot| block_for_slot(slot, num_opponents, agents).len())
                    .collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn agent_block_uses_slot() {
        let a = Agent::new(AgentId(3), SSetId(1), 1);
        assert_eq!(a.opponent_block(10, 4), block_for_slot(1, 10, 4));
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn out_of_range_slot_panics() {
        block_for_slot(4, 10, 4);
    }

    #[test]
    fn display() {
        assert_eq!(AgentId(7).to_string(), "agent7");
    }
}
