//! Game-state encoding for memory-n strategies.
//!
//! A *state* is a full description of the last `n` rounds of a two-player
//! game: for each remembered round, the focal player's move and the
//! opponent's move. With two possible moves per player per round there are
//! `4^n = 2^(2n)` distinct states for a memory-`n` strategy (Table II of the
//! paper shows the four memory-one states).
//!
//! States are encoded as packed integers: round `r` (with `r = 0` being the
//! most recent round) contributes the two bits `my_move * 2 + opp_move` at
//! bit position `2 * r`. Cooperation is bit `0`, defection bit `1`
//! (see [`crate::action::Move`]). The all-cooperation history is therefore
//! state `0`, which is also the conventional initial state of every game.

use crate::action::Move;
use crate::error::{EgdError, EgdResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of memory steps (`n`) a strategy takes into account.
///
/// The paper models `n = 1..=6`; this crate supports up to
/// [`MemoryDepth::MAX_SUPPORTED`] steps (the limit is the size of the pure
/// strategy genome, `4^n` bits, which at `n = 6` is already 4096 bits — the
/// largest the paper could fit into Blue Gene node memory at population
/// scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemoryDepth(u8);

impl MemoryDepth {
    /// Largest supported number of memory steps.
    pub const MAX_SUPPORTED: u32 = 8;

    /// Memory-one: only the previous round is remembered (TFT, WSLS, ...).
    pub const ONE: MemoryDepth = MemoryDepth(1);
    /// Memory-two.
    pub const TWO: MemoryDepth = MemoryDepth(2);
    /// Memory-three.
    pub const THREE: MemoryDepth = MemoryDepth(3);
    /// Memory-four.
    pub const FOUR: MemoryDepth = MemoryDepth(4);
    /// Memory-five.
    pub const FIVE: MemoryDepth = MemoryDepth(5);
    /// Memory-six — the deepest memory the paper could model at scale.
    pub const SIX: MemoryDepth = MemoryDepth(6);

    /// All memory depths studied in the paper, in order.
    pub const PAPER_RANGE: [MemoryDepth; 6] = [
        MemoryDepth::ONE,
        MemoryDepth::TWO,
        MemoryDepth::THREE,
        MemoryDepth::FOUR,
        MemoryDepth::FIVE,
        MemoryDepth::SIX,
    ];

    /// Creates a memory depth, validating the supported range `1..=8`.
    pub fn new(steps: u32) -> EgdResult<Self> {
        if steps == 0 || steps > Self::MAX_SUPPORTED {
            Err(EgdError::InvalidMemoryDepth {
                requested: steps,
                max_supported: Self::MAX_SUPPORTED,
            })
        } else {
            Ok(MemoryDepth(steps as u8))
        }
    }

    /// The number of memory steps.
    #[inline]
    pub const fn steps(self) -> u32 {
        self.0 as u32
    }

    /// Number of distinct game states, `4^n`.
    #[inline]
    pub const fn num_states(self) -> usize {
        1usize << (2 * self.0 as u32)
    }

    /// Number of bits needed to encode a state (`2n`).
    #[inline]
    pub const fn state_bits(self) -> u32 {
        2 * self.0 as u32
    }

    /// Bit mask selecting a valid state encoding.
    #[inline]
    pub const fn state_mask(self) -> u64 {
        (1u64 << self.state_bits()) - 1
    }
}

impl fmt::Display for MemoryDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory-{}", self.0)
    }
}

impl TryFrom<u32> for MemoryDepth {
    type Error = EgdError;
    fn try_from(value: u32) -> Result<Self, Self::Error> {
        MemoryDepth::new(value)
    }
}

/// Index of a game state within the state space of a given memory depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateIndex(pub u32);

impl StateIndex {
    /// The all-cooperation history: the canonical initial state of a game.
    pub const INITIAL: StateIndex = StateIndex(0);

    /// The raw index value.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One remembered round from the focal player's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RememberedRound {
    /// The focal player's move in that round.
    pub my_move: Move,
    /// The opponent's move in that round.
    pub opponent_move: Move,
}

impl RememberedRound {
    /// Creates a remembered round.
    pub const fn new(my_move: Move, opponent_move: Move) -> Self {
        RememberedRound {
            my_move,
            opponent_move,
        }
    }

    /// Mutual cooperation.
    pub const fn mutual_cooperation() -> Self {
        RememberedRound::new(Move::Cooperate, Move::Cooperate)
    }

    /// The same round viewed from the opponent's perspective (players
    /// swapped).
    pub const fn swapped(self) -> Self {
        RememberedRound {
            my_move: self.opponent_move,
            opponent_move: self.my_move,
        }
    }

    /// Two-bit encoding `my_move * 2 + opponent_move`.
    #[inline]
    pub const fn bits(self) -> u32 {
        ((self.my_move.bit() as u32) << 1) | self.opponent_move.bit() as u32
    }

    /// Decodes a two-bit round encoding.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        RememberedRound {
            my_move: Move::from_bit(((bits >> 1) & 1) as u8),
            opponent_move: Move::from_bit((bits & 1) as u8),
        }
    }
}

impl fmt::Display for RememberedRound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.my_move, self.opponent_move)
    }
}

/// The full state space of a memory-`n` game, plus encode/decode helpers.
///
/// The space also exposes [`StateSpace::enumerate_table`], which reproduces the
/// paper's Table II (all memory-one states) for any memory depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSpace {
    memory: MemoryDepth,
}

impl StateSpace {
    /// Creates the state space for the given memory depth.
    pub const fn new(memory: MemoryDepth) -> Self {
        StateSpace { memory }
    }

    /// The memory depth this space describes.
    #[inline]
    pub const fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// Number of states, `4^n`.
    #[inline]
    pub const fn num_states(&self) -> usize {
        self.memory.num_states()
    }

    /// Encodes a history of rounds (most recent first) into a state index.
    ///
    /// `rounds` must contain exactly `n` entries.
    pub fn encode(&self, rounds: &[RememberedRound]) -> EgdResult<StateIndex> {
        if rounds.len() != self.memory.steps() as usize {
            return Err(EgdError::StrategyLengthMismatch {
                expected_states: self.memory.steps() as usize,
                actual: rounds.len(),
            });
        }
        let mut bits = 0u32;
        for (r, round) in rounds.iter().enumerate() {
            bits |= round.bits() << (2 * r as u32);
        }
        Ok(StateIndex(bits))
    }

    /// Decodes a state index into its rounds (most recent first).
    pub fn decode(&self, state: StateIndex) -> EgdResult<Vec<RememberedRound>> {
        self.check(state)?;
        let mut rounds = Vec::with_capacity(self.memory.steps() as usize);
        for r in 0..self.memory.steps() {
            rounds.push(RememberedRound::from_bits((state.0 >> (2 * r)) & 0b11));
        }
        Ok(rounds)
    }

    /// The same state seen from the opponent's point of view: in every
    /// remembered round the two players' moves are swapped. During game play
    /// the two players' current views are always perspective-swaps of each
    /// other (as the paper notes, "each agent's current view will be the
    /// opposite of its opponent").
    #[inline]
    pub fn swap_perspective(&self, state: StateIndex) -> StateIndex {
        let s = state.0 as u64;
        // Swap the two bits of every 2-bit group: (s & odd_mask) >> 1 picks
        // the "my move" bits down into opponent position and vice versa.
        let my_bits = (s >> 1) & 0x5555_5555_5555_5555;
        let opp_bits = s & 0x5555_5555_5555_5555;
        let swapped = (opp_bits << 1) | my_bits;
        StateIndex((swapped & self.memory.state_mask()) as u32)
    }

    /// Pushes the outcome of a new round onto a state, dropping the oldest
    /// remembered round: the heart of the game-play inner loop.
    #[inline]
    pub fn advance(&self, state: StateIndex, my_move: Move, opponent_move: Move) -> StateIndex {
        let round = RememberedRound::new(my_move, opponent_move).bits() as u64;
        let shifted = ((state.0 as u64) << 2) | round;
        StateIndex((shifted & self.memory.state_mask()) as u32)
    }

    /// Validates that a state index belongs to this space.
    pub fn check(&self, state: StateIndex) -> EgdResult<()> {
        if state.index() < self.num_states() {
            Ok(())
        } else {
            Err(EgdError::StateOutOfRange {
                index: state.index(),
                num_states: self.num_states(),
            })
        }
    }

    /// Iterates over every state in the space, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateIndex> {
        (0..self.num_states() as u32).map(StateIndex)
    }

    /// Enumerates the full state table as `(index, rounds)` pairs — the
    /// generalisation of the paper's Table II to any memory depth.
    pub fn enumerate_table(&self) -> Vec<(StateIndex, Vec<RememberedRound>)> {
        self.states()
            .map(|s| (s, self.decode(s).expect("state from own space")))
            .collect()
    }

    /// Renders a state as a compact string such as `CC` (memory-one) or
    /// `CD|DC` (memory-two, most recent round first).
    pub fn format_state(&self, state: StateIndex) -> String {
        let rounds = self.decode(state).expect("valid state");
        rounds
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("|")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_depth_validation() {
        assert!(MemoryDepth::new(0).is_err());
        assert!(MemoryDepth::new(9).is_err());
        for n in 1..=8 {
            assert_eq!(MemoryDepth::new(n).unwrap().steps(), n);
        }
    }

    #[test]
    fn num_states_matches_paper_table() {
        // Table II / IV: 4^n states.
        assert_eq!(MemoryDepth::ONE.num_states(), 4);
        assert_eq!(MemoryDepth::TWO.num_states(), 16);
        assert_eq!(MemoryDepth::THREE.num_states(), 64);
        assert_eq!(MemoryDepth::FOUR.num_states(), 256);
        assert_eq!(MemoryDepth::FIVE.num_states(), 1024);
        assert_eq!(MemoryDepth::SIX.num_states(), 4096);
    }

    #[test]
    fn memory_one_states_match_table_two() {
        let space = StateSpace::new(MemoryDepth::ONE);
        let table = space.enumerate_table();
        assert_eq!(table.len(), 4);
        let labels: Vec<String> = table
            .iter()
            .map(|(_, rounds)| rounds[0].to_string())
            .collect();
        assert_eq!(labels, vec!["CC", "CD", "DC", "DD"]);
    }

    #[test]
    fn encode_decode_round_trip_memory_three() {
        let space = StateSpace::new(MemoryDepth::THREE);
        for state in space.states() {
            let rounds = space.decode(state).unwrap();
            assert_eq!(rounds.len(), 3);
            assert_eq!(space.encode(&rounds).unwrap(), state);
        }
    }

    #[test]
    fn encode_rejects_wrong_length() {
        let space = StateSpace::new(MemoryDepth::TWO);
        let rounds = vec![RememberedRound::mutual_cooperation()];
        assert!(space.encode(&rounds).is_err());
    }

    #[test]
    fn initial_state_is_all_cooperation() {
        for n in 1..=6 {
            let space = StateSpace::new(MemoryDepth::new(n).unwrap());
            let rounds = space.decode(StateIndex::INITIAL).unwrap();
            assert!(rounds
                .iter()
                .all(|r| r.my_move.is_cooperation() && r.opponent_move.is_cooperation()));
        }
    }

    #[test]
    fn swap_perspective_is_involution() {
        let space = StateSpace::new(MemoryDepth::THREE);
        for state in space.states() {
            let swapped = space.swap_perspective(state);
            assert_eq!(space.swap_perspective(swapped), state);
        }
    }

    #[test]
    fn swap_perspective_swaps_each_round() {
        let space = StateSpace::new(MemoryDepth::TWO);
        let rounds = vec![
            RememberedRound::new(Move::Cooperate, Move::Defect),
            RememberedRound::new(Move::Defect, Move::Cooperate),
        ];
        let state = space.encode(&rounds).unwrap();
        let swapped = space.swap_perspective(state);
        let swapped_rounds = space.decode(swapped).unwrap();
        assert_eq!(swapped_rounds[0], rounds[0].swapped());
        assert_eq!(swapped_rounds[1], rounds[1].swapped());
    }

    #[test]
    fn advance_drops_oldest_round() {
        let space = StateSpace::new(MemoryDepth::TWO);
        // Start from all-cooperate, then play (D, C) and (C, D).
        let s0 = StateIndex::INITIAL;
        let s1 = space.advance(s0, Move::Defect, Move::Cooperate);
        let s2 = space.advance(s1, Move::Cooperate, Move::Defect);
        let rounds = space.decode(s2).unwrap();
        // Most recent first: (C, D), then (D, C).
        assert_eq!(
            rounds[0],
            RememberedRound::new(Move::Cooperate, Move::Defect)
        );
        assert_eq!(
            rounds[1],
            RememberedRound::new(Move::Defect, Move::Cooperate)
        );
        // A third round pushes (D, C) out of the window.
        let s3 = space.advance(s2, Move::Defect, Move::Defect);
        let rounds = space.decode(s3).unwrap();
        assert_eq!(rounds[0], RememberedRound::new(Move::Defect, Move::Defect));
        assert_eq!(
            rounds[1],
            RememberedRound::new(Move::Cooperate, Move::Defect)
        );
    }

    #[test]
    fn advance_stays_in_range() {
        for n in 1..=6 {
            let space = StateSpace::new(MemoryDepth::new(n).unwrap());
            let mut s = StateIndex::INITIAL;
            for i in 0..100u32 {
                let my = Move::from_bit((i % 2) as u8);
                let opp = Move::from_bit(((i / 2) % 2) as u8);
                s = space.advance(s, my, opp);
                assert!(space.check(s).is_ok());
            }
        }
    }

    #[test]
    fn check_rejects_out_of_range() {
        let space = StateSpace::new(MemoryDepth::ONE);
        assert!(space.check(StateIndex(4)).is_err());
        assert!(space.check(StateIndex(3)).is_ok());
    }

    #[test]
    fn format_state_memory_two() {
        let space = StateSpace::new(MemoryDepth::TWO);
        let s = space.advance(
            space.advance(StateIndex::INITIAL, Move::Defect, Move::Cooperate),
            Move::Cooperate,
            Move::Defect,
        );
        assert_eq!(space.format_state(s), "CD|DC");
    }

    #[test]
    fn remembered_round_bits_round_trip() {
        for bits in 0..4 {
            assert_eq!(RememberedRound::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(MemoryDepth::SIX.to_string(), "memory-6");
        assert_eq!(StateIndex(3).to_string(), "s3");
    }
}
