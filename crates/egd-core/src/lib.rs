//! # egd-core
//!
//! Core library for **evolutionary game dynamics with extended-memory strategies**,
//! reproducing the model of Randles et al., *"Massively Parallel Model of Extended
//! Memory Use in Evolutionary Game Dynamics"* (IPDPS 2013).
//!
//! The model is built from three kinds of entities:
//!
//! * [`agent::Agent`]s play 200-round Iterated Prisoner's Dilemma ([`game::IpdGame`])
//!   games using a *memory-n* strategy ([`strategy::PureStrategy`] /
//!   [`strategy::MixedStrategy`]): the next move is a function of the joint
//!   cooperate/defect history of the last `n` rounds, encoded by [`state::StateSpace`].
//! * [`sset::StrategySet`]s (SSets) group agents that all hold the same strategy.
//!   The SSet is the unit of selection: its fitness is the sum of its agents'
//!   fitnesses, and the opponent strategies are partitioned across its agents.
//! * The [`dynamics::NatureAgent`] evolves the [`population::Population`] through
//!   Fermi pairwise-comparison learning ([`dynamics::PairwiseComparison`]) and
//!   random mutation ([`dynamics::Mutation`]).
//!
//! The crate is purely sequential and deterministic given a seed; parallel
//! execution lives in `egd-parallel` (shared memory) and `egd-cluster`
//! (simulated distributed machine).
//!
//! ## Quick example
//!
//! ```
//! use egd_core::prelude::*;
//!
//! // A memory-one world with 16 SSets of 4 agents each.
//! let config = SimulationConfig::builder()
//!     .memory(MemoryDepth::ONE)
//!     .num_ssets(16)
//!     .agents_per_sset(4)
//!     .generations(100)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//!
//! let mut sim = Simulation::new(config).unwrap();
//! let report = sim.run();
//! assert_eq!(report.generations_run, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod agent;
pub mod config;
pub mod dynamics;
pub mod error;
pub mod game;
pub mod metrics;
pub mod payoff;
pub mod population;
pub mod prelude;
pub mod rng;
pub mod simulation;
pub mod sset;
pub mod state;
pub mod strategy;

pub use action::Move;
pub use config::SimulationConfig;
pub use error::EgdError;
pub use payoff::PayoffMatrix;
pub use simulation::{RngStreamPos, Simulation, SimulationState};
pub use state::{MemoryDepth, StateIndex, StateSpace};
