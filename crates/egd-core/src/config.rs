//! Simulation configuration.
//!
//! [`SimulationConfig`] bundles every knob of the model — memory depth,
//! population structure, game parameters, evolutionary rates — with the
//! paper's production values as defaults (§V-C): 200 rounds per game, a
//! pairwise-comparison rate of 10%, a mutation rate of 5%, and the payoff
//! matrix `[3, 0, 4, 1]`.

use crate::dynamics::fermi::SelectionIntensity;
use crate::dynamics::{Mutation, NatureAgent, PairwiseComparison};
use crate::error::{EgdError, EgdResult};
use crate::game::{IpdGame, MarkovGame};
use crate::payoff::PayoffMatrix;
use crate::population::Population;
use crate::sset::OpponentPolicy;
use crate::state::MemoryDepth;
use crate::strategy::space::StrategyFamily;
use crate::strategy::StrategySpace;
use serde::{Deserialize, Serialize};

/// Full configuration of an evolutionary game dynamics simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of memory steps each strategy takes into account.
    pub memory: MemoryDepth,
    /// Pure or mixed strategies.
    pub family: StrategyFamily,
    /// Number of Strategy Sets in the population.
    pub num_ssets: usize,
    /// Number of agents per SSet.
    pub agents_per_sset: u32,
    /// Rounds per Iterated Prisoner's Dilemma game.
    pub rounds_per_game: u32,
    /// Number of generations to simulate.
    pub generations: u64,
    /// Probability of a pairwise-comparison event per generation.
    pub pc_rate: f64,
    /// Probability of a mutation event per generation.
    pub mutation_rate: f64,
    /// Intensity of selection β of the Fermi rule.
    pub beta: SelectionIntensity,
    /// Execution-noise probability (a move flips with this probability).
    pub noise: f64,
    /// The payoff matrix.
    pub payoffs: PayoffMatrix,
    /// Whether adoption requires the teacher to be strictly fitter.
    pub require_teacher_better: bool,
    /// Which opponents each SSet plays per generation.
    pub opponent_policy: OpponentPolicy,
    /// Global random seed.
    pub seed: u64,
}

impl SimulationConfig {
    /// Starts a builder pre-loaded with the paper's defaults.
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder::default()
    }

    /// The configuration of the paper's validation run (§VI-A), scaled by
    /// `scale` ∈ (0, 1] so tests and examples can run it quickly: 5,000 SSets
    /// of 4 agents each (20,000 agents), memory-one pure strategies, 10^7
    /// generations at full scale.
    pub fn validation_run(scale: f64, seed: u64) -> EgdResult<Self> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(EgdError::InvalidConfig {
                reason: format!("scale must be in (0, 1], got {scale}"),
            });
        }
        let num_ssets = ((5_000.0 * scale).round() as usize).max(8);
        let generations = ((1e7 * scale) as u64).max(1_000);
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(num_ssets)
            .agents_per_sset(4)
            .generations(generations)
            // The paper quotes a 10% pairwise-comparison rate and a 5%
            // mutation rate. Read as independent per-generation event
            // probabilities that ratio cannot concentrate the population
            // (mutation balances learning at ~50%), so — as in the
            // Traulsen-style processes the paper cites — we use a
            // learning-dominated ratio that reproduces the reported 85%
            // WSLS dominance; see EXPERIMENTS.md for the discussion.
            .pc_rate(0.5)
            .mutation_rate(0.02)
            .noise(0.02)
            // β acts on per-round relative fitness (see `nature_agent`).
            // β = 1 reaches the WSLS end state only for some seeds and
            // population sizes; β = 5 reproduced 92–98% WSLS across every
            // seed and scale swept, so the validation preset pins it.
            .beta(SelectionIntensity::new(5.0).expect("finite β"))
            .seed(seed)
            .build()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> EgdResult<()> {
        if self.num_ssets < 2 {
            return Err(EgdError::InvalidConfig {
                reason: format!("num_ssets must be at least 2, got {}", self.num_ssets),
            });
        }
        if self.agents_per_sset == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "agents_per_sset must be at least 1".to_string(),
            });
        }
        if self.rounds_per_game == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "rounds_per_game must be at least 1".to_string(),
            });
        }
        for (name, value) in [
            ("pc_rate", self.pc_rate),
            ("mutation_rate", self.mutation_rate),
            ("noise", self.noise),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(EgdError::InvalidProbability { name, value });
            }
        }
        self.payoffs.validated()?;
        Ok(())
    }

    /// The strategy space the population samples from.
    pub fn strategy_space(&self) -> StrategySpace {
        StrategySpace::new(self.memory, self.family)
    }

    /// Builds the game engine described by this configuration.
    pub fn game(&self) -> EgdResult<IpdGame> {
        IpdGame::new(self.memory, self.rounds_per_game, self.payoffs, self.noise)
    }

    /// Builds the exact Markov analyser described by this configuration.
    pub fn markov_game(&self) -> EgdResult<MarkovGame> {
        MarkovGame::new(self.memory, self.rounds_per_game, self.payoffs, self.noise)
    }

    /// Builds the Nature Agent described by this configuration.
    ///
    /// The agent compares *relative* fitness: raw per-SSet sums are scaled
    /// by `1 / (opponents × rounds_per_game)` so that the Fermi β acts on
    /// the per-round payoff scale of the paper's Eqn. 1 (see
    /// [`NatureAgent::with_fitness_scale`]).
    pub fn nature_agent(&self) -> EgdResult<NatureAgent> {
        let pc = PairwiseComparison::new(self.pc_rate, self.beta, self.require_teacher_better)?;
        let mutation = Mutation::new(self.mutation_rate)?;
        let games = self.opponent_policy.num_opponents(self.num_ssets) as f64;
        let scale = 1.0 / (games * f64::from(self.rounds_per_game)).max(1.0);
        Ok(
            NatureAgent::new(pc, mutation, self.strategy_space(), self.seed)
                .with_fitness_scale(scale),
        )
    }

    /// Builds the initial random population described by this configuration.
    pub fn initial_population(&self) -> EgdResult<Population> {
        Ok(Population::random(
            self.strategy_space(),
            self.num_ssets,
            self.agents_per_sset,
            self.seed,
        )?
        .with_opponent_policy(self.opponent_policy))
    }

    /// Total number of agents.
    pub fn total_agents(&self) -> u128 {
        self.num_ssets as u128 * self.agents_per_sset as u128
    }

    /// Number of strategy-pair games per generation
    /// (every SSet against each of its opponents).
    pub fn games_per_generation(&self) -> u64 {
        self.num_ssets as u64 * self.opponent_policy.num_opponents(self.num_ssets) as u64
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::builder()
            .build()
            .expect("defaults are valid")
    }
}

/// Builder for [`SimulationConfig`], pre-loaded with the paper's defaults.
#[derive(Debug, Clone)]
pub struct SimulationConfigBuilder {
    config: SimulationConfig,
}

impl Default for SimulationConfigBuilder {
    fn default() -> Self {
        SimulationConfigBuilder {
            config: SimulationConfig {
                memory: MemoryDepth::ONE,
                family: StrategyFamily::Pure,
                num_ssets: 64,
                agents_per_sset: 4,
                rounds_per_game: IpdGame::PAPER_ROUNDS,
                generations: 1_000,
                pc_rate: 0.1,
                mutation_rate: 0.05,
                beta: SelectionIntensity::INTERMEDIATE,
                noise: 0.0,
                payoffs: PayoffMatrix::PAPER,
                require_teacher_better: true,
                opponent_policy: OpponentPolicy::AllOthers,
                seed: 0,
            },
        }
    }
}

impl SimulationConfigBuilder {
    /// Sets the memory depth.
    pub fn memory(mut self, memory: MemoryDepth) -> Self {
        self.config.memory = memory;
        self
    }

    /// Sets the strategy family (pure / mixed).
    pub fn family(mut self, family: StrategyFamily) -> Self {
        self.config.family = family;
        self
    }

    /// Sets the number of SSets.
    pub fn num_ssets(mut self, num_ssets: usize) -> Self {
        self.config.num_ssets = num_ssets;
        self
    }

    /// Sets the number of agents per SSet.
    pub fn agents_per_sset(mut self, agents: u32) -> Self {
        self.config.agents_per_sset = agents;
        self
    }

    /// Sets the number of rounds per game.
    pub fn rounds_per_game(mut self, rounds: u32) -> Self {
        self.config.rounds_per_game = rounds;
        self
    }

    /// Sets the number of generations.
    pub fn generations(mut self, generations: u64) -> Self {
        self.config.generations = generations;
        self
    }

    /// Sets the pairwise-comparison rate.
    pub fn pc_rate(mut self, rate: f64) -> Self {
        self.config.pc_rate = rate;
        self
    }

    /// Sets the mutation rate.
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.config.mutation_rate = rate;
        self
    }

    /// Sets the selection intensity.
    pub fn beta(mut self, beta: SelectionIntensity) -> Self {
        self.config.beta = beta;
        self
    }

    /// Sets the execution-noise probability.
    pub fn noise(mut self, noise: f64) -> Self {
        self.config.noise = noise;
        self
    }

    /// Sets the payoff matrix.
    pub fn payoffs(mut self, payoffs: PayoffMatrix) -> Self {
        self.config.payoffs = payoffs;
        self
    }

    /// Sets whether adoption requires a strictly fitter teacher.
    pub fn require_teacher_better(mut self, require: bool) -> Self {
        self.config.require_teacher_better = require;
        self
    }

    /// Sets the opponent policy.
    pub fn opponent_policy(mut self, policy: OpponentPolicy) -> Self {
        self.config.opponent_policy = policy;
        self
    }

    /// Sets the global seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> EgdResult<SimulationConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_paper_parameters() {
        let config = SimulationConfig::default();
        assert_eq!(config.rounds_per_game, 200);
        assert_eq!(config.pc_rate, 0.1);
        assert_eq!(config.mutation_rate, 0.05);
        assert_eq!(config.payoffs, PayoffMatrix::PAPER);
        assert_eq!(config.memory, MemoryDepth::ONE);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let config = SimulationConfig::builder()
            .memory(MemoryDepth::THREE)
            .num_ssets(128)
            .agents_per_sset(8)
            .rounds_per_game(50)
            .generations(10)
            .pc_rate(0.2)
            .mutation_rate(0.01)
            .noise(0.02)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(config.memory, MemoryDepth::THREE);
        assert_eq!(config.num_ssets, 128);
        assert_eq!(config.agents_per_sset, 8);
        assert_eq!(config.rounds_per_game, 50);
        assert_eq!(config.generations, 10);
        assert_eq!(config.seed, 99);
        assert_eq!(config.total_agents(), 1024);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SimulationConfig::builder().num_ssets(1).build().is_err());
        assert!(SimulationConfig::builder()
            .agents_per_sset(0)
            .build()
            .is_err());
        assert!(SimulationConfig::builder()
            .rounds_per_game(0)
            .build()
            .is_err());
        assert!(SimulationConfig::builder().pc_rate(1.5).build().is_err());
        assert!(SimulationConfig::builder()
            .mutation_rate(-0.1)
            .build()
            .is_err());
        assert!(SimulationConfig::builder().noise(2.0).build().is_err());
    }

    #[test]
    fn builder_rejects_too_few_ssets() {
        for num_ssets in [0, 1] {
            let err = SimulationConfig::builder()
                .num_ssets(num_ssets)
                .build()
                .unwrap_err();
            match err {
                EgdError::InvalidConfig { reason } => {
                    assert!(reason.contains("num_ssets"), "unhelpful reason: {reason}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_rejects_invalid_probabilities_including_nan() {
        // Each probability-like knob must reject out-of-range and NaN values,
        // and the error must name the offending field.
        type Setter = fn(SimulationConfigBuilder, f64) -> SimulationConfigBuilder;
        let knobs: [(&str, Setter); 3] = [
            ("pc_rate", SimulationConfigBuilder::pc_rate),
            ("mutation_rate", SimulationConfigBuilder::mutation_rate),
            ("noise", SimulationConfigBuilder::noise),
        ];
        for (name, set) in knobs {
            for bad in [-0.01, 1.01, f64::NAN, f64::INFINITY] {
                let err = set(SimulationConfig::builder(), bad).build().unwrap_err();
                match err {
                    EgdError::InvalidProbability { name: reported, .. } => {
                        assert_eq!(reported, name)
                    }
                    other => panic!("{name}={bad}: expected InvalidProbability, got {other:?}"),
                }
            }
            assert!(set(SimulationConfig::builder(), 0.0).build().is_ok());
            assert!(set(SimulationConfig::builder(), 1.0).build().is_ok());
        }
    }

    #[test]
    fn builder_rejects_invalid_payoffs() {
        let mut payoffs = PayoffMatrix::PAPER;
        payoffs.temptation = f64::NAN;
        assert!(SimulationConfig::builder()
            .payoffs(payoffs)
            .build()
            .is_err());
    }

    #[test]
    fn builder_needs_no_required_fields() {
        // Every knob has a paper default, so the empty builder must produce
        // the default configuration rather than a missing-field error.
        let config = SimulationConfig::builder().build().unwrap();
        assert_eq!(config, SimulationConfig::default());
    }

    #[test]
    fn selection_intensity_rejects_invalid_beta_before_the_builder() {
        // β is validated at SelectionIntensity construction, so no invalid
        // value can reach the builder.
        assert!(SelectionIntensity::new(-1.0).is_err());
        assert!(SelectionIntensity::new(f64::NAN).is_err());
        assert!(SelectionIntensity::new(f64::INFINITY).is_err());
        assert!(SelectionIntensity::new(0.0).is_ok());
    }

    #[test]
    fn nature_agent_uses_relative_fitness_scale() {
        let config = SimulationConfig::builder()
            .num_ssets(50)
            .rounds_per_game(200)
            .build()
            .unwrap();
        let nature = config.nature_agent().unwrap();
        // 49 opponents x 200 rounds.
        assert!((nature.fitness_scale() - 1.0 / 9_800.0).abs() < 1e-15);
    }

    #[test]
    fn games_per_generation_counts_pairs() {
        let config = SimulationConfig::builder().num_ssets(10).build().unwrap();
        assert_eq!(config.games_per_generation(), 10 * 9);
        let with_self = SimulationConfig::builder()
            .num_ssets(10)
            .opponent_policy(OpponentPolicy::AllIncludingSelf)
            .build()
            .unwrap();
        assert_eq!(with_self.games_per_generation(), 100);
    }

    #[test]
    fn factories_produce_consistent_objects() {
        let config = SimulationConfig::builder()
            .memory(MemoryDepth::TWO)
            .num_ssets(16)
            .build()
            .unwrap();
        assert_eq!(config.game().unwrap().memory(), MemoryDepth::TWO);
        assert_eq!(config.markov_game().unwrap().memory(), MemoryDepth::TWO);
        let population = config.initial_population().unwrap();
        assert_eq!(population.num_ssets(), 16);
        assert_eq!(population.memory(), MemoryDepth::TWO);
        let nature = config.nature_agent().unwrap();
        assert_eq!(nature.space().memory(), MemoryDepth::TWO);
    }

    #[test]
    fn validation_run_scales() {
        let config = SimulationConfig::validation_run(0.01, 1).unwrap();
        assert_eq!(config.num_ssets, 50);
        assert_eq!(config.agents_per_sset, 4);
        assert_eq!(config.memory, MemoryDepth::ONE);
        assert!(config.generations >= 1_000);
        assert!(SimulationConfig::validation_run(0.0, 1).is_err());
        assert!(SimulationConfig::validation_run(1.5, 1).is_err());

        let full = SimulationConfig::validation_run(1.0, 1).unwrap();
        assert_eq!(full.num_ssets, 5_000);
        assert_eq!(full.total_agents(), 20_000);
        assert_eq!(full.generations, 10_000_000);
    }

    #[test]
    fn serde_round_trip() {
        let config = SimulationConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        let back: SimulationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
