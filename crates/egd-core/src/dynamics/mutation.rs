//! Random mutation of SSet strategies.
//!
//! With rate `µ` per generation the Nature Agent generates an entirely new
//! strategy (uniformly at random from the strategy space) and assigns it to a
//! randomly selected SSet (§IV-E, "gen_new_strat"). The paper's production
//! runs use `µ = 0.05`; this high mutation pressure is what lets a population
//! of samples explore a `2^4096`-strategy space.

use crate::error::{EgdError, EgdResult};
use crate::strategy::{StrategyKind, StrategySpace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the mutation process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mutation {
    /// Probability that a mutation event happens in a given generation.
    pub rate: f64,
}

impl Mutation {
    /// The paper's production mutation rate, `µ = 0.05`.
    pub fn paper_defaults() -> Self {
        Mutation { rate: 0.05 }
    }

    /// Creates a mutation configuration, validating the rate.
    pub fn new(rate: f64) -> EgdResult<Self> {
        if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
            return Err(EgdError::InvalidProbability {
                name: "mutation_rate",
                value: rate,
            });
        }
        Ok(Mutation { rate })
    }

    /// Decides whether a mutation happens this generation and, if so,
    /// generates the new strategy and its target SSet.
    pub fn maybe_mutate<R: Rng + ?Sized>(
        &self,
        space: &StrategySpace,
        num_ssets: usize,
        rng: &mut R,
    ) -> Option<MutationEvent> {
        if num_ssets == 0 || !rng.gen_bool(self.rate) {
            return None;
        }
        let target = rng.gen_range(0..num_ssets);
        let strategy = space.random_strategy(rng);
        Some(MutationEvent {
            sset: target,
            strategy,
        })
    }
}

impl Default for Mutation {
    fn default() -> Self {
        Mutation::paper_defaults()
    }
}

/// A mutation event: the SSet whose strategy is replaced and the new
/// strategy. This is exactly the payload the Nature Agent broadcasts to all
/// ranks in the distributed implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutationEvent {
    /// Index of the mutated SSet.
    pub sset: usize,
    /// The freshly generated strategy.
    pub strategy: StrategyKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamKind};
    use crate::state::MemoryDepth;
    use crate::strategy::Strategy;

    #[test]
    fn paper_defaults() {
        assert_eq!(Mutation::paper_defaults().rate, 0.05);
        assert_eq!(Mutation::default(), Mutation::paper_defaults());
    }

    #[test]
    fn validation() {
        assert!(Mutation::new(-0.01).is_err());
        assert!(Mutation::new(1.01).is_err());
        assert!(Mutation::new(f64::NAN).is_err());
        assert!(Mutation::new(0.05).is_ok());
    }

    #[test]
    fn mutation_rate_is_respected() {
        let mutation = Mutation::new(0.05).unwrap();
        let space = StrategySpace::pure(MemoryDepth::ONE);
        let mut rng = stream(1, StreamKind::Mutation, 0);
        let trials = 40_000;
        let hits = (0..trials)
            .filter(|_| mutation.maybe_mutate(&space, 16, &mut rng).is_some())
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.05).abs() < 0.006, "observed {rate}");
    }

    #[test]
    fn zero_rate_never_mutates() {
        let mutation = Mutation::new(0.0).unwrap();
        let space = StrategySpace::pure(MemoryDepth::ONE);
        let mut rng = stream(2, StreamKind::Mutation, 1);
        assert!((0..100).all(|_| mutation.maybe_mutate(&space, 16, &mut rng).is_none()));
    }

    #[test]
    fn empty_population_never_mutates() {
        let mutation = Mutation::new(1.0).unwrap();
        let space = StrategySpace::pure(MemoryDepth::ONE);
        let mut rng = stream(3, StreamKind::Mutation, 2);
        assert!(mutation.maybe_mutate(&space, 0, &mut rng).is_none());
    }

    #[test]
    fn mutation_targets_are_roughly_uniform() {
        let mutation = Mutation::new(1.0).unwrap();
        let space = StrategySpace::pure(MemoryDepth::ONE);
        let mut rng = stream(4, StreamKind::Mutation, 3);
        let n = 8usize;
        let trials = 40_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            let e = mutation.maybe_mutate(&space, n, &mut rng).unwrap();
            counts[e.sset] += 1;
        }
        let expected = trials as f64 / n as f64;
        for c in counts {
            assert!((c as f64 - expected).abs() < expected * 0.15);
        }
    }

    #[test]
    fn mutated_strategy_has_correct_memory_and_family() {
        let mutation = Mutation::new(1.0).unwrap();
        let mut rng = stream(5, StreamKind::Mutation, 4);
        let pure_space = StrategySpace::pure(MemoryDepth::THREE);
        let e = mutation.maybe_mutate(&pure_space, 4, &mut rng).unwrap();
        assert_eq!(e.strategy.memory(), MemoryDepth::THREE);
        assert!(matches!(e.strategy, StrategyKind::Pure(_)));

        let mixed_space = StrategySpace::mixed(MemoryDepth::TWO);
        let e = mutation.maybe_mutate(&mixed_space, 4, &mut rng).unwrap();
        assert!(matches!(e.strategy, StrategyKind::Mixed(_)));
    }

    #[test]
    fn mutation_is_reproducible_per_stream() {
        let mutation = Mutation::new(1.0).unwrap();
        let space = StrategySpace::pure(MemoryDepth::SIX);
        let mut a = stream(6, StreamKind::Mutation, 5);
        let mut b = stream(6, StreamKind::Mutation, 5);
        assert_eq!(
            mutation.maybe_mutate(&space, 32, &mut a),
            mutation.maybe_mutate(&space, 32, &mut b)
        );
    }
}
