//! The Fermi imitation function from statistical physics.
//!
//! The probability that a learner adopts a teacher's strategy is
//! `p = 1 / (1 + exp(-β (π_T − π_L)))` (Eqn. 1 of the paper, following
//! Traulsen et al. and Blume): `β` is the *intensity of selection* — `β → 0`
//! makes imitation a coin flip regardless of fitness, `β → ∞` makes the
//! better strategy always win.

use crate::error::{EgdError, EgdResult};
use serde::{Deserialize, Serialize};

/// The intensity of selection `β ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SelectionIntensity(f64);

impl SelectionIntensity {
    /// Weak selection commonly used in the evolutionary dynamics literature.
    pub const WEAK: SelectionIntensity = SelectionIntensity(0.1);
    /// Intermediate selection (the library default).
    pub const INTERMEDIATE: SelectionIntensity = SelectionIntensity(1.0);
    /// Strong selection: the fitter strategy is adopted almost surely.
    pub const STRONG: SelectionIntensity = SelectionIntensity(10.0);

    /// Creates a selection intensity, rejecting negative or non-finite values.
    pub fn new(beta: f64) -> EgdResult<Self> {
        if beta.is_finite() && beta >= 0.0 {
            Ok(SelectionIntensity(beta))
        } else {
            Err(EgdError::InvalidConfig {
                reason: format!("selection intensity must be finite and non-negative, got {beta}"),
            })
        }
    }

    /// The raw β value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for SelectionIntensity {
    fn default() -> Self {
        SelectionIntensity::INTERMEDIATE
    }
}

/// The Fermi probability that the learner adopts the teacher's strategy,
/// given their payoffs: `1 / (1 + exp(-β (π_T − π_L)))`.
#[inline]
pub fn fermi_probability(
    beta: SelectionIntensity,
    teacher_payoff: f64,
    learner_payoff: f64,
) -> f64 {
    let exponent = -beta.value() * (teacher_payoff - learner_payoff);
    // Guard against overflow for very large |exponent|.
    if exponent > 700.0 {
        0.0
    } else if exponent < -700.0 {
        1.0
    } else {
        1.0 / (1.0 + exponent.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_payoffs_give_half() {
        let p = fermi_probability(SelectionIntensity::INTERMEDIATE, 5.0, 5.0);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn better_teacher_is_adopted_more_often() {
        let beta = SelectionIntensity::INTERMEDIATE;
        assert!(fermi_probability(beta, 6.0, 5.0) > 0.5);
        assert!(fermi_probability(beta, 5.0, 6.0) < 0.5);
    }

    #[test]
    fn zero_beta_is_random_choice() {
        let beta = SelectionIntensity::new(0.0).unwrap();
        assert!((fermi_probability(beta, 100.0, 0.0) - 0.5).abs() < 1e-12);
        assert!((fermi_probability(beta, 0.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strong_selection_is_nearly_deterministic() {
        let beta = SelectionIntensity::STRONG;
        assert!(fermi_probability(beta, 10.0, 0.0) > 0.999);
        assert!(fermi_probability(beta, 0.0, 10.0) < 0.001);
    }

    #[test]
    fn extreme_differences_do_not_overflow() {
        let beta = SelectionIntensity::new(1000.0).unwrap();
        assert_eq!(fermi_probability(beta, 1e6, -1e6), 1.0);
        assert_eq!(fermi_probability(beta, -1e6, 1e6), 0.0);
    }

    #[test]
    fn probability_is_monotone_in_payoff_difference() {
        let beta = SelectionIntensity::WEAK;
        let mut last = 0.0;
        for diff in -10..=10 {
            let p = fermi_probability(beta, diff as f64, 0.0);
            assert!(p >= last);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn complementary_symmetry() {
        // p(T, L) + p(L, T) = 1 for the Fermi rule.
        let beta = SelectionIntensity::INTERMEDIATE;
        for (a, b) in [(3.0, 1.0), (0.0, 7.5), (-2.0, 2.0)] {
            let sum = fermi_probability(beta, a, b) + fermi_probability(beta, b, a);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn intensity_validation() {
        assert!(SelectionIntensity::new(-1.0).is_err());
        assert!(SelectionIntensity::new(f64::NAN).is_err());
        assert!(SelectionIntensity::new(f64::INFINITY).is_err());
        assert_eq!(SelectionIntensity::new(2.5).unwrap().value(), 2.5);
        assert_eq!(
            SelectionIntensity::default(),
            SelectionIntensity::INTERMEDIATE
        );
    }
}
