//! Population dynamics: how strategies spread and appear.
//!
//! Two processes evolve the population (§IV-B of the paper):
//!
//! * **Pairwise comparison learning** ([`PairwiseComparison`]): the Nature
//!   Agent picks a random (teacher, learner) pair of SSets; if the teacher's
//!   fitness is higher, the learner adopts the teacher's strategy with the
//!   Fermi probability `p = 1 / (1 + exp(-β (π_T − π_L)))` ([`fermi`]).
//! * **Mutation** ([`Mutation`]): with rate `µ` a random SSet receives a
//!   brand-new strategy drawn uniformly from the strategy space.
//!
//! The [`NatureAgent`] packages both into per-generation *decisions* that can
//! either be applied directly (sequential / shared-memory execution) or
//! broadcast to all ranks first (distributed execution) — the decision and
//! its application are deliberately separated so both execution modes share
//! identical dynamics.

pub mod fermi;
pub mod mutation;
pub mod nature;
pub mod pairwise;

pub use fermi::{fermi_probability, SelectionIntensity};
pub use mutation::{Mutation, MutationEvent};
pub use nature::{GenerationDecision, NatureAgent};
pub use pairwise::{PairwiseComparison, PcEvent};
