//! The Nature Agent: the master process of the population dynamics.
//!
//! The Nature Agent (§IV-E) keeps the record of which strategy every SSet
//! holds, decides in which generations pairwise comparison and mutation
//! happen, resolves them, and propagates the resulting strategy changes to
//! all SSets. In the distributed implementation it occupies its own rank and
//! the propagation is an `MPI_Bcast`; in shared memory the changes are
//! applied directly.
//!
//! To keep every execution mode bit-for-bit identical, the Nature Agent draws
//! all of its randomness from per-generation streams keyed by the global seed
//! and the generation number — the *order* in which ranks or threads finish
//! their games can never change a decision.

use crate::dynamics::mutation::{Mutation, MutationEvent};
use crate::dynamics::pairwise::{PairwiseComparison, PcEvent};
use crate::error::EgdResult;
use crate::population::Population;
use crate::rng::{substream, StreamKind};
use crate::strategy::StrategySpace;
use serde::{Deserialize, Serialize};

/// Everything the Nature Agent decided for one generation. This is the
/// payload that gets broadcast to all ranks in the distributed executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GenerationDecision {
    /// The generation this decision belongs to.
    pub generation: u64,
    /// The pairwise-comparison event, if one was initiated.
    pub pairwise: Option<PcEvent>,
    /// The mutation event, if one was initiated.
    pub mutation: Option<MutationEvent>,
}

impl GenerationDecision {
    /// Whether this decision changes any SSet's strategy (and therefore
    /// requires a strategy-view update on every rank).
    pub fn changes_population(&self) -> bool {
        self.pairwise.map(|e| e.adopted).unwrap_or(false) || self.mutation.is_some()
    }

    /// The SSet indices whose strategies change, in application order
    /// (pairwise comparison first, then mutation, matching the paper's
    /// pseudo-code).
    pub fn changed_ssets(&self) -> Vec<usize> {
        let mut changed = Vec::new();
        if let Some(pc) = &self.pairwise {
            if pc.adopted {
                changed.push(pc.learner);
            }
        }
        if let Some(m) = &self.mutation {
            if !changed.contains(&m.sset) {
                changed.push(m.sset);
            }
        }
        changed
    }
}

/// The Nature Agent.
#[derive(Debug, Clone)]
pub struct NatureAgent {
    pc: PairwiseComparison,
    mutation: Mutation,
    space: StrategySpace,
    seed: u64,
    fitness_scale: f64,
}

impl NatureAgent {
    /// Creates a Nature Agent comparing raw fitness values (scale 1).
    pub fn new(
        pc: PairwiseComparison,
        mutation: Mutation,
        space: StrategySpace,
        seed: u64,
    ) -> Self {
        NatureAgent {
            pc,
            mutation,
            space,
            seed,
            fitness_scale: 1.0,
        }
    }

    /// Sets the factor fitness values are multiplied by before the Fermi
    /// comparison.
    ///
    /// The paper's Eqn. 1 defines the intensity of selection β on the scale
    /// of *payoffs*, while an SSet's raw fitness is a sum over all opponents
    /// and all rounds (≈ 10⁴ at paper settings). Comparing raw sums with a
    /// β of order 1 saturates the Fermi rule into a deterministic
    /// better-wins step function, which locks populations into the first
    /// strategy that fixates (typically ALLD) and suppresses the
    /// WSLS-emergence pathway (§VI-A). [`crate::config::SimulationConfig`]
    /// therefore sets `1 / (opponents × rounds)` so the comparison happens
    /// on per-opponent-per-round payoffs.
    pub fn with_fitness_scale(mut self, fitness_scale: f64) -> Self {
        self.fitness_scale = fitness_scale;
        self
    }

    /// The factor applied to fitness values before the Fermi comparison.
    pub fn fitness_scale(&self) -> f64 {
        self.fitness_scale
    }

    /// The pairwise-comparison configuration.
    pub fn pairwise_config(&self) -> &PairwiseComparison {
        &self.pc
    }

    /// The mutation configuration.
    pub fn mutation_config(&self) -> &Mutation {
        &self.mutation
    }

    /// The strategy space mutations draw from.
    pub fn space(&self) -> StrategySpace {
        self.space
    }

    /// Which SSets (if any) the Nature Agent wants fitness values for in this
    /// generation. Mirrors the paper's two-phase protocol: the selection is
    /// broadcast first, only the selected SSets report their fitness back.
    pub fn select_pc_pair(&self, generation: u64, num_ssets: usize) -> Option<(usize, usize)> {
        let mut rng = substream(self.seed, StreamKind::Nature, generation, 0);
        self.pc.select_pair(num_ssets, &mut rng)
    }

    /// Makes the full decision for a generation given the fitness table of
    /// all SSets. Pure function of `(seed, generation, fitness)`; does not
    /// touch the population.
    pub fn decide(&self, generation: u64, fitness: &[f64]) -> GenerationDecision {
        let num_ssets = fitness.len();
        let pairwise = self
            .select_pc_pair(generation, num_ssets)
            .map(|(teacher, learner)| {
                let mut rng = substream(self.seed, StreamKind::Nature, generation, 1);
                // The PcEvent records the scaled (relative) fitness values the
                // Fermi draw actually used, so replaying a broadcast decision is
                // scale-independent.
                self.pc.resolve(
                    teacher,
                    learner,
                    fitness[teacher] * self.fitness_scale,
                    fitness[learner] * self.fitness_scale,
                    &mut rng,
                )
            });
        let mutation = {
            let mut rng = substream(self.seed, StreamKind::Mutation, generation, 0);
            self.mutation.maybe_mutate(&self.space, num_ssets, &mut rng)
        };
        GenerationDecision {
            generation,
            pairwise,
            mutation,
        }
    }

    /// Applies a decision to the population (the "update all SSets" step).
    /// Pairwise adoption is applied before mutation, as in the paper's
    /// pseudo-code, so a mutation landing on the same SSet overrides the
    /// adopted strategy.
    pub fn apply(
        &self,
        decision: &GenerationDecision,
        population: &mut Population,
    ) -> EgdResult<()> {
        if let Some(pc) = &decision.pairwise {
            if pc.adopted {
                population.adopt_strategy(pc.learner, pc.teacher)?;
            }
        }
        if let Some(m) = &decision.mutation {
            population.set_strategy(m.sset, m.strategy.clone())?;
        }
        Ok(())
    }

    /// Convenience: decide and immediately apply. Returns the decision.
    pub fn evolve(
        &self,
        generation: u64,
        fitness: &[f64],
        population: &mut Population,
    ) -> EgdResult<GenerationDecision> {
        let decision = self.decide(generation, fitness);
        self.apply(&decision, population)?;
        Ok(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::fermi::SelectionIntensity;
    use crate::state::MemoryDepth;
    use crate::strategy::{NamedStrategy, StrategyKind};

    fn agent(seed: u64) -> NatureAgent {
        NatureAgent::new(
            PairwiseComparison::new(1.0, SelectionIntensity::STRONG, true).unwrap(),
            Mutation::new(0.0).unwrap(),
            StrategySpace::pure(MemoryDepth::ONE),
            seed,
        )
    }

    fn population() -> Population {
        let strategies = vec![
            StrategyKind::Pure(NamedStrategy::AlwaysCooperate.to_pure()),
            StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure()),
            StrategyKind::Pure(NamedStrategy::TitForTat.to_pure()),
            StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure()),
        ];
        Population::from_strategies(StrategySpace::pure(MemoryDepth::ONE), 2, strategies).unwrap()
    }

    #[test]
    fn decisions_are_deterministic_per_generation() {
        let nature = agent(42);
        let fitness = vec![1.0, 2.0, 3.0, 4.0];
        let a = nature.decide(7, &fitness);
        let b = nature.decide(7, &fitness);
        assert_eq!(a, b);
        let c = nature.decide(8, &fitness);
        // Different generations (almost surely) make different selections.
        assert!(
            a.pairwise != c.pairwise || a.mutation != c.mutation || a.generation != c.generation
        );
    }

    #[test]
    fn decide_does_not_modify_population() {
        let nature = agent(1);
        let population = population();
        let before = population.clone();
        let _ = nature.decide(0, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(population, before);
    }

    #[test]
    fn apply_adopts_teacher_strategy_when_adopted() {
        let nature = agent(3);
        let mut population = population();
        // Craft fitness so that whoever is teacher has strictly higher fitness
        // only when teacher index > learner index; run until an adoption
        // happens and verify the learner now matches the teacher.
        let fitness = vec![1.0, 2.0, 3.0, 4.0];
        let mut adopted_any = false;
        for generation in 0..200 {
            let decision = nature
                .evolve(generation, &fitness, &mut population)
                .unwrap();
            if let Some(pc) = decision.pairwise {
                if pc.adopted {
                    adopted_any = true;
                    assert_eq!(
                        population.strategy(pc.learner).unwrap(),
                        population.strategy(pc.teacher).unwrap()
                    );
                    break;
                }
            }
        }
        assert!(
            adopted_any,
            "no adoption occurred in 200 generations at PC rate 1.0"
        );
    }

    #[test]
    fn mutation_overrides_adoption_on_same_sset() {
        let nature = NatureAgent::new(
            PairwiseComparison::new(0.0, SelectionIntensity::STRONG, true).unwrap(),
            Mutation::new(1.0).unwrap(),
            StrategySpace::pure(MemoryDepth::ONE),
            9,
        );
        let mut population = population();
        let fitness = vec![0.0; 4];
        let decision = nature.evolve(0, &fitness, &mut population).unwrap();
        let m = decision
            .mutation
            .clone()
            .expect("mutation rate 1.0 always mutates");
        assert_eq!(population.strategy(m.sset).unwrap(), &m.strategy);
        assert!(decision.changes_population());
        assert_eq!(decision.changed_ssets(), vec![m.sset]);
    }

    #[test]
    fn changed_ssets_lists_learner_and_mutant() {
        let decision = GenerationDecision {
            generation: 0,
            pairwise: Some(PcEvent {
                teacher: 1,
                learner: 2,
                teacher_fitness: 5.0,
                learner_fitness: 1.0,
                probability: 0.9,
                adopted: true,
            }),
            mutation: Some(MutationEvent {
                sset: 3,
                strategy: StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure()),
            }),
        };
        assert_eq!(decision.changed_ssets(), vec![2, 3]);
        assert!(decision.changes_population());

        let no_adopt = GenerationDecision {
            generation: 0,
            pairwise: Some(PcEvent {
                adopted: false,
                ..decision.pairwise.unwrap()
            }),
            mutation: None,
        };
        assert!(!no_adopt.changes_population());
        assert!(no_adopt.changed_ssets().is_empty());
    }

    #[test]
    fn select_pc_pair_matches_decide() {
        let nature = agent(11);
        let fitness = vec![1.0, 5.0, 2.0, 0.5];
        for generation in 0..50 {
            let pair = nature.select_pc_pair(generation, fitness.len());
            let decision = nature.decide(generation, &fitness);
            match (pair, decision.pairwise) {
                (Some((t, l)), Some(pc)) => {
                    assert_eq!((t, l), (pc.teacher, pc.learner));
                }
                (None, None) => {}
                other => panic!("selection mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn default_decision_is_empty() {
        let d = GenerationDecision::default();
        assert!(!d.changes_population());
        assert!(d.changed_ssets().is_empty());
    }
}
