//! Pairwise-comparison (PC) learning between SSets.
//!
//! At a configurable rate per generation, the Nature Agent selects two
//! distinct SSets at random: the first is the *teacher*, the second the
//! *learner*. If the teacher's fitness exceeds the learner's, the learner
//! adopts the teacher's strategy with the Fermi probability (§IV-B of the
//! paper). The decision — including whether adoption happened — is recorded
//! as a [`PcEvent`] so that distributed executors can broadcast and replay it
//! deterministically.

use crate::dynamics::fermi::{fermi_probability, SelectionIntensity};
use crate::error::{EgdError, EgdResult};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the pairwise-comparison process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairwiseComparison {
    /// Probability that a PC event is initiated in a given generation
    /// (the paper's production runs use 0.1).
    pub rate: f64,
    /// Intensity of selection β in the Fermi rule.
    pub beta: SelectionIntensity,
    /// Whether adoption additionally requires the teacher's fitness to be
    /// strictly greater than the learner's (the paper's pseudo-code gates the
    /// Fermi draw on this comparison). Disabling it yields the symmetric
    /// Traulsen-style process where a worse strategy can occasionally be
    /// imitated.
    pub require_teacher_better: bool,
}

impl PairwiseComparison {
    /// The paper's production setting: PC rate 10%, intermediate selection,
    /// teacher must be strictly better.
    pub fn paper_defaults() -> Self {
        PairwiseComparison {
            rate: 0.1,
            beta: SelectionIntensity::INTERMEDIATE,
            require_teacher_better: true,
        }
    }

    /// Creates a PC configuration, validating the rate.
    pub fn new(
        rate: f64,
        beta: SelectionIntensity,
        require_teacher_better: bool,
    ) -> EgdResult<Self> {
        if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
            return Err(EgdError::InvalidProbability {
                name: "pc_rate",
                value: rate,
            });
        }
        Ok(PairwiseComparison {
            rate,
            beta,
            require_teacher_better,
        })
    }

    /// Decides whether a PC event happens this generation and, if so, which
    /// SSets are involved. Returns `None` when no comparison is initiated.
    ///
    /// The fitness lookup is deferred: the caller supplies the fitness of the
    /// selected SSets to [`PairwiseComparison::resolve`]. This mirrors the
    /// paper's protocol, where only the two selected SSets send their fitness
    /// back to the Nature Agent.
    pub fn select_pair<R: Rng + ?Sized>(
        &self,
        num_ssets: usize,
        rng: &mut R,
    ) -> Option<(usize, usize)> {
        if num_ssets < 2 {
            return None;
        }
        if !rng.gen_bool(self.rate) {
            return None;
        }
        let teacher = rng.gen_range(0..num_ssets);
        // Draw a distinct learner.
        let mut learner = rng.gen_range(0..num_ssets - 1);
        if learner >= teacher {
            learner += 1;
        }
        Some((teacher, learner))
    }

    /// Resolves a selected pair given both fitness values: draws the Fermi
    /// coin and reports whether the learner adopts the teacher's strategy.
    pub fn resolve<R: Rng + ?Sized>(
        &self,
        teacher: usize,
        learner: usize,
        teacher_fitness: f64,
        learner_fitness: f64,
        rng: &mut R,
    ) -> PcEvent {
        let probability = fermi_probability(self.beta, teacher_fitness, learner_fitness);
        let gate_passed = !self.require_teacher_better || teacher_fitness > learner_fitness;
        let adopted = gate_passed && rng.gen_bool(probability);
        PcEvent {
            teacher,
            learner,
            teacher_fitness,
            learner_fitness,
            probability,
            adopted,
        }
    }
}

impl Default for PairwiseComparison {
    fn default() -> Self {
        PairwiseComparison::paper_defaults()
    }
}

/// A resolved pairwise-comparison event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcEvent {
    /// Index of the teacher SSet.
    pub teacher: usize,
    /// Index of the learner SSet.
    pub learner: usize,
    /// Fitness of the teacher at selection time.
    pub teacher_fitness: f64,
    /// Fitness of the learner at selection time.
    pub learner_fitness: f64,
    /// The Fermi adoption probability that was used.
    pub probability: f64,
    /// Whether the learner adopted the teacher's strategy.
    pub adopted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream, StreamKind};

    #[test]
    fn paper_defaults() {
        let pc = PairwiseComparison::paper_defaults();
        assert_eq!(pc.rate, 0.1);
        assert!(pc.require_teacher_better);
        assert_eq!(PairwiseComparison::default(), pc);
    }

    #[test]
    fn rate_validation() {
        assert!(PairwiseComparison::new(1.2, SelectionIntensity::WEAK, true).is_err());
        assert!(PairwiseComparison::new(-0.1, SelectionIntensity::WEAK, true).is_err());
        assert!(PairwiseComparison::new(0.5, SelectionIntensity::WEAK, true).is_ok());
    }

    #[test]
    fn select_pair_returns_distinct_indices() {
        let pc = PairwiseComparison::new(1.0, SelectionIntensity::INTERMEDIATE, true).unwrap();
        let mut rng = stream(1, StreamKind::Nature, 0);
        for _ in 0..1000 {
            let (t, l) = pc.select_pair(16, &mut rng).unwrap();
            assert_ne!(t, l);
            assert!(t < 16 && l < 16);
        }
    }

    #[test]
    fn select_pair_needs_two_ssets() {
        let pc = PairwiseComparison::new(1.0, SelectionIntensity::INTERMEDIATE, true).unwrap();
        let mut rng = stream(1, StreamKind::Nature, 1);
        assert!(pc.select_pair(1, &mut rng).is_none());
    }

    #[test]
    fn selection_rate_is_respected() {
        let pc = PairwiseComparison::new(0.1, SelectionIntensity::INTERMEDIATE, true).unwrap();
        let mut rng = stream(2, StreamKind::Nature, 2);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| pc.select_pair(8, &mut rng).is_some())
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn zero_rate_never_selects() {
        let pc = PairwiseComparison::new(0.0, SelectionIntensity::INTERMEDIATE, true).unwrap();
        let mut rng = stream(3, StreamKind::Nature, 3);
        assert!((0..100).all(|_| pc.select_pair(8, &mut rng).is_none()));
    }

    #[test]
    fn pair_selection_is_roughly_uniform() {
        let pc = PairwiseComparison::new(1.0, SelectionIntensity::INTERMEDIATE, true).unwrap();
        let mut rng = stream(4, StreamKind::Nature, 4);
        let n = 8usize;
        let trials = 40_000;
        let mut teacher_counts = vec![0usize; n];
        for _ in 0..trials {
            let (t, _) = pc.select_pair(n, &mut rng).unwrap();
            teacher_counts[t] += 1;
        }
        let expected = trials as f64 / n as f64;
        for count in teacher_counts {
            assert!((count as f64 - expected).abs() < expected * 0.15);
        }
    }

    #[test]
    fn resolve_respects_teacher_better_gate() {
        let pc = PairwiseComparison::new(1.0, SelectionIntensity::STRONG, true).unwrap();
        let mut rng = stream(5, StreamKind::Nature, 5);
        // Teacher worse: with the gate on, never adopted.
        for _ in 0..200 {
            let e = pc.resolve(0, 1, 1.0, 5.0, &mut rng);
            assert!(!e.adopted);
        }
        // Teacher much better with strong selection: essentially always adopted.
        let adoptions = (0..200)
            .filter(|_| pc.resolve(0, 1, 50.0, 1.0, &mut rng).adopted)
            .count();
        assert!(adoptions > 195);
    }

    #[test]
    fn resolve_without_gate_allows_worse_teacher_sometimes() {
        let pc = PairwiseComparison::new(1.0, SelectionIntensity::WEAK, false).unwrap();
        let mut rng = stream(6, StreamKind::Nature, 6);
        let adoptions = (0..5000)
            .filter(|_| pc.resolve(0, 1, 1.0, 2.0, &mut rng).adopted)
            .count();
        // Fermi probability with beta=0.1 and diff=-1 is ~0.475.
        let rate = adoptions as f64 / 5000.0;
        assert!((rate - 0.475).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn resolve_adoption_rate_matches_fermi_probability() {
        let pc = PairwiseComparison::new(1.0, SelectionIntensity::INTERMEDIATE, true).unwrap();
        let mut rng = stream(7, StreamKind::Nature, 7);
        let trials = 20_000;
        let adoptions = (0..trials)
            .filter(|_| pc.resolve(0, 1, 2.0, 1.0, &mut rng).adopted)
            .count();
        let expected = fermi_probability(SelectionIntensity::INTERMEDIATE, 2.0, 1.0);
        let rate = adoptions as f64 / trials as f64;
        assert!(
            (rate - expected).abs() < 0.02,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn event_records_inputs() {
        let pc = PairwiseComparison::paper_defaults();
        let mut rng = stream(8, StreamKind::Nature, 8);
        let e = pc.resolve(3, 5, 7.0, 2.0, &mut rng);
        assert_eq!(e.teacher, 3);
        assert_eq!(e.learner, 5);
        assert_eq!(e.teacher_fitness, 7.0);
        assert_eq!(e.learner_fitness, 2.0);
        assert!((0.0..=1.0).contains(&e.probability));
    }
}
