//! Strategy Sets (SSets): groups of agents that share a strategy.
//!
//! The SSet is the paper's central abstraction (§IV): it is the unit of
//! selection (pairwise comparison and mutation replace an SSet's strategy
//! wholesale), the unit of distribution across processors, and the container
//! whose agents split the per-generation game work among threads.

use crate::agent::{Agent, AgentId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Identifier of a Strategy Set within the population (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SSetId(pub u32);

impl SSetId {
    /// The SSet's index into population-wide vectors.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sset{}", self.0)
    }
}

/// A Strategy Set: a group of `num_agents` agents all playing the same
/// strategy. The strategy itself is stored in the
/// [`crate::population::Population`] (one entry per SSet), because it is the
/// population-wide view that the Nature Agent broadcasts after every change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategySet {
    id: SSetId,
    num_agents: u32,
    first_agent_id: u64,
}

impl StrategySet {
    /// Creates an SSet with `num_agents` agents whose global ids start at
    /// `first_agent_id`.
    pub fn new(id: SSetId, num_agents: u32, first_agent_id: u64) -> Self {
        assert!(num_agents > 0, "an SSet must contain at least one agent");
        StrategySet {
            id,
            num_agents,
            first_agent_id,
        }
    }

    /// The SSet identifier.
    pub fn id(&self) -> SSetId {
        self.id
    }

    /// Number of agents in the SSet.
    pub fn num_agents(&self) -> u32 {
        self.num_agents
    }

    /// Iterates over the agents of this SSet.
    pub fn agents(&self) -> impl Iterator<Item = Agent> + '_ {
        (0..self.num_agents)
            .map(move |slot| Agent::new(AgentId(self.first_agent_id + slot as u64), self.id, slot))
    }

    /// The agent occupying a given slot.
    pub fn agent(&self, slot: u32) -> Agent {
        assert!(slot < self.num_agents, "agent slot out of range");
        Agent::new(AgentId(self.first_agent_id + slot as u64), self.id, slot)
    }

    /// The opponent indices handled by each agent when this SSet must cover
    /// `num_opponents` opponents in a generation. The returned blocks
    /// partition `0..num_opponents`.
    pub fn opponent_blocks(&self, num_opponents: usize) -> Vec<(Agent, Range<usize>)> {
        self.agents()
            .map(|agent| {
                let block = agent.opponent_block(num_opponents, self.num_agents);
                (agent, block)
            })
            .collect()
    }
}

/// Opponent selection policy: which SSets a given SSet plays against in each
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OpponentPolicy {
    /// Play every other SSet (the paper's setting): `s - 1` opponents.
    #[default]
    AllOthers,
    /// Play every SSet including a self-play game: `s` opponents.
    AllIncludingSelf,
}

impl OpponentPolicy {
    /// The opponent SSet indices for SSet `me` in a population of
    /// `num_ssets`.
    pub fn opponents_of(&self, me: usize, num_ssets: usize) -> Vec<usize> {
        match self {
            OpponentPolicy::AllOthers => (0..num_ssets).filter(|&j| j != me).collect(),
            OpponentPolicy::AllIncludingSelf => (0..num_ssets).collect(),
        }
    }

    /// Number of opponents each SSet faces.
    pub fn num_opponents(&self, num_ssets: usize) -> usize {
        match self {
            OpponentPolicy::AllOthers => num_ssets.saturating_sub(1),
            OpponentPolicy::AllIncludingSelf => num_ssets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sset_agents_have_sequential_ids() {
        let sset = StrategySet::new(SSetId(2), 4, 100);
        let agents: Vec<Agent> = sset.agents().collect();
        assert_eq!(agents.len(), 4);
        for (slot, agent) in agents.iter().enumerate() {
            assert_eq!(agent.slot as usize, slot);
            assert_eq!(agent.id.0, 100 + slot as u64);
            assert_eq!(agent.sset, SSetId(2));
        }
        assert_eq!(sset.agent(3).id, AgentId(103));
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn zero_agent_sset_panics() {
        StrategySet::new(SSetId(0), 0, 0);
    }

    #[test]
    fn opponent_blocks_cover_all_opponents() {
        let sset = StrategySet::new(SSetId(0), 3, 0);
        let blocks = sset.opponent_blocks(10);
        let mut covered: Vec<usize> = blocks.iter().flat_map(|(_, b)| b.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn opponent_policy_all_others() {
        let policy = OpponentPolicy::AllOthers;
        assert_eq!(policy.opponents_of(1, 4), vec![0, 2, 3]);
        assert_eq!(policy.num_opponents(4), 3);
        assert_eq!(policy.num_opponents(0), 0);
    }

    #[test]
    fn opponent_policy_including_self() {
        let policy = OpponentPolicy::AllIncludingSelf;
        assert_eq!(policy.opponents_of(1, 3), vec![0, 1, 2]);
        assert_eq!(policy.num_opponents(3), 3);
    }

    #[test]
    fn default_policy_is_all_others() {
        assert_eq!(OpponentPolicy::default(), OpponentPolicy::AllOthers);
    }

    #[test]
    fn display() {
        assert_eq!(SSetId(5).to_string(), "sset5");
        assert_eq!(SSetId(5).index(), 5);
    }
}
