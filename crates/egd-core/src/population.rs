//! The population: all SSets plus the global view of their strategies.
//!
//! The population's *strategy view* (`strategies[sset]`) is exactly the
//! array the paper's Nature Agent broadcasts to every processor after each
//! change (`SSet_strat` in the pseudo-code): every rank must hold a complete,
//! current copy of it in order to play the right opponents. Fitness values
//! are *not* stored here — they are recomputed every generation by the
//! execution engines and passed around as a separate table.

use crate::error::{EgdError, EgdResult};
use crate::rng::{stream, StreamKind};
use crate::sset::{OpponentPolicy, SSetId, StrategySet};
use crate::state::MemoryDepth;
use crate::strategy::{PureStrategy, Strategy, StrategyKind, StrategySpace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A population of SSets with a shared global strategy view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    space: StrategySpace,
    agents_per_sset: u32,
    ssets: Vec<StrategySet>,
    strategies: Vec<StrategyKind>,
    opponent_policy: OpponentPolicy,
    /// Monotonically increasing version of the strategy view; bumped on every
    /// strategy change. Lets distributed executors assert view consistency.
    version: u64,
}

impl Population {
    /// Creates a population whose SSets all start with strategies drawn
    /// uniformly at random from the strategy space (the paper's initial
    /// condition, Fig. 2a).
    pub fn random(
        space: StrategySpace,
        num_ssets: usize,
        agents_per_sset: u32,
        seed: u64,
    ) -> EgdResult<Self> {
        if num_ssets < 2 {
            return Err(EgdError::InvalidConfig {
                reason: format!("a population needs at least 2 SSets, got {num_ssets}"),
            });
        }
        if agents_per_sset == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "agents_per_sset must be at least 1".to_string(),
            });
        }
        let strategies = (0..num_ssets)
            .map(|i| {
                let mut rng = stream(seed, StreamKind::InitialStrategy, i as u64);
                space.random_strategy(&mut rng)
            })
            .collect();
        Ok(Self::from_strategies_internal(
            space,
            agents_per_sset,
            strategies,
        ))
    }

    /// Creates a population with an explicit list of strategies (one per
    /// SSet). All strategies must have the space's memory depth.
    pub fn from_strategies(
        space: StrategySpace,
        agents_per_sset: u32,
        strategies: Vec<StrategyKind>,
    ) -> EgdResult<Self> {
        if strategies.len() < 2 {
            return Err(EgdError::InvalidConfig {
                reason: "a population needs at least 2 SSets".to_string(),
            });
        }
        if agents_per_sset == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "agents_per_sset must be at least 1".to_string(),
            });
        }
        for (i, s) in strategies.iter().enumerate() {
            if s.memory() != space.memory() {
                return Err(EgdError::InvalidConfig {
                    reason: format!(
                        "strategy of SSet {i} has {} but the population is {}",
                        s.memory(),
                        space.memory()
                    ),
                });
            }
        }
        Ok(Self::from_strategies_internal(
            space,
            agents_per_sset,
            strategies,
        ))
    }

    fn from_strategies_internal(
        space: StrategySpace,
        agents_per_sset: u32,
        strategies: Vec<StrategyKind>,
    ) -> Self {
        let ssets = (0..strategies.len())
            .map(|i| {
                StrategySet::new(
                    SSetId(i as u32),
                    agents_per_sset,
                    i as u64 * agents_per_sset as u64,
                )
            })
            .collect();
        Population {
            space,
            agents_per_sset,
            ssets,
            strategies,
            opponent_policy: OpponentPolicy::default(),
            version: 0,
        }
    }

    /// Sets the opponent-selection policy (default: every SSet plays all
    /// other SSets).
    pub fn with_opponent_policy(mut self, policy: OpponentPolicy) -> Self {
        self.opponent_policy = policy;
        self
    }

    /// The strategy space the population samples from.
    pub fn space(&self) -> StrategySpace {
        self.space
    }

    /// The memory depth of every strategy in the population.
    pub fn memory(&self) -> MemoryDepth {
        self.space.memory()
    }

    /// Number of SSets.
    pub fn num_ssets(&self) -> usize {
        self.ssets.len()
    }

    /// Number of agents per SSet.
    pub fn agents_per_sset(&self) -> u32 {
        self.agents_per_sset
    }

    /// Total number of agents in the population. The paper's production runs
    /// reach `O(10^18)` agents, which is why this is a `u128`.
    pub fn total_agents(&self) -> u128 {
        self.num_ssets() as u128 * self.agents_per_sset as u128
    }

    /// The opponent-selection policy.
    pub fn opponent_policy(&self) -> OpponentPolicy {
        self.opponent_policy
    }

    /// The SSets.
    pub fn ssets(&self) -> &[StrategySet] {
        &self.ssets
    }

    /// One SSet by index.
    pub fn sset(&self, index: usize) -> EgdResult<&StrategySet> {
        self.ssets.get(index).ok_or(EgdError::SSetOutOfRange {
            index,
            num_ssets: self.num_ssets(),
        })
    }

    /// The global strategy view (`SSet_strat` in the paper's pseudo-code).
    pub fn strategies(&self) -> &[StrategyKind] {
        &self.strategies
    }

    /// The strategy currently assigned to an SSet.
    pub fn strategy(&self, sset: usize) -> EgdResult<&StrategyKind> {
        self.strategies.get(sset).ok_or(EgdError::SSetOutOfRange {
            index: sset,
            num_ssets: self.num_ssets(),
        })
    }

    /// Replaces the strategy of an SSet (learning or mutation outcome) and
    /// bumps the view version.
    pub fn set_strategy(&mut self, sset: usize, strategy: StrategyKind) -> EgdResult<()> {
        if strategy.memory() != self.memory() {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "replacement strategy has {} but the population is {}",
                    strategy.memory(),
                    self.memory()
                ),
            });
        }
        let slot = self
            .strategies
            .get_mut(sset)
            .ok_or(EgdError::SSetOutOfRange {
                index: sset,
                num_ssets: self.ssets.len(),
            })?;
        *slot = strategy;
        self.version += 1;
        Ok(())
    }

    /// Copies the strategy of `teacher` onto `learner` (the pairwise
    /// comparison learning step).
    pub fn adopt_strategy(&mut self, learner: usize, teacher: usize) -> EgdResult<()> {
        let teacher_strategy = self.strategy(teacher)?.clone();
        self.set_strategy(learner, teacher_strategy)
    }

    /// The strategy-view version (bumped on every change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The opponents SSet `sset` plays in each generation.
    pub fn opponents_of(&self, sset: usize) -> Vec<usize> {
        self.opponent_policy.opponents_of(sset, self.num_ssets())
    }

    /// Census of the population: how many SSets currently hold each distinct
    /// strategy, keyed by the strategy fingerprint, with a representative
    /// strategy for each group. Sorted by descending count.
    pub fn census(&self) -> Vec<CensusEntry> {
        let mut groups: HashMap<u64, CensusEntry> = HashMap::new();
        for strategy in &self.strategies {
            let fp = strategy.fingerprint();
            groups
                .entry(fp)
                .and_modify(|e| e.count += 1)
                .or_insert_with(|| CensusEntry {
                    fingerprint: fp,
                    representative: strategy.clone(),
                    count: 1,
                });
        }
        let mut entries: Vec<CensusEntry> = groups.into_values().collect();
        entries.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        entries
    }

    /// The most common strategy and the fraction of SSets holding it.
    pub fn dominant_strategy(&self) -> (StrategyKind, f64) {
        let census = self.census();
        let top = &census[0];
        (
            top.representative.clone(),
            top.count as f64 / self.num_ssets() as f64,
        )
    }

    /// Fraction of SSets whose strategy equals the given pure strategy.
    pub fn fraction_holding(&self, target: &PureStrategy) -> f64 {
        let count = self
            .strategies
            .iter()
            .filter(|s| s.as_pure().map(|p| p == target).unwrap_or(false))
            .count();
        count as f64 / self.num_ssets() as f64
    }

    /// Mean cooperation probability across every state of every SSet's
    /// strategy — a coarse "how cooperative is this population" measure.
    pub fn mean_cooperation_propensity(&self) -> f64 {
        let total: f64 = self
            .strategies
            .iter()
            .map(|s| match s {
                StrategyKind::Pure(p) => p.cooperation_fraction(),
                StrategyKind::Mixed(m) => m.mean_cooperation(),
            })
            .sum();
        total / self.num_ssets() as f64
    }
}

/// One row of a population census: a strategy and the number of SSets
/// currently holding it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensusEntry {
    /// Fingerprint of the strategy (grouping key).
    pub fingerprint: u64,
    /// A representative strategy with that fingerprint.
    pub representative: StrategyKind,
    /// Number of SSets holding it.
    pub count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::NamedStrategy;

    fn small_space() -> StrategySpace {
        StrategySpace::pure(MemoryDepth::ONE)
    }

    #[test]
    fn random_population_is_reproducible() {
        let a = Population::random(small_space(), 32, 4, 7).unwrap();
        let b = Population::random(small_space(), 32, 4, 7).unwrap();
        assert_eq!(a, b);
        let c = Population::random(small_space(), 32, 4, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn population_validation() {
        assert!(Population::random(small_space(), 1, 4, 0).is_err());
        assert!(Population::random(small_space(), 4, 0, 0).is_err());
        assert!(Population::random(small_space(), 4, 1, 0).is_ok());
    }

    #[test]
    fn total_agents() {
        let p = Population::random(small_space(), 100, 20, 0).unwrap();
        assert_eq!(p.total_agents(), 2000);
        assert_eq!(p.num_ssets(), 100);
        assert_eq!(p.agents_per_sset(), 20);
    }

    #[test]
    fn from_strategies_checks_memory() {
        let strategies = vec![
            StrategyKind::Pure(NamedStrategy::TitForTat.to_pure()),
            StrategyKind::Pure(PureStrategy::all_defect(MemoryDepth::TWO)),
        ];
        assert!(Population::from_strategies(small_space(), 1, strategies).is_err());
    }

    #[test]
    fn set_strategy_bumps_version() {
        let mut p = Population::random(small_space(), 8, 2, 3).unwrap();
        assert_eq!(p.version(), 0);
        let wsls = StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure());
        p.set_strategy(3, wsls.clone()).unwrap();
        assert_eq!(p.version(), 1);
        assert_eq!(p.strategy(3).unwrap(), &wsls);
        assert!(p.set_strategy(99, wsls).is_err());
    }

    #[test]
    fn set_strategy_rejects_wrong_memory() {
        let mut p = Population::random(small_space(), 8, 2, 3).unwrap();
        let deep = StrategyKind::Pure(PureStrategy::all_defect(MemoryDepth::TWO));
        assert!(p.set_strategy(0, deep).is_err());
    }

    #[test]
    fn adopt_strategy_copies_teacher() {
        let strategies = vec![
            StrategyKind::Pure(NamedStrategy::AlwaysCooperate.to_pure()),
            StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure()),
            StrategyKind::Pure(NamedStrategy::TitForTat.to_pure()),
        ];
        let mut p = Population::from_strategies(small_space(), 1, strategies).unwrap();
        p.adopt_strategy(0, 2).unwrap();
        assert_eq!(p.strategy(0).unwrap(), p.strategy(2).unwrap());
        assert_eq!(p.version(), 1);
    }

    #[test]
    fn census_counts_and_sorts() {
        let wsls = StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure());
        let alld = StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure());
        let strategies = vec![wsls.clone(), alld.clone(), wsls.clone(), wsls.clone()];
        let p = Population::from_strategies(small_space(), 2, strategies).unwrap();
        let census = p.census();
        assert_eq!(census.len(), 2);
        assert_eq!(census[0].count, 3);
        assert_eq!(census[0].representative, wsls);
        assert_eq!(census[1].count, 1);

        let (dominant, fraction) = p.dominant_strategy();
        assert_eq!(dominant, wsls);
        assert!((fraction - 0.75).abs() < 1e-12);
        assert!(
            (p.fraction_holding(&NamedStrategy::WinStayLoseShift.to_pure()) - 0.75).abs() < 1e-12
        );
        assert_eq!(p.fraction_holding(&NamedStrategy::TitForTat.to_pure()), 0.0);
    }

    #[test]
    fn cooperation_propensity() {
        let strategies = vec![
            StrategyKind::Pure(NamedStrategy::AlwaysCooperate.to_pure()),
            StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure()),
        ];
        let p = Population::from_strategies(small_space(), 1, strategies).unwrap();
        assert!((p.mean_cooperation_propensity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opponents_respect_policy() {
        let p = Population::random(small_space(), 4, 1, 0).unwrap();
        assert_eq!(p.opponents_of(2), vec![0, 1, 3]);
        let p = p.with_opponent_policy(OpponentPolicy::AllIncludingSelf);
        assert_eq!(p.opponents_of(2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sset_lookup() {
        let p = Population::random(small_space(), 4, 2, 0).unwrap();
        assert!(p.sset(3).is_ok());
        assert!(p.sset(4).is_err());
        assert_eq!(p.sset(1).unwrap().num_agents(), 2);
    }

    #[test]
    fn random_population_mostly_distinct_strategies_memory_six() {
        // With 2^4096 possible strategies, 64 random SSets virtually always
        // receive 64 distinct strategies.
        let space = StrategySpace::pure(MemoryDepth::SIX);
        let p = Population::random(space, 64, 1, 123).unwrap();
        assert_eq!(p.census().len(), 64);
    }
}
