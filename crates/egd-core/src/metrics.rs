//! Summary statistics collected during a simulation.

use serde::{Deserialize, Serialize};

/// Summary statistics of a fitness table (one value per SSet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessStats {
    /// Smallest SSet fitness.
    pub min: f64,
    /// Largest SSet fitness.
    pub max: f64,
    /// Mean SSet fitness.
    pub mean: f64,
    /// Population standard deviation of SSet fitness.
    pub std_dev: f64,
    /// Number of SSets summarised.
    pub count: usize,
}

impl FitnessStats {
    /// Computes statistics over a fitness table. Returns `None` for an empty
    /// table.
    pub fn from_slice(fitness: &[f64]) -> Option<Self> {
        if fitness.is_empty() {
            return None;
        }
        let count = fitness.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &f in fitness {
            min = min.min(f);
            max = max.max(f);
            sum += f;
        }
        let mean = sum / count as f64;
        let variance = fitness.iter().map(|&f| (f - mean).powi(2)).sum::<f64>() / count as f64;
        Some(FitnessStats {
            min,
            max,
            mean,
            std_dev: variance.sqrt(),
            count,
        })
    }

    /// The spread between the best and worst SSet.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// A per-generation record of the population's state, suitable for building
/// time series (e.g. the rise of WSLS in the validation run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// The generation index.
    pub generation: u64,
    /// Fitness statistics of the generation.
    pub fitness: FitnessStats,
    /// Fraction of SSets holding the currently dominant strategy.
    pub dominant_fraction: f64,
    /// Number of distinct strategies present.
    pub distinct_strategies: usize,
    /// Mean cooperation propensity of the population's strategies.
    pub cooperation_propensity: f64,
    /// Whether the population changed (learning or mutation) this generation.
    pub population_changed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_has_no_stats() {
        assert!(FitnessStats::from_slice(&[]).is_none());
    }

    #[test]
    fn single_value_stats() {
        let stats = FitnessStats::from_slice(&[5.0]).unwrap();
        assert_eq!(stats.min, 5.0);
        assert_eq!(stats.max, 5.0);
        assert_eq!(stats.mean, 5.0);
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.count, 1);
        assert_eq!(stats.range(), 0.0);
    }

    #[test]
    fn known_statistics() {
        let stats = FitnessStats::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 4.0);
        assert_eq!(stats.mean, 2.5);
        assert!((stats.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(stats.range(), 3.0);
    }

    #[test]
    fn stats_are_order_invariant() {
        let a = FitnessStats::from_slice(&[3.0, 1.0, 2.0]).unwrap();
        let b = FitnessStats::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }
}
