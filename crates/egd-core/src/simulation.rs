//! Sequential reference simulation.
//!
//! [`Simulation`] runs the full model — game dynamics within a generation,
//! then the Nature Agent's population dynamics — on a single thread. It is
//! the semantic reference: the shared-memory engine (`egd-parallel`) and the
//! simulated-cluster executor (`egd-cluster`) must produce bit-identical
//! populations for the same [`SimulationConfig`], which the integration tests
//! verify.
//!
//! Two performance devices keep even large sequential runs tractable without
//! changing the dynamics:
//!
//! * **Strategy grouping** — SSets holding identical strategies receive
//!   identical per-pair payoffs, so pair payoffs are evaluated once per
//!   distinct strategy pair and weighted by group sizes (this is the same
//!   observation that motivates the paper's SSets: "for deterministic
//!   strategies this would lead to redundant work").
//! * **Pairwise-fitness caching** — for deterministic games the payoff of a
//!   strategy pair never changes, so it is memoised across generations.

use crate::config::SimulationConfig;
use crate::dynamics::{GenerationDecision, NatureAgent};
use crate::error::{EgdError, EgdResult};
use crate::game::{CompiledStrategy, IpdGame, MarkovGame};
use crate::metrics::{FitnessStats, GenerationRecord};
use crate::population::Population;
use crate::rng::{substream, substream_state, StreamKind};
use crate::sset::OpponentPolicy;
use crate::strategy::StrategyKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How per-pair payoffs are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FitnessMode {
    /// Play the rounds of the Iterated Prisoner's Dilemma explicitly
    /// (the paper's method). Deterministic pairs use the exact cycle-closing
    /// engine; noisy or mixed pairs are sampled with per-pair, per-generation
    /// random streams.
    #[default]
    Simulated,
    /// Use the exact expected payoff from the Markov-chain analyser instead
    /// of sampling. Identical to `Simulated` for deterministic pairs, and a
    /// variance-free (much faster to converge) substitute for noisy pairs.
    ExpectedValue,
}

/// Pairwise payoff evaluator shared by the sequential and parallel engines.
#[derive(Debug, Clone)]
pub struct PairEvaluator {
    game: IpdGame,
    markov: MarkovGame,
    mode: FitnessMode,
    seed: u64,
    cache: HashMap<(u64, u64), (f64, f64)>,
    cache_hits: u64,
    cache_misses: u64,
    /// Per-generation interning of compiled strategies for the stochastic
    /// kernel: each distinct strategy is compiled once per generation, not
    /// once per game.
    compiled: HashMap<u64, CompiledStrategy>,
    compiled_generation: u64,
}

impl PairEvaluator {
    /// Maximum number of cached strategy pairs before the cache is reset.
    const MAX_CACHE_ENTRIES: usize = 1 << 20;

    /// Creates an evaluator for a configuration.
    pub fn new(config: &SimulationConfig, mode: FitnessMode) -> EgdResult<Self> {
        Ok(PairEvaluator {
            game: config.game()?,
            markov: config.markov_game()?,
            mode,
            seed: config.seed,
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            compiled: HashMap::new(),
            compiled_generation: 0,
        })
    }

    /// Interns the compiled form of `strategy` for `generation`, clearing the
    /// intern table when the generation rolls over (strategies churn under
    /// mutation, so a per-generation lifetime keeps the table bounded).
    fn intern_compiled(&mut self, generation: u64, strategy: &StrategyKind) {
        if self.compiled_generation != generation {
            self.compiled.clear();
            self.compiled_generation = generation;
        }
        self.compiled
            .entry(strategy.fingerprint())
            .or_insert_with(|| CompiledStrategy::compile(strategy));
    }

    /// The fitness mode in use.
    pub fn mode(&self) -> FitnessMode {
        self.mode
    }

    /// Number of cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Number of cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Payoffs `(to_a, to_b)` of one game between two strategies in a given
    /// generation. Deterministic pairs (and all pairs in expected-value mode)
    /// are cached across generations; stochastic pairs draw from a stream
    /// keyed by `(pair, generation)` so results do not depend on evaluation
    /// order.
    pub fn pair_payoff(
        &mut self,
        a_index: usize,
        a: &StrategyKind,
        b_index: usize,
        b: &StrategyKind,
        generation: u64,
    ) -> EgdResult<(f64, f64)> {
        let cacheable = match self.mode {
            FitnessMode::Simulated => self.game.is_deterministic_for(a, b),
            FitnessMode::ExpectedValue => true,
        };
        let key = (a.fingerprint(), b.fingerprint());
        if cacheable {
            if let Some(&hit) = self.cache.get(&key) {
                self.cache_hits += 1;
                return Ok(hit);
            }
        }
        let result = match self.mode {
            FitnessMode::ExpectedValue => {
                let e = self.markov.finite_horizon(a, b)?;
                (e.payoff_a, e.payoff_b)
            }
            FitnessMode::Simulated => {
                if self.game.is_deterministic_for(a, b) {
                    let (pa, pb) = match (a, b) {
                        (StrategyKind::Pure(pa), StrategyKind::Pure(pb)) => (pa, pb),
                        _ => unreachable!("deterministic pairs are pure"),
                    };
                    let outcome = self.game.play_pure(pa, pb)?;
                    (outcome.fitness_a, outcome.fitness_b)
                } else {
                    self.intern_compiled(generation, a);
                    self.intern_compiled(generation, b);
                    let ca = &self.compiled[&key.0];
                    let cb = &self.compiled[&key.1];
                    let pair_id = (a_index as u64) << 32 | b_index as u64;
                    let mut rng = substream(self.seed, StreamKind::GamePlay, pair_id, generation);
                    let outcome = self.game.play_compiled(ca, cb, &mut rng)?;
                    (outcome.fitness_a, outcome.fitness_b)
                }
            }
        };
        if cacheable {
            if self.cache.len() >= Self::MAX_CACHE_ENTRIES {
                self.cache.clear();
            }
            self.cache_misses += 1;
            self.cache.insert(key, result);
        }
        Ok(result)
    }
}

/// Computes the fitness of every SSet for one generation, exploiting
/// strategy grouping. This free function is shared with the parallel and
/// distributed engines so all execution modes agree exactly.
pub fn compute_generation_fitness(
    population: &Population,
    evaluator: &mut PairEvaluator,
    generation: u64,
) -> EgdResult<Vec<f64>> {
    let n = population.num_ssets();
    let strategies = population.strategies();

    // Group SSets by identical strategy.
    let mut group_of: Vec<usize> = Vec::with_capacity(n);
    let mut group_rep: Vec<usize> = Vec::new(); // representative SSet index
    let mut group_count: Vec<f64> = Vec::new();
    let mut by_fingerprint: HashMap<u64, usize> = HashMap::new();
    for (i, s) in strategies.iter().enumerate() {
        let fp = s.fingerprint();
        let g = *by_fingerprint.entry(fp).or_insert_with(|| {
            group_rep.push(i);
            group_count.push(0.0);
            group_rep.len() - 1
        });
        group_count[g] += 1.0;
        group_of.push(g);
    }
    let num_groups = group_rep.len();

    // Payoff of group g's strategy against group h's strategy (to g).
    let mut pay = vec![0.0f64; num_groups * num_groups];
    for g in 0..num_groups {
        for h in 0..num_groups {
            let (i, j) = (group_rep[g], group_rep[h]);
            let (to_g, _) =
                evaluator.pair_payoff(i, &strategies[i], j, &strategies[j], generation)?;
            pay[g * num_groups + h] = to_g;
        }
    }

    // Fitness of SSet i: sum of its payoff against every opponent SSet.
    let include_self = matches!(
        population.opponent_policy(),
        OpponentPolicy::AllIncludingSelf
    );
    let fitness = (0..n)
        .map(|i| {
            let g = group_of[i];
            let mut total = 0.0;
            for h in 0..num_groups {
                total += group_count[h] * pay[g * num_groups + h];
            }
            if !include_self {
                // Remove the self-pairing counted in the group sums.
                total -= pay[g * num_groups + g];
            }
            total
        })
        .collect();
    Ok(fitness)
}

/// Saved position of one deterministic RNG stream: the `(kind, id, sub_id)`
/// key plus the raw 128-bit `Pcg64Mcg` state it derives to, split into two
/// `u64` halves so the snapshot serialises through the vendored serde codec.
/// `Pcg64Mcg::new(state())` reconstructs the generator exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngStreamPos {
    /// [`StreamKind::tag`] of the stream's kind.
    pub kind_tag: u64,
    /// Primary stream id (the generation index for per-generation streams).
    pub id: u64,
    /// Substream id.
    pub sub_id: u64,
    /// High 64 bits of the generator state.
    pub state_hi: u64,
    /// Low 64 bits of the generator state.
    pub state_lo: u64,
}

impl RngStreamPos {
    fn derive(seed: u64, kind: StreamKind, id: u64, sub_id: u64) -> RngStreamPos {
        let state = substream_state(seed, kind, id, sub_id);
        RngStreamPos {
            kind_tag: kind.tag(),
            id,
            sub_id,
            state_hi: (state >> 64) as u64,
            state_lo: state as u64,
        }
    }

    /// The full 128-bit generator state.
    pub fn state(&self) -> u128 {
        (u128::from(self.state_hi) << 64) | u128::from(self.state_lo)
    }
}

/// A byte-exact, serialisable snapshot of a simulation's cross-generation
/// state: everything a generation boundary carries forward.
///
/// The model's determinism contract makes this small: every random decision
/// of generation `g` draws from fresh substreams keyed by `(seed, kind, g)`,
/// so the only mutable state crossing a boundary is the population itself,
/// the generation index and the change counter. The recorded RNG positions
/// are the streams the *upcoming* generation will open — they are derivable
/// from `(seed, generation)`, and [`Self::verify_streams`] exploits that to
/// prove byte-for-byte round-tripping: a restore re-derives every position
/// and rejects a snapshot whose saved states do not match exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationState {
    /// Global seed of the run.
    pub seed: u64,
    /// Index of the next generation to run.
    pub generation: u64,
    /// Generations so far in which the population changed.
    pub generations_with_change: u64,
    /// Positions of the streams generation `generation` will draw from:
    /// PC selection, the Nature Agent's decision, and mutation.
    pub rng_streams: Vec<RngStreamPos>,
    /// The full population (every SSet's strategy).
    pub population: Population,
}

impl SimulationState {
    /// Captures the state at the boundary before `generation` runs.
    pub fn capture(
        seed: u64,
        generation: u64,
        generations_with_change: u64,
        population: &Population,
    ) -> SimulationState {
        SimulationState {
            seed,
            generation,
            generations_with_change,
            rng_streams: Self::upcoming_streams(seed, generation),
            population: population.clone(),
        }
    }

    /// The three substreams the Nature Agent opens for `generation`, with
    /// their exact generator states (see `dynamics::nature`).
    fn upcoming_streams(seed: u64, generation: u64) -> Vec<RngStreamPos> {
        vec![
            RngStreamPos::derive(seed, StreamKind::Nature, generation, 0),
            RngStreamPos::derive(seed, StreamKind::Nature, generation, 1),
            RngStreamPos::derive(seed, StreamKind::Mutation, generation, 0),
        ]
    }

    /// Checks that every saved RNG position reproduces bit-for-bit from
    /// `(seed, generation)` — the proof that the snapshot's stream state
    /// survived serialisation exactly.
    pub fn verify_streams(&self) -> EgdResult<()> {
        let expected = Self::upcoming_streams(self.seed, self.generation);
        if self.rng_streams != expected {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "checkpoint RNG streams for generation {} do not re-derive from seed {}: \
                     the snapshot is corrupt or from a different run",
                    self.generation, self.seed
                ),
            });
        }
        Ok(())
    }

    /// Serialises the snapshot through the vendored serde codec.
    pub fn to_bytes(&self) -> EgdResult<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| EgdError::InvalidConfig {
            reason: format!("checkpoint serialisation failed: {e}"),
        })
    }

    /// Deserialises a snapshot and verifies its RNG stream positions.
    pub fn from_bytes(bytes: &[u8]) -> EgdResult<SimulationState> {
        let state: SimulationState =
            serde_json::from_slice(bytes).map_err(|e| EgdError::InvalidConfig {
                reason: format!("checkpoint deserialisation failed: {e}"),
            })?;
        state.verify_streams()?;
        Ok(state)
    }
}

/// Report produced by a completed simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of generations that were simulated.
    pub generations_run: u64,
    /// Number of generations in which the population changed.
    pub generations_with_change: u64,
    /// Fraction of SSets holding the dominant strategy at the end.
    pub final_dominant_fraction: f64,
    /// Number of distinct strategies at the end.
    pub final_distinct_strategies: usize,
    /// Fitness statistics of the final generation.
    pub final_fitness: Option<FitnessStats>,
    /// Periodically recorded generation snapshots.
    pub history: Vec<GenerationRecord>,
}

/// The sequential reference simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimulationConfig,
    population: Population,
    nature: NatureAgent,
    evaluator: PairEvaluator,
    generation: u64,
    generations_with_change: u64,
    last_fitness: Vec<f64>,
    record_interval: u64,
}

impl Simulation {
    /// Creates a simulation with a random initial population (Simulated
    /// fitness mode).
    pub fn new(config: SimulationConfig) -> EgdResult<Self> {
        Self::with_fitness_mode(config, FitnessMode::Simulated)
    }

    /// Creates a simulation with an explicit fitness mode.
    pub fn with_fitness_mode(config: SimulationConfig, mode: FitnessMode) -> EgdResult<Self> {
        config.validate()?;
        let population = config.initial_population()?;
        let nature = config.nature_agent()?;
        let evaluator = PairEvaluator::new(&config, mode)?;
        Ok(Simulation {
            config,
            population,
            nature,
            evaluator,
            generation: 0,
            generations_with_change: 0,
            last_fitness: Vec::new(),
            record_interval: 0,
        })
    }

    /// Creates a simulation starting from an explicit population.
    pub fn with_population(
        config: SimulationConfig,
        population: Population,
        mode: FitnessMode,
    ) -> EgdResult<Self> {
        config.validate()?;
        if population.num_ssets() != config.num_ssets {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "population has {} SSets but the configuration expects {}",
                    population.num_ssets(),
                    config.num_ssets
                ),
            });
        }
        if population.memory() != config.memory {
            return Err(EgdError::InvalidConfig {
                reason: "population memory depth does not match the configuration".to_string(),
            });
        }
        let nature = config.nature_agent()?;
        let evaluator = PairEvaluator::new(&config, mode)?;
        Ok(Simulation {
            config,
            population,
            nature,
            evaluator,
            generation: 0,
            generations_with_change: 0,
            last_fitness: Vec::new(),
            record_interval: 0,
        })
    }

    /// Records a [`GenerationRecord`] every `interval` generations while
    /// running (0 disables recording, which is the default).
    pub fn set_record_interval(&mut self, interval: u64) {
        self.record_interval = interval;
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The current population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The current generation index (number of completed generations).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The fitness table of the most recently completed generation.
    pub fn last_fitness(&self) -> &[f64] {
        &self.last_fitness
    }

    /// The pair evaluator (for cache statistics).
    pub fn evaluator(&self) -> &PairEvaluator {
        &self.evaluator
    }

    /// Runs one generation: game dynamics, then population dynamics.
    /// Returns the Nature Agent's decision for the generation.
    pub fn step(&mut self) -> EgdResult<GenerationDecision> {
        let fitness =
            compute_generation_fitness(&self.population, &mut self.evaluator, self.generation)?;
        let decision = self
            .nature
            .evolve(self.generation, &fitness, &mut self.population)?;
        if decision.changes_population() {
            self.generations_with_change += 1;
        }
        self.last_fitness = fitness;
        self.generation += 1;
        Ok(decision)
    }

    /// Generations so far in which the population changed (counted across
    /// the simulation's whole lifetime, not per `run_for` call).
    pub fn generations_with_change(&self) -> u64 {
        self.generations_with_change
    }

    /// Captures the simulation's cross-generation state at the current
    /// boundary. `restore` of the result reproduces the remaining run
    /// bit-for-bit.
    pub fn checkpoint(&self) -> SimulationState {
        SimulationState::capture(
            self.config.seed,
            self.generation,
            self.generations_with_change,
            &self.population,
        )
    }

    /// Rebuilds a simulation from a checkpointed state, verifying that the
    /// snapshot matches `config` (seed, population shape) and that its RNG
    /// stream positions re-derive exactly. The pair-payoff caches start cold
    /// — they are a performance device, not semantic state.
    pub fn restore(
        config: SimulationConfig,
        state: &SimulationState,
        mode: FitnessMode,
    ) -> EgdResult<Simulation> {
        if config.seed != state.seed {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "checkpoint was taken under seed {} but the configuration has seed {}",
                    state.seed, config.seed
                ),
            });
        }
        state.verify_streams()?;
        let mut sim = Simulation::with_population(config, state.population.clone(), mode)?;
        sim.generation = state.generation;
        sim.generations_with_change = state.generations_with_change;
        Ok(sim)
    }

    /// Runs `generations` additional generations, collecting history records
    /// at the configured interval.
    pub fn run_for(&mut self, generations: u64) -> EgdResult<SimulationReport> {
        let mut history = Vec::new();
        let mut changes = 0u64;
        for _ in 0..generations {
            let decision = self.step()?;
            if decision.changes_population() {
                changes += 1;
            }
            if self.record_interval > 0 && self.generation.is_multiple_of(self.record_interval) {
                history.push(self.snapshot(decision.changes_population()));
            }
        }
        let (_, dominant_fraction) = self.population.dominant_strategy();
        Ok(SimulationReport {
            generations_run: generations,
            generations_with_change: changes,
            final_dominant_fraction: dominant_fraction,
            final_distinct_strategies: self.population.census().len(),
            final_fitness: FitnessStats::from_slice(&self.last_fitness),
            history,
        })
    }

    /// Runs the number of generations specified in the configuration.
    pub fn run(&mut self) -> SimulationReport {
        self.run_for(self.config.generations)
            .expect("a validated configuration cannot fail mid-run")
    }

    /// Builds a snapshot record of the current population state.
    fn snapshot(&self, population_changed: bool) -> GenerationRecord {
        let census = self.population.census();
        let dominant_fraction = census[0].count as f64 / self.population.num_ssets() as f64;
        GenerationRecord {
            generation: self.generation,
            fitness: FitnessStats::from_slice(&self.last_fitness).unwrap_or(FitnessStats {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                count: 0,
            }),
            dominant_fraction,
            distinct_strategies: census.len(),
            cooperation_propensity: self.population.mean_cooperation_propensity(),
            population_changed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::MemoryDepth;
    use crate::strategy::{NamedStrategy, StrategySpace};

    fn tiny_config(seed: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(8)
            .agents_per_sset(2)
            .rounds_per_game(20)
            .generations(50)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn simulation_runs_configured_generations() {
        let mut sim = Simulation::new(tiny_config(1)).unwrap();
        let report = sim.run();
        assert_eq!(report.generations_run, 50);
        assert_eq!(sim.generation(), 50);
        assert_eq!(sim.last_fitness().len(), 8);
    }

    #[test]
    fn simulation_is_reproducible() {
        let mut a = Simulation::new(tiny_config(7)).unwrap();
        let mut b = Simulation::new(tiny_config(7)).unwrap();
        let ra = a.run();
        let rb = b.run();
        assert_eq!(ra, rb);
        assert_eq!(a.population(), b.population());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Simulation::new(tiny_config(1)).unwrap();
        let mut b = Simulation::new(tiny_config(2)).unwrap();
        a.run();
        b.run();
        assert_ne!(a.population(), b.population());
    }

    #[test]
    fn expected_value_mode_matches_simulated_for_deterministic_games() {
        // With pure strategies and no noise both modes are exact, so the
        // entire trajectory must coincide.
        let config = tiny_config(5);
        let mut sim_a =
            Simulation::with_fitness_mode(config.clone(), FitnessMode::Simulated).unwrap();
        let mut sim_b = Simulation::with_fitness_mode(config, FitnessMode::ExpectedValue).unwrap();
        let ra = sim_a.run();
        let rb = sim_b.run();
        assert_eq!(sim_a.population(), sim_b.population());
        assert_eq!(ra.generations_with_change, rb.generations_with_change);
    }

    #[test]
    fn grouped_fitness_matches_bruteforce() {
        let config = tiny_config(11);
        let population = config.initial_population().unwrap();
        let mut evaluator = PairEvaluator::new(&config, FitnessMode::Simulated).unwrap();
        let grouped = compute_generation_fitness(&population, &mut evaluator, 0).unwrap();

        // Brute force: explicit double loop over SSet pairs.
        let mut evaluator2 = PairEvaluator::new(&config, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        let n = population.num_ssets();
        let mut brute = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (to_i, _) = evaluator2
                    .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                    .unwrap();
                brute[i] += to_i;
            }
        }
        for i in 0..n {
            assert!(
                (grouped[i] - brute[i]).abs() < 1e-9,
                "sset {i}: grouped {} vs brute {}",
                grouped[i],
                brute[i]
            );
        }
    }

    #[test]
    fn cache_is_used_for_deterministic_games() {
        let mut sim = Simulation::new(tiny_config(3)).unwrap();
        sim.run_for(10).unwrap();
        assert!(sim.evaluator().cache_hits() > 0);
        assert!(sim.evaluator().cache_misses() > 0);
        assert_eq!(sim.evaluator().mode(), FitnessMode::Simulated);
    }

    #[test]
    fn record_interval_collects_history() {
        let mut sim = Simulation::new(tiny_config(4)).unwrap();
        sim.set_record_interval(10);
        let report = sim.run_for(50).unwrap();
        assert_eq!(report.history.len(), 5);
        assert_eq!(report.history[0].generation, 10);
        assert_eq!(report.history[4].generation, 50);
        for record in &report.history {
            assert!(record.dominant_fraction > 0.0 && record.dominant_fraction <= 1.0);
            assert!(record.distinct_strategies >= 1);
        }
    }

    #[test]
    fn resume_from_checkpoint_is_bit_identical_to_straight_run() {
        // Golden: run 50 generations straight through.
        let mut golden = Simulation::new(tiny_config(21)).unwrap();
        golden.run_for(50).unwrap();

        // Checkpoint at generation 20, round-trip the snapshot through the
        // serde codec, restore, and run the remaining 30 generations.
        let mut first_leg = Simulation::new(tiny_config(21)).unwrap();
        first_leg.run_for(20).unwrap();
        let state = first_leg.checkpoint();
        let bytes = state.to_bytes().unwrap();
        let reloaded = SimulationState::from_bytes(&bytes).unwrap();
        assert_eq!(state, reloaded);
        // Byte-for-byte: re-serialising the reloaded snapshot reproduces the
        // original bytes exactly.
        assert_eq!(bytes, reloaded.to_bytes().unwrap());

        let mut resumed =
            Simulation::restore(tiny_config(21), &reloaded, FitnessMode::Simulated).unwrap();
        assert_eq!(resumed.generation(), 20);
        resumed.run_for(30).unwrap();
        assert_eq!(resumed.population(), golden.population());
        assert_eq!(
            resumed.generations_with_change(),
            golden.generations_with_change()
        );
        assert_eq!(resumed.last_fitness(), golden.last_fitness());
    }

    #[test]
    fn checkpoint_rng_streams_rederive_exactly() {
        let mut sim = Simulation::new(tiny_config(22)).unwrap();
        sim.run_for(7).unwrap();
        let state = sim.checkpoint();
        assert_eq!(state.generation, 7);
        assert_eq!(state.rng_streams.len(), 3);
        state.verify_streams().unwrap();
        // Every saved position reconstructs the exact generator the Nature
        // Agent will open for generation 7.
        let expected = [
            substream_state(22, StreamKind::Nature, 7, 0),
            substream_state(22, StreamKind::Nature, 7, 1),
            substream_state(22, StreamKind::Mutation, 7, 0),
        ];
        for (pos, want) in state.rng_streams.iter().zip(expected) {
            assert_eq!(pos.state(), want);
        }

        // A tampered stream position is rejected at deserialisation.
        let mut corrupt = state.clone();
        corrupt.rng_streams[1].state_lo ^= 1;
        assert!(corrupt.verify_streams().is_err());
        let bytes = corrupt.to_bytes().unwrap();
        assert!(SimulationState::from_bytes(&bytes).is_err());
    }

    #[test]
    fn restore_rejects_mismatched_seed() {
        let mut sim = Simulation::new(tiny_config(23)).unwrap();
        sim.run_for(5).unwrap();
        let state = sim.checkpoint();
        let err = Simulation::restore(tiny_config(24), &state, FitnessMode::Simulated).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn with_population_validates_shape() {
        let config = tiny_config(6);
        let wrong_size =
            Population::random(StrategySpace::pure(MemoryDepth::ONE), 4, 2, 0).unwrap();
        assert!(
            Simulation::with_population(config.clone(), wrong_size, FitnessMode::Simulated)
                .is_err()
        );
        let wrong_memory =
            Population::random(StrategySpace::pure(MemoryDepth::TWO), 8, 2, 0).unwrap();
        assert!(
            Simulation::with_population(config.clone(), wrong_memory, FitnessMode::Simulated)
                .is_err()
        );
        let right = config.initial_population().unwrap();
        assert!(Simulation::with_population(config, right, FitnessMode::Simulated).is_ok());
    }

    #[test]
    fn homogeneous_alld_population_without_mutation_is_stable() {
        let config = SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(6)
            .agents_per_sset(1)
            .rounds_per_game(10)
            .generations(30)
            .mutation_rate(0.0)
            .pc_rate(0.5)
            .seed(9)
            .build()
            .unwrap();
        let alld = StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure());
        let population = Population::from_strategies(
            StrategySpace::pure(MemoryDepth::ONE),
            1,
            vec![alld.clone(); 6],
        )
        .unwrap();
        let mut sim =
            Simulation::with_population(config, population, FitnessMode::Simulated).unwrap();
        sim.run_for(30).unwrap();
        // Without mutation, a homogeneous population can never change.
        assert_eq!(sim.population().census().len(), 1);
        assert_eq!(sim.population().strategy(0).unwrap(), &alld);
    }

    #[test]
    fn alld_invades_allc_under_strong_selection() {
        // A population of cooperators with one defector: the defector's
        // strategy should spread (ALLD earns T against ALLC).
        let config = SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(8)
            .agents_per_sset(1)
            .rounds_per_game(20)
            .generations(400)
            .mutation_rate(0.0)
            .pc_rate(1.0)
            .beta(crate::dynamics::SelectionIntensity::STRONG)
            .seed(13)
            .build()
            .unwrap();
        let allc = StrategyKind::Pure(NamedStrategy::AlwaysCooperate.to_pure());
        let alld = StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure());
        let mut strategies = vec![allc; 7];
        strategies.push(alld.clone());
        let population =
            Population::from_strategies(StrategySpace::pure(MemoryDepth::ONE), 1, strategies)
                .unwrap();
        let mut sim =
            Simulation::with_population(config, population, FitnessMode::Simulated).unwrap();
        sim.run_for(400).unwrap();
        let alld_fraction = sim
            .population()
            .fraction_holding(&NamedStrategy::AlwaysDefect.to_pure());
        assert!(
            alld_fraction > 0.5,
            "ALLD should have spread, but holds only {alld_fraction}"
        );
    }
}
