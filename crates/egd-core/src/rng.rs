//! Deterministic, splittable random number streams.
//!
//! The paper's simulation has randomness in many places (initial strategies,
//! the Nature Agent's pairwise-comparison and mutation decisions, execution
//! noise, mixed strategies). To keep large parallel runs *reproducible
//! regardless of thread count or rank placement*, every component draws from
//! its own PCG stream derived from a global seed and a logical stream
//! identifier — never from a shared global generator.

use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// The random number generator used throughout the workspace.
///
/// `Pcg64Mcg` is small (16 bytes of state), fast, and its output is stable
/// across platforms and library versions, unlike `StdRng`.
pub type SimRng = Pcg64Mcg;

/// Logical purposes a random stream can serve. Mixed into the stream key so
/// that, e.g., the Nature Agent and the noise generator of generation 17 never
/// share a stream even if their numeric ids collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Initial strategy assignment for an SSet.
    InitialStrategy,
    /// The Nature Agent's evolutionary decisions (PC selection, mutation).
    Nature,
    /// Execution noise / mixed-strategy sampling during game play.
    GamePlay,
    /// Strategy generation for mutations.
    Mutation,
    /// Anything else (tests, tools).
    Auxiliary,
}

impl StreamKind {
    /// Stable numeric tag mixed into the stream key — public so checkpoint
    /// snapshots can record which logical stream a saved RNG position
    /// belongs to.
    pub fn tag(self) -> u64 {
        match self {
            StreamKind::InitialStrategy => 0x01,
            StreamKind::Nature => 0x02,
            StreamKind::GamePlay => 0x03,
            StreamKind::Mutation => 0x04,
            StreamKind::Auxiliary => 0x05,
        }
    }
}

/// SplitMix64 finaliser: a high-quality 64-bit mixing function used to derive
/// independent stream seeds from `(seed, kind, id)` triples.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a deterministic 128-bit seed for a logical stream.
fn stream_seed(seed: u64, kind: StreamKind, id: u64) -> u128 {
    let a = splitmix64(seed ^ splitmix64(kind.tag()));
    let b = splitmix64(a ^ splitmix64(id));
    let c = splitmix64(b.wrapping_add(0xA076_1D64_78BD_642F));
    ((b as u128) << 64) | (c as u128)
}

/// Creates the RNG for logical stream `(kind, id)` under the global `seed`.
///
/// Streams with different `(kind, id)` keys are statistically independent;
/// the same key always yields the same sequence.
pub fn stream(seed: u64, kind: StreamKind, id: u64) -> SimRng {
    Pcg64Mcg::new(stream_state(seed, kind, id))
}

/// The raw 128-bit generator state of [`stream`], for callers that want to
/// derive many stream states in one pass (batch kernels fill a seed buffer
/// first, then construct the generators) — `Pcg64Mcg::new` on this value is
/// exactly the RNG [`stream`] returns.
pub fn stream_state(seed: u64, kind: StreamKind, id: u64) -> u128 {
    stream_seed(seed, kind, id) | 1
}

/// Creates the RNG for a `(kind, id, sub_id)` triple, used when a component
/// needs one stream per generation or per rank (e.g. game-play noise of SSet
/// `id` in generation `sub_id`).
pub fn substream(seed: u64, kind: StreamKind, id: u64, sub_id: u64) -> SimRng {
    Pcg64Mcg::new(substream_state(seed, kind, id, sub_id))
}

/// The raw 128-bit generator state of [`substream`] (see [`stream_state`]).
pub fn substream_state(seed: u64, kind: StreamKind, id: u64, sub_id: u64) -> u128 {
    let mixed = splitmix64(id ^ splitmix64(sub_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    stream_state(seed, kind, mixed)
}

/// Draws a uniformly random `f64` in `[0, 1)` — a tiny convenience wrapper
/// matching the paper's pseudo-code `rand` calls.
#[inline]
pub fn uniform01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_same_sequence() {
        let mut a = stream(42, StreamKind::Nature, 7);
        let mut b = stream(42, StreamKind::Nature, 7);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_ids_give_different_sequences() {
        let mut a = stream(42, StreamKind::Nature, 7);
        let mut b = stream(42, StreamKind::Nature, 8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_kinds_give_different_sequences() {
        let mut a = stream(42, StreamKind::Nature, 7);
        let mut b = stream(42, StreamKind::GamePlay, 7);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_seeds_give_different_sequences() {
        let mut a = stream(1, StreamKind::Nature, 7);
        let mut b = stream(2, StreamKind::Nature, 7);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn substreams_differ_per_subid() {
        let mut a = substream(42, StreamKind::GamePlay, 3, 0);
        let mut b = substream(42, StreamKind::GamePlay, 3, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn raw_states_match_stream_constructors() {
        let mut a = stream(42, StreamKind::GamePlay, 3);
        let mut b = Pcg64Mcg::new(stream_state(42, StreamKind::GamePlay, 3));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = substream(42, StreamKind::GamePlay, 3, 9);
        let mut d = Pcg64Mcg::new(substream_state(42, StreamKind::GamePlay, 3, 9));
        assert_eq!(c.gen::<u64>(), d.gen::<u64>());
    }

    #[test]
    fn uniform01_in_range() {
        let mut rng = stream(9, StreamKind::Auxiliary, 0);
        for _ in 0..1000 {
            let x = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform01_is_roughly_uniform() {
        let mut rng = stream(11, StreamKind::Auxiliary, 0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| uniform01(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
        assert_ne!(splitmix64(0), splitmix64(1));
    }
}
