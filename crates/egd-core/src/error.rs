//! Error types shared across the workspace.

use std::fmt;

/// Errors produced by the evolutionary game dynamics framework.
#[derive(Debug, Clone, PartialEq)]
pub enum EgdError {
    /// A memory depth outside the supported range was requested.
    InvalidMemoryDepth {
        /// The requested number of memory steps.
        requested: u32,
        /// Largest supported number of memory steps.
        max_supported: u32,
    },
    /// A strategy was constructed with a genome whose length does not match
    /// the state space of its memory depth.
    StrategyLengthMismatch {
        /// Number of states implied by the memory depth.
        expected_states: usize,
        /// Number of per-state entries actually supplied.
        actual: usize,
    },
    /// A probability-like parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A payoff matrix contained non-finite values.
    InvalidPayoff {
        /// The supplied `[R, S, T, P]` values.
        values: [f64; 4],
        /// Human-readable reason.
        reason: String,
    },
    /// A simulation configuration failed validation.
    InvalidConfig {
        /// Description of what is wrong with the configuration.
        reason: String,
    },
    /// An index referred to an SSet that does not exist in the population.
    SSetOutOfRange {
        /// The offending SSet index.
        index: usize,
        /// Number of SSets in the population.
        num_ssets: usize,
    },
    /// An index referred to a game state outside the state space.
    StateOutOfRange {
        /// The offending state index.
        index: usize,
        /// Number of states in the state space.
        num_states: usize,
    },
    /// A cluster / topology description was inconsistent (e.g. zero ranks).
    InvalidTopology {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A communication operation failed in the simulated cluster.
    Communication {
        /// Description of the failure.
        reason: String,
    },
}

impl fmt::Display for EgdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EgdError::InvalidMemoryDepth {
                requested,
                max_supported,
            } => write!(
                f,
                "invalid memory depth {requested}: must be between 1 and {max_supported}"
            ),
            EgdError::StrategyLengthMismatch {
                expected_states,
                actual,
            } => write!(
                f,
                "strategy genome length {actual} does not match state space size {expected_states}"
            ),
            EgdError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` = {value} is not a probability in [0, 1]"
                )
            }
            EgdError::InvalidPayoff { values, reason } => {
                write!(f, "invalid payoff matrix {values:?}: {reason}")
            }
            EgdError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            EgdError::SSetOutOfRange { index, num_ssets } => {
                write!(
                    f,
                    "SSet index {index} out of range (population has {num_ssets} SSets)"
                )
            }
            EgdError::StateOutOfRange { index, num_states } => {
                write!(
                    f,
                    "state index {index} out of range (state space has {num_states} states)"
                )
            }
            EgdError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            EgdError::Communication { reason } => write!(f, "communication failure: {reason}"),
        }
    }
}

impl std::error::Error for EgdError {}

/// Convenience result alias used throughout the workspace.
pub type EgdResult<T> = Result<T, EgdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EgdError::InvalidMemoryDepth {
            requested: 9,
            max_supported: 6,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('6'));

        let e = EgdError::InvalidProbability {
            name: "pc_rate",
            value: 1.5,
        };
        assert!(e.to_string().contains("pc_rate"));
        assert!(e.to_string().contains("1.5"));

        let e = EgdError::SSetOutOfRange {
            index: 12,
            num_ssets: 10,
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&EgdError::InvalidConfig { reason: "x".into() });
    }

    #[test]
    fn errors_are_comparable() {
        let a = EgdError::StateOutOfRange {
            index: 1,
            num_states: 4,
        };
        let b = EgdError::StateOutOfRange {
            index: 1,
            num_states: 4,
        };
        assert_eq!(a, b);
    }
}
