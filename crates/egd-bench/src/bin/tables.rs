//! Reproduces the paper's structural tables: Table I (payoff matrix),
//! Table II (memory-one states), Table III (all memory-one pure strategies),
//! Table IV (strategy-space sizes) and Table V (the WSLS table).
//!
//! ```text
//! cargo run --release -p egd-bench --bin tables [-- --csv]
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::print_table;
use egd_core::prelude::*;

fn table_i() -> CsvTable {
    let payoffs = PayoffMatrix::PAPER;
    let mut table = CsvTable::new(&["agent \\ opponent", "C", "D"]);
    table.push_row(vec![
        "C".into(),
        format!("R = {}", payoffs.reward),
        format!("S = {}", payoffs.sucker),
    ]);
    table.push_row(vec![
        "D".into(),
        format!("T = {}", payoffs.temptation),
        format!("P = {}", payoffs.punishment),
    ]);
    table
}

fn table_ii() -> CsvTable {
    let space = StateSpace::new(MemoryDepth::ONE);
    let mut table = CsvTable::new(&["state", "agent", "opponent"]);
    for (state, rounds) in space.enumerate_table() {
        table.push_row(vec![
            format!("{}", state.index() + 1),
            rounds[0].my_move.to_string(),
            rounds[0].opponent_move.to_string(),
        ]);
    }
    table
}

fn table_iii() -> CsvTable {
    let space = StrategySpace::pure(MemoryDepth::ONE);
    let mut table = CsvTable::new(&["strategy", "state1", "state2", "state3", "state4", "name"]);
    for (i, strategy) in space
        .enumerate_pure()
        .expect("16 strategies")
        .iter()
        .enumerate()
    {
        let moves = strategy.moves();
        let name = NamedStrategy::identify(strategy)
            .map(|n| n.short_name().to_string())
            .unwrap_or_default();
        table.push_row(vec![
            format!("{}", i + 1),
            moves[0].to_string(),
            moves[1].to_string(),
            moves[2].to_string(),
            moves[3].to_string(),
            name,
        ]);
    }
    table
}

fn table_iv() -> CsvTable {
    let mut table = CsvTable::new(&[
        "memory steps",
        "number of pure strategies",
        "decimal digits",
    ]);
    for memory in MemoryDepth::PAPER_RANGE {
        let space = StrategySpace::pure(memory);
        let (steps, count) = space.table_iv_row();
        table.push_row(vec![
            steps.to_string(),
            count,
            space.num_pure_strategies_digits().to_string(),
        ]);
    }
    table
}

fn table_v() -> CsvTable {
    let mut table = CsvTable::new(&["state", "current state", "WSLS move"]);
    let space = StateSpace::new(MemoryDepth::ONE);
    for (state, mv) in NamedStrategy::wsls_table() {
        table.push_row(vec![
            state.index().to_string(),
            space.format_state(state),
            mv.bit().to_string(),
        ]);
    }
    table
}

fn main() {
    println!("Structural tables of the paper (exact reproduction)");
    print_table(
        "Table I: Prisoner's Dilemma payoff matrix [R,S,T,P] = [3,0,4,1]",
        &table_i(),
    );
    print_table(
        "Table II: potential game states for a memory-one strategy",
        &table_ii(),
    );
    print_table("Table III: all 16 memory-one pure strategies", &table_iii());
    print_table(
        "Table IV: number of pure strategies per memory depth (2^(4^n))",
        &table_iv(),
    );
    println!(
        "\nNote: the paper's printed Table IV lists 2^1024 and 2^2048 for memory 4 and 5;\n\
         the formula the paper itself gives (numStates = 4^n, strategies = 2^numStates)\n\
         yields 2^256 and 2^1024, which is what is printed above (see EXPERIMENTS.md)."
    );
    print_table("Table V: Win-Stay-Lose-Shift memory-one table", &table_v());
}
