//! Multi-tenant serving smoke report — the CI `serve-smoke` entry point.
//!
//! Runs a real [`SessionManager`] pool with span tracing on: N tenants
//! (distinct seeds, mixed engines) co-scheduled on a shared worker pool with
//! cadence checkpointing, then
//!
//! * exports the multi-tenant Perfetto timeline (one track per session) to
//!   `--timeline PATH` — the `serve-timeline` CI artifact,
//! * appends the per-session admission/placement markdown table to
//!   `--summary-md PATH` (CI points this at `$GITHUB_STEP_SUMMARY`),
//! * prints the deterministic virtual-time throughput study (1/8/32 tenants
//!   on 4 workers) recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p egd-bench --bin serve_report
//! cargo run --release -p egd-bench --bin serve_report -- --sessions 32 \
//!     --workers 4 --timeline serve-timeline.json --summary-md summary.md
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::serve::canonical_serve_study;
use egd_bench::{arg_or, fmt, print_table, require_known_flags};
use egd_core::config::SimulationConfig;
use egd_core::prelude::MemoryDepth;
use egd_obs::ExportOptions;
use egd_serve::{serve_timeline_json, EngineKind, ServeConfig, SessionConfig, SessionManager};
use std::io::Write;

const USAGE: &str = "\
usage: serve_report [--sessions N] [--workers N] [--csv]
                    [--timeline PATH] [--summary-md PATH]";

fn tenant_config(seed: u64, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(12)
        .agents_per_sset(2)
        .rounds_per_game(20)
        .generations(generations)
        .seed(seed)
        .build()
        .expect("tenant config is valid")
}

fn main() {
    require_known_flags(
        USAGE,
        &["--sessions", "--workers", "--timeline", "--summary-md"],
        &["--csv"],
    );
    let sessions: usize = arg_or("--sessions", 8);
    let workers: usize = arg_or("--workers", 4);
    let timeline_path = arg_or("--timeline", String::new());
    let summary_path = arg_or("--summary-md", String::new());

    println!("serve_report — {sessions} tenants on a {workers}-worker pool");

    egd_obs::enable_tracing();
    let mut manager = SessionManager::new(ServeConfig {
        pool_workers: workers,
        checkpoint_interval: 5,
        ..ServeConfig::default()
    })
    .expect("serve config is valid");
    let mut handles = Vec::new();
    for i in 0..sessions {
        let engine = if i % 3 == 0 {
            EngineKind::Parallel { threads: 2 }
        } else {
            EngineKind::Sequential
        };
        let config = tenant_config(20_130_521 + i as u64, 10 + (i as u64 % 4) * 5);
        let session = SessionConfig::new(format!("tenant-{i}"), config).with_engine(engine);
        handles.push(manager.submit(session).expect("submission is valid"));
    }
    let report = match manager.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: serve pool failed: {e}");
            std::process::exit(1);
        }
    };
    let log = egd_obs::collect();
    egd_obs::disable_tracing();

    let incomplete: Vec<String> = report
        .outcomes
        .iter()
        .filter(|o| o.status.label() != "completed")
        .map(|o| format!("{}:{} is {}", o.id, o.name, o.status.label()))
        .collect();
    if !incomplete.is_empty() {
        for line in &incomplete {
            eprintln!("error: {line}");
        }
        std::process::exit(1);
    }

    let mut table = CsvTable::new(&[
        "session",
        "engine",
        "group",
        "generations",
        "checkpoints",
        "events",
        "predicted_cost_ns",
    ]);
    for (outcome, handle) in report.outcomes.iter().zip(&handles) {
        table.push_row(vec![
            format!("{}:{}", outcome.id, outcome.name),
            outcome.engine.clone(),
            outcome.group.map_or("-".to_string(), |g| g.to_string()),
            outcome.generations_done.to_string(),
            outcome.checkpoints.to_string(),
            handle.drain_events().len().to_string(),
            outcome.predicted_cost_ns.to_string(),
        ]);
    }
    print_table("per-session outcomes", &table);

    let mut study = CsvTable::new(&[
        "sessions",
        "workers",
        "makespan_ms",
        "efficiency",
        "sessions_per_s",
        "mean_latency_ms",
    ]);
    for outcome in canonical_serve_study() {
        study.push_row(vec![
            outcome.sessions.to_string(),
            outcome.workers.to_string(),
            fmt(outcome.makespan_ns as f64 / 1e6, 2),
            fmt(outcome.efficiency, 3),
            fmt(outcome.sessions_per_s, 1),
            fmt(outcome.mean_latency_ns as f64 / 1e6, 2),
        ]);
    }
    print_table(
        "virtual-time throughput study (canonical tenant, cost-model priced)",
        &study,
    );

    if !timeline_path.is_empty() {
        let json = serve_timeline_json(&log, ExportOptions::default());
        if let Err(e) = egd_obs::validate_trace_json(&json) {
            eprintln!("error: serve timeline failed validation: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(&timeline_path, &json) {
            eprintln!("error: cannot write {timeline_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "\nwrote multi-tenant timeline ({} spans, one track per session) to {timeline_path}",
            log.events.len()
        );
    }

    if !summary_path.is_empty() {
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
            .and_then(|mut f| {
                writeln!(f, "## serve-smoke: admission and placement\n")?;
                writeln!(f, "{}", report.admission_table_md())
            });
        if let Err(e) = result {
            eprintln!("error: cannot append to {summary_path}: {e}");
            std::process::exit(1);
        }
        println!("appended admission table to {summary_path}");
    }
}
