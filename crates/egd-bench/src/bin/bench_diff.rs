//! Benchmark baseline diff — the measured-win gate for performance PRs.
//!
//! Two-layer measurement (hardware-honest on any core count, same
//! philosophy as the `egd-cluster::perf` scaling harness):
//!
//! 1. **Measured costs**: every distinct-pair matrix cell of the canonical
//!    skewed mixed-strategy workload — the engine's actual parallel work
//!    items — is timed sequentially (exact on any machine).
//! 2. **Replayed schedule**: the real scheduling algorithm (static split vs
//!    adaptive work stealing) is replayed in virtual time over those costs;
//!    the busiest worker's clock is the per-policy critical path — the
//!    wall-clock a machine with one core per worker would observe.
//!
//! A real-execution pass also runs (sequential wall throughput plus live
//! steal counts at 4 workers) so regressions in raw per-item cost are
//! caught on this machine too. Results diff against the committed
//! `BENCH_baseline.json`, whose skewed-workload entries record the
//! **static** scheduler, so "committed/current" on the adaptive rows is the
//! speedup this PR's scheduler delivers over the pre-scheduler backend
//! (informational — it compares across machines). The `--enforce` gate
//! instead uses the live static/adaptive ratio, which is measured entirely
//! on the current host and is machine-independent.
//!
//! A third layer records **per-game kernel timings** (the numbers the
//! criterion micro-benchmarks print to stdout) into the baseline: the
//! deterministic Fig. 3 ladder and the stochastic rung — paper-literal
//! `play` vs the compiled threshold kernel over the stochastic pairs of
//! both canonical workloads, bit-identical outcomes asserted while timing.
//! `--enforce-kernel R` gates the skewed stochastic-kernel speedup at `R`×
//! and requires no regression (>= 1.0×) on the uniform workload; like
//! `--enforce`, both sides are measured on the current host, so the verdict
//! is machine-independent.
//!
//! ```text
//! cargo run --release -p egd-bench --bin bench_diff                # diff vs committed
//! cargo run --release -p egd-bench --bin bench_diff -- --quick    # CI smoke mode
//! cargo run --release -p egd-bench --bin bench_diff -- --save-baseline
//! cargo run --release -p egd-bench --bin bench_diff -- --enforce 1.3 --enforce-kernel 1.3
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::baseline::Baseline;
use egd_bench::kernels::{measure_pure_ladder, measure_stochastic_kernel, StochasticKernelTiming};
use egd_bench::skew::{
    measure_cell_costs, measure_engine, skewed_mixed_workload, uniform_mixed_workload, Workload,
};
use egd_bench::{arg_or, fmt, has_flag, print_table};
use egd_parallel::SchedPolicy;
use egd_sched::{simulate_schedule, Policy, SimOutcome};
use std::path::PathBuf;

const THREADS: usize = 4;

struct Assessment {
    label: &'static str,
    fixed: SimOutcome,
    adaptive: SimOutcome,
    seq_wall_ns_per_gen: f64,
    live_steals_per_gen: f64,
}

fn assess(workload: &Workload, cost_reps: u32, wall_reps: u32) -> Assessment {
    let costs = measure_cell_costs(workload, cost_reps);
    let fixed = simulate_schedule(THREADS, &costs, Policy::Static);
    let adaptive = simulate_schedule(THREADS, &costs, Policy::Adaptive);
    let sequential = measure_engine(workload, 1, SchedPolicy::Adaptive, wall_reps);
    let live = measure_engine(workload, THREADS, SchedPolicy::Adaptive, wall_reps);
    Assessment {
        label: workload.label,
        fixed,
        adaptive,
        seq_wall_ns_per_gen: sequential.wall_ns_per_gen(),
        live_steals_per_gen: live.steals_per_gen(),
    }
}

fn record(baseline: &mut Baseline, a: &Assessment) {
    baseline.set(
        &format!("{}/static/{THREADS}t/crit_ns_per_gen", a.label),
        a.fixed.critical_path_ns() as f64,
    );
    baseline.set(
        &format!("{}/adaptive/{THREADS}t/crit_ns_per_gen", a.label),
        a.adaptive.critical_path_ns() as f64,
    );
    baseline.set(
        &format!("{}/seq/wall_ns_per_gen", a.label),
        a.seq_wall_ns_per_gen,
    );
}

fn main() {
    let quick = has_flag("--quick");
    let cost_reps: u32 = arg_or("--cost-reps", if quick { 10 } else { 100 });
    let wall_reps: u32 = arg_or("--wall-reps", if quick { 20 } else { 200 });
    let path = PathBuf::from(arg_or("--baseline", "BENCH_baseline.json".to_string()));

    println!("bench_diff — scheduler load-balance benchmark");
    println!("cell costs averaged over {cost_reps} generations; wall rates over {wall_reps};");
    println!("critical path = busiest of {THREADS} workers replaying the real schedule over");
    println!("measured per-cell costs (exact on any host core count)\n");

    let skewed = skewed_mixed_workload(32, 24, 200, 20_130_521);
    let uniform = uniform_mixed_workload(16, 200, 20_130_521);
    let assessments = [
        assess(&skewed, cost_reps, wall_reps),
        assess(&uniform, cost_reps, wall_reps),
    ];

    // Per-game kernel timings (the criterion benches' numbers, recorded).
    let ladder_reps = if quick { 200 } else { 2000 };
    let ladder = measure_pure_ladder(ladder_reps);
    let stoch_reps = cost_reps.max(4);
    let stochastic_kernels = [
        measure_stochastic_kernel(&skewed, stoch_reps),
        measure_stochastic_kernel(&uniform, stoch_reps),
    ];

    let mut current = Baseline::default();
    for a in &assessments {
        record(&mut current, a);
    }
    for m in &ladder {
        current.set(&m.key, m.ns_per_game);
    }
    for k in &stochastic_kernels {
        current.set(
            &format!("{}/kernel/paper_ns_per_game", k.label),
            k.paper_ns_per_game,
        );
        current.set(
            &format!("{}/kernel/compiled_ns_per_game", k.label),
            k.compiled_ns_per_game,
        );
    }

    if has_flag("--save-baseline") {
        if let Err(e) = current.save(&path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!("saved baseline to {}", path.display());
    }

    let committed = Baseline::load(&path).ok();
    let mut table = CsvTable::new(&["measurement", "current", "committed", "committed/current"]);
    for (key, value) in &current.entries {
        let committed_value = committed.as_ref().and_then(|b| b.get(key));
        table.push_row(vec![
            key.clone(),
            fmt(*value, 0),
            committed_value.map_or("-".to_string(), |v| fmt(v, 0)),
            committed_value.map_or("-".to_string(), |v| fmt(v / value, 2)),
        ]);
    }
    print_table(
        "current vs committed baseline (ns, higher ratio = faster now)",
        &table,
    );

    let skewed_assessment = &assessments[0];
    println!("\nskewed mixed-strategy population, {THREADS} workers:");
    println!(
        "  static:   critical path {} us/gen, imbalance {:.2}, 0 steals",
        fmt(skewed_assessment.fixed.critical_path_ns() as f64 / 1e3, 1),
        skewed_assessment.fixed.imbalance(),
    );
    println!(
        "  adaptive: critical path {} us/gen, imbalance {:.2}, {} steals/gen (replay), {:.1} steals/gen (live engine)",
        fmt(skewed_assessment.adaptive.critical_path_ns() as f64 / 1e3, 1),
        skewed_assessment.adaptive.imbalance(),
        skewed_assessment.adaptive.steals,
        skewed_assessment.live_steals_per_gen,
    );
    let live_speedup = skewed_assessment.fixed.critical_path_ns() as f64
        / skewed_assessment.adaptive.critical_path_ns() as f64;
    println!("  live static/adaptive critical-path speedup: {live_speedup:.2}x");

    let committed_speedup = committed
        .as_ref()
        .and_then(|b| b.get(&format!("skewed_mixed/static/{THREADS}t/crit_ns_per_gen")))
        .map(|c| c / skewed_assessment.adaptive.critical_path_ns() as f64);
    match committed_speedup {
        Some(speedup) => println!(
            "  speedup vs the committed (static) baseline: {speedup:.2}x at {THREADS} threads"
        ),
        None => println!(
            "  no committed baseline at {} — run with --save-baseline to create one",
            path.display()
        ),
    }

    // Optional enforcement gate for CI / acceptance runs. Gates on the
    // live static/adaptive ratio: both sides come from the same per-cell
    // costs measured on *this* host, so the verdict tracks scheduler
    // quality, not the speed of the machine that recorded the committed
    // baseline (which stays informational in the table above).
    let enforce: f64 = arg_or("--enforce", 0.0);
    if enforce > 0.0 {
        if live_speedup < enforce {
            eprintln!(
                "FAIL: live static/adaptive speedup {live_speedup:.2}x is below the required {enforce:.2}x"
            );
            std::process::exit(1);
        }
        println!("PASS: live static/adaptive speedup {live_speedup:.2}x >= required {enforce:.2}x");
    }

    println!("\nstochastic kernel (paper-literal play vs compiled thresholds):");
    for k in &stochastic_kernels {
        println!(
            "  {}: {} stochastic pairs, paper {} ns/game, compiled {} ns/game, speedup {:.2}x",
            k.label,
            k.pairs,
            fmt(k.paper_ns_per_game, 0),
            fmt(k.compiled_ns_per_game, 0),
            k.speedup(),
        );
    }

    // Kernel gate: the skewed stochastic rung must beat the paper-literal
    // loop by the required factor, and the compiled kernel must not regress
    // the uniform workload. Both ratios are live same-host measurements.
    let enforce_kernel: f64 = arg_or("--enforce-kernel", 0.0);
    if enforce_kernel > 0.0 {
        let gate = |k: &StochasticKernelTiming, required: f64| {
            if k.speedup() < required {
                eprintln!(
                    "FAIL: {} stochastic-kernel speedup {:.2}x is below the required {required:.2}x",
                    k.label,
                    k.speedup()
                );
                std::process::exit(1);
            }
            println!(
                "PASS: {} stochastic-kernel speedup {:.2}x >= required {required:.2}x",
                k.label,
                k.speedup()
            );
        };
        gate(&stochastic_kernels[0], enforce_kernel);
        gate(&stochastic_kernels[1], 1.0); // no-regression guard
    }
}
