//! Benchmark baseline diff — the measured-win gate for performance PRs.
//!
//! Two-layer measurement (hardware-honest on any core count, same
//! philosophy as the `egd-cluster::perf` scaling harness):
//!
//! 1. **Measured costs**: every distinct-pair matrix cell of the canonical
//!    skewed mixed-strategy workload — the engine's actual parallel work
//!    items — is timed sequentially (exact on any machine).
//! 2. **Replayed schedule**: the real scheduling algorithm (static split vs
//!    adaptive work stealing) is replayed in virtual time over those costs;
//!    the busiest worker's clock is the per-policy critical path — the
//!    wall-clock a machine with one core per worker would observe.
//!
//! A real-execution pass also runs (sequential wall throughput plus live
//! steal counts at 4 workers) so regressions in raw per-item cost are
//! caught on this machine too. Results diff against the committed
//! `BENCH_baseline.json`, whose skewed-workload entries record the
//! **static** scheduler, so "committed/current" on the adaptive rows is the
//! speedup this PR's scheduler delivers over the pre-scheduler backend
//! (informational — it compares across machines). The `--enforce` gate
//! instead uses the live static/adaptive ratio, which is measured entirely
//! on the current host and is machine-independent.
//!
//! A third layer records **per-game kernel timings** (the numbers the
//! criterion micro-benchmarks print to stdout) into the baseline: the
//! deterministic Fig. 3 ladder and the stochastic rung — paper-literal
//! `play` vs the compiled threshold kernel over the stochastic pairs of
//! both canonical workloads, bit-identical outcomes asserted while timing.
//! `--enforce-kernel R` gates the skewed stochastic-kernel speedup at `R`×
//! and requires no regression (>= 1.0×) on the uniform workload; like
//! `--enforce`, both sides are measured on the current host, so the verdict
//! is machine-independent. The same layer sweeps the **lane-parallel
//! batched kernel** across widths 1/2/4/8/16 on the skewed stochastic
//! pairs (`batch_kernel/*` keys, bit-identical outcomes asserted at every
//! width); `--enforce-batch-kernel R` gates the best-width speedup over
//! the single-game compiled kernel at `R`× — again a live same-host ratio —
//! and `--batch-report PATH` writes the sweep as a JSON artifact.
//!
//! A fourth layer is the **10³–10⁵-rank scale study** (`egd_bench::scale`):
//! per-rank game-play costs priced by the `egd-cluster` cost model and
//! replayed through the scheduled executor's algorithm in virtual time,
//! across both strong-scaling points (`scale_1e3` … `scale_1e5`, work per
//! rank growing with the world) and weak-scaling points (`scale_weak_*`,
//! fixed work per rank with ranks and workers growing in proportion).
//! Its inputs are fixed model constants, so the recorded critical paths and
//! load-balance numbers are bit-identical on every machine;
//! `--enforce-scale R` gates the 10⁴-rank static/adaptive critical-path
//! ratio at `R`× and the adaptive imbalance at ≤1.10, and additionally runs
//! a **live 10⁵-rank collective world**, failing if any collective's root
//! message count exceeds the binomial tree's ⌈log₂ ranks⌉ bound (an
//! Ω(ranks) flat collective would trip it immediately). `--scale-only`
//! skips the measured layers (for the CI `scale-smoke` job). Each scale
//! point is additionally replayed with the **cost-guided initial
//! partition** active (per-worker rank segments at the predicted-cost
//! quantiles — the two-level contract the live executors run), recorded as
//! `partition_*` entries; `--enforce-steals` gates the 10⁴-rank guided
//! steal count at ≤ the committed uniform-adaptive baseline with no
//! critical-path regression.
//!
//! Reporting: `--report-json PATH` writes the freshly measured baseline
//! table as JSON (the CI artifact), `--summary-md PATH` appends a markdown
//! summary (CI points this at `$GITHUB_STEP_SUMMARY`).
//!
//! ```text
//! cargo run --release -p egd-bench --bin bench_diff                # diff vs committed
//! cargo run --release -p egd-bench --bin bench_diff -- --quick    # CI smoke mode
//! cargo run --release -p egd-bench --bin bench_diff -- --save-baseline
//! cargo run --release -p egd-bench --bin bench_diff -- --enforce 1.3 \
//!     --enforce-kernel 1.3 --enforce-scale 1.3
//! cargo run --release -p egd-bench --bin bench_diff -- --scale-only --enforce-scale 1.3
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::baseline::Baseline;
use egd_bench::kernels::{
    measure_batch_kernel, measure_pure_ladder, measure_stochastic_kernel, BatchKernelStudy,
    StochasticKernelTiming,
};
use egd_bench::scale::{assess_scale, ScaleAssessment, ScaleWorkload};
use egd_bench::skew::{
    measure_cell_costs, measure_engine, predicted_cell_weights, skewed_mixed_workload,
    uniform_mixed_workload, Workload,
};
use egd_bench::{arg_or, fmt, has_flag, print_table};
use egd_obs::{
    chrome_trace_json, summary_table_md, validate_trace_json, ExportOptions, TraceProcess,
};
use egd_parallel::SchedPolicy;
use egd_sched::{
    simulate_schedule, simulate_schedule_guided, simulate_schedule_guided_recorded,
    simulate_schedule_recorded, Policy, SimOutcome,
};
use std::io::Write;
use std::path::PathBuf;

const THREADS: usize = 4;

/// Adaptive imbalance ceiling enforced together with `--enforce-scale`.
const SCALE_IMBALANCE_CEILING: f64 = 1.10;

struct Assessment {
    label: &'static str,
    fixed: SimOutcome,
    adaptive: SimOutcome,
    /// Replay with the cost-guided partition: measured per-cell costs,
    /// *predicted* per-cell weights — how much of the prediction error the
    /// stealing layer still has to correct on this host.
    guided: SimOutcome,
    seq_wall_ns_per_gen: f64,
    live_steals_per_gen: f64,
}

fn assess(workload: &Workload, cost_reps: u32, wall_reps: u32) -> Assessment {
    let costs = measure_cell_costs(workload, cost_reps);
    let predicted = predicted_cell_weights(workload);
    let fixed = simulate_schedule(THREADS, &costs, Policy::Static);
    let adaptive = simulate_schedule(THREADS, &costs, Policy::Adaptive);
    let guided = simulate_schedule_guided(THREADS, &costs, &predicted, Policy::Adaptive);
    let sequential = measure_engine(workload, 1, SchedPolicy::Adaptive, wall_reps);
    let live = measure_engine(workload, THREADS, SchedPolicy::Adaptive, wall_reps);
    Assessment {
        label: workload.label,
        fixed,
        adaptive,
        guided,
        seq_wall_ns_per_gen: sequential.wall_ns_per_gen(),
        live_steals_per_gen: live.steals_per_gen(),
    }
}

fn record(baseline: &mut Baseline, a: &Assessment) {
    baseline.set(
        &format!("{}/static/{THREADS}t/crit_ns_per_gen", a.label),
        a.fixed.critical_path_ns() as f64,
    );
    baseline.set(
        &format!("{}/adaptive/{THREADS}t/crit_ns_per_gen", a.label),
        a.adaptive.critical_path_ns() as f64,
    );
    baseline.set(
        &format!("{}/seq/wall_ns_per_gen", a.label),
        a.seq_wall_ns_per_gen,
    );
}

fn record_scale(baseline: &mut Baseline, s: &ScaleAssessment) {
    let label = s.workload.label;
    baseline.set(
        &format!("{label}/static/crit_ns_per_gen"),
        s.fixed.critical_path_ns() as f64,
    );
    baseline.set(
        &format!("{label}/adaptive/crit_ns_per_gen"),
        s.adaptive.critical_path_ns() as f64,
    );
    baseline.set(
        &format!("{label}/adaptive/steals_per_gen"),
        s.adaptive.steals as f64,
    );
    baseline.set(
        &format!("{label}/adaptive/imbalance_x1000"),
        (s.adaptive.imbalance() * 1000.0).round(),
    );
    // The cost-guided partition arm, keyed `partition_*` (same scale point,
    // initial segments sized by predicted rank cost). Deterministic like
    // every scale entry, so the gate diffs them exactly.
    let partition = label.replace("scale", "partition");
    baseline.set(
        &format!("{partition}/crit_ns_per_gen"),
        s.guided.critical_path_ns() as f64,
    );
    baseline.set(
        &format!("{partition}/steals_per_gen"),
        s.guided.steals as f64,
    );
    baseline.set(
        &format!("{partition}/imbalance_x1000"),
        (s.guided.imbalance() * 1000.0).round(),
    );
}

/// Looks up a canonical scale point by label, failing the gate with a
/// descriptive message instead of panicking if the canonical set ever
/// shrinks (e.g. a `--quick`-style subset wired into an enforce run).
fn find_scale_point<'a>(assessments: &'a [ScaleAssessment], label: &str) -> &'a ScaleAssessment {
    assessments
        .iter()
        .find(|s| s.workload.label == label)
        .unwrap_or_else(|| {
            eprintln!(
                "FAIL: canonical scale set has no {label} point — the enforce gates need it; \
                 run without a reduced scale set or re-add the workload"
            );
            std::process::exit(1);
        })
}

/// Live tree-collective probe, run under `--enforce-scale`: a real
/// `SimWorld` of `ranks` ranks executes a broadcast + gather + barrier and
/// the observed per-collective root message count must stay within the
/// binomial tree's ⌈log₂ ranks⌉ bound. The retired flat collectives put
/// `ranks - 1` packets in the root's mailbox and would trip this instantly.
fn enforce_tree_fanout(ranks: usize) {
    let world = egd_cluster::mpi::SimWorld::new(ranks)
        .expect("probe world")
        .workers(8);
    let (_, stats) = world
        .run(|mut comm| async move {
            let seed = if comm.rank() == 0 { Some(1u64) } else { None };
            let seed = comm.broadcast(0, seed).await?;
            let _ = comm.gather(0, &(comm.rank() as u64 + seed)).await?;
            comm.barrier().await?;
            Ok(())
        })
        .expect("probe world collectives");
    let snap = stats.snapshot();
    let bound = u64::from(egd_cluster::collective::stages(ranks));
    if snap.max_root_fanout > bound {
        eprintln!(
            "FAIL: live {ranks}-rank collective root fan-out {} exceeds the binomial-tree \
             bound ceil(log2 ranks) = {bound} — a collective is doing Omega(ranks) work at \
             the root",
            snap.max_root_fanout
        );
        std::process::exit(1);
    }
    println!(
        "PASS: live {ranks}-rank collective root fan-out {} <= ceil(log2 ranks) = {bound} \
         (broadcasts {}, gathers {}, barriers {})",
        snap.max_root_fanout, snap.broadcasts, snap.gathers, snap.barriers
    );
}

/// Builds the observability artifact: a **live traced scheduled run** (256
/// ranks on the usual 4 workers, every span recorded) placed next to the
/// 10⁴-rank scale point's **virtual-time replays** on one Chrome/Perfetto
/// timeline — the measured and the modelled schedule, visually diffable —
/// plus the live run's unified [`egd_obs::MetricsSnapshot`] for the markdown
/// summary.
fn observability_timeline(quick: bool) -> (String, egd_obs::MetricsSnapshot) {
    use egd_cluster::{ScheduledConfig, ScheduledExecutor};

    let generations = if quick { 2 } else { 4 };
    let cfg = egd_core::config::SimulationConfig::builder()
        .memory(egd_core::state::MemoryDepth::ONE)
        .num_ssets(256)
        .agents_per_sset(2)
        .rounds_per_game(50)
        .generations(generations)
        .seed(20_130_521)
        .build()
        .expect("observability workload config");
    let executor = ScheduledExecutor::new(cfg, ScheduledConfig::with_ranks(256).threads(THREADS))
        .expect("observability executor");
    let _session = egd_obs::session_guard();
    egd_obs::enable_tracing();
    let run = executor.run();
    egd_obs::disable_tracing();
    let measured = egd_obs::collect();
    let summary = run.expect("observability run");

    let ten_k = ScaleWorkload::canonical()[1];
    assert_eq!(ten_k.label, "scale_1e4");
    let costs = ten_k.rank_costs_ns(&egd_cluster::cost::CostModel::blue_gene_like());
    let (_, adaptive_events) = simulate_schedule_recorded(ten_k.workers, &costs, Policy::Adaptive);
    let (_, guided_events) =
        simulate_schedule_guided_recorded(ten_k.workers, &costs, &costs, Policy::Adaptive);

    let processes = [
        TraceProcess {
            pid: 1,
            name: format!(
                "measured scheduled run ({} ranks, {} workers)",
                summary.ranks, summary.threads
            ),
            track_label: "worker".to_string(),
            events: &measured.events,
        },
        TraceProcess {
            pid: 2,
            name: format!("replay {} adaptive (virtual time)", ten_k.label),
            track_label: "worker".to_string(),
            events: &adaptive_events,
        },
        TraceProcess {
            pid: 3,
            name: format!("replay {} cost-guided (virtual time)", ten_k.label),
            track_label: "worker".to_string(),
            events: &guided_events,
        },
    ];
    let json = chrome_trace_json(&processes, ExportOptions::default());
    (json, summary.metrics)
}

/// Serialises the batch width sweep as a standalone JSON report (the CI
/// batch-kernel artifact). Hand-rolled: the study carries one string field
/// and a flat width table, not worth a serde derive.
fn batch_report_json(study: &BatchKernelStudy) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", study.label));
    json.push_str(&format!("  \"pairs\": {},\n", study.pairs));
    json.push_str(&format!(
        "  \"single_ns_per_game\": {:.1},\n",
        study.single_ns_per_game
    ));
    json.push_str(&format!("  \"best_width\": {},\n", study.best_width));
    json.push_str(&format!(
        "  \"best_ns_per_game\": {:.1},\n",
        study.best_ns_per_game
    ));
    json.push_str(&format!(
        "  \"best_speedup\": {:.3},\n",
        study.best_speedup()
    ));
    json.push_str(&format!("  \"bottleneck\": \"{}\",\n", study.bottleneck));
    json.push_str("  \"widths\": [\n");
    for (i, t) in study.widths.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"width\": {}, \"ns_per_game\": {:.1}, \"speedup\": {:.3}, \"efficiency\": {:.3}}}{}\n",
            t.width,
            t.ns_per_game,
            t.speedup,
            t.efficiency,
            if i + 1 < study.widths.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Appends a markdown rendering of the diff table + scale summary to `path`
/// (the CI step summary).
fn write_summary_md(
    path: &PathBuf,
    current: &Baseline,
    committed: Option<&Baseline>,
    scale: &[ScaleAssessment],
    batch: Option<&BatchKernelStudy>,
) -> std::io::Result<()> {
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(out, "## bench_diff — current vs committed baseline\n")?;
    writeln!(
        out,
        "| measurement | current | committed | committed/current |"
    )?;
    writeln!(out, "|---|---|---|---|")?;
    for (key, value) in &current.entries {
        let committed_value = committed.and_then(|b| b.get(key));
        writeln!(
            out,
            "| `{key}` | {} | {} | {} |",
            fmt(*value, 0),
            committed_value.map_or("-".to_string(), |v| fmt(v, 0)),
            committed_value.map_or("-".to_string(), |v| fmt(v / value, 2)),
        )?;
    }
    writeln!(
        out,
        "\n### Scale study (virtual-time replay, deterministic)\n"
    )?;
    writeln!(
        out,
        "| workload | ranks | workers | static crit (ms/gen) | adaptive crit (ms/gen) | guided crit (ms/gen) | speedup | guided speedup | steals/gen adaptive→guided | modelled comm (µs/gen) |"
    )?;
    writeln!(out, "|---|---|---|---|---|---|---|---|---|---|")?;
    for s in scale {
        writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {:.2}× | {:.2}× | {} → {} | {:.1} |",
            s.workload.label,
            s.workload.ranks,
            s.workload.workers,
            fmt(s.fixed.critical_path_ns() as f64 / 1e6, 1),
            fmt(s.adaptive.critical_path_ns() as f64 / 1e6, 1),
            fmt(s.guided.critical_path_ns() as f64 / 1e6, 1),
            s.speedup(),
            s.guided_speedup(),
            s.adaptive.steals,
            s.guided.steals,
            s.comm_us,
        )?;
    }
    if let Some(study) = batch {
        writeln!(
            out,
            "\n### Batched stochastic kernel — lane-width sweep ({}, {} pairs)\n",
            study.label, study.pairs
        )?;
        writeln!(
            out,
            "Single-game compiled reference: {} ns/game.\n",
            fmt(study.single_ns_per_game, 0)
        )?;
        writeln!(out, "| lane width | ns/game | speedup | efficiency |")?;
        writeln!(out, "|---|---|---|---|")?;
        for t in &study.widths {
            writeln!(
                out,
                "| {} | {} | {:.2}× | {:.2} |",
                t.width,
                fmt(t.ns_per_game, 0),
                t.speedup,
                t.efficiency,
            )?;
        }
        writeln!(
            out,
            "\nBest width {} at {} ns/game ({:.2}×); bottleneck: `{}`.",
            study.best_width,
            fmt(study.best_ns_per_game, 0),
            study.best_speedup(),
            study.bottleneck,
        )?;
    }
    writeln!(out)?;
    Ok(())
}

const USAGE: &str = "\
usage: bench_diff [--quick] [--scale-only] [--csv] [--save-baseline]
                  [--cost-reps N] [--wall-reps N] [--baseline PATH]
                  [--report-json PATH] [--summary-md PATH] [--trace-json PATH]
                  [--batch-report PATH]
                  [--enforce R] [--enforce-kernel R] [--enforce-batch-kernel R]
                  [--enforce-scale R] [--enforce-steals]
                  [--enforce-obs-overhead F] [--enforce-fault-overhead F]";

fn main() {
    // Gating binary: a typo'd --enforce-* flag must fail the run, not
    // silently skip the gate.
    egd_bench::require_known_flags(
        USAGE,
        &[
            "--cost-reps",
            "--wall-reps",
            "--baseline",
            "--report-json",
            "--summary-md",
            "--trace-json",
            "--batch-report",
            "--enforce",
            "--enforce-kernel",
            "--enforce-batch-kernel",
            "--enforce-scale",
            "--enforce-obs-overhead",
            "--enforce-fault-overhead",
        ],
        &[
            "--quick",
            "--scale-only",
            "--csv",
            "--save-baseline",
            "--enforce-steals",
        ],
    );
    let quick = has_flag("--quick");
    let scale_only = has_flag("--scale-only");
    let cost_reps: u32 = arg_or("--cost-reps", if quick { 10 } else { 100 });
    let wall_reps: u32 = arg_or("--wall-reps", if quick { 20 } else { 200 });
    let path = PathBuf::from(arg_or("--baseline", "BENCH_baseline.json".to_string()));

    println!("bench_diff — scheduler load-balance benchmark");
    if scale_only {
        println!("scale-only mode: skipping the measured workload and kernel layers\n");
    } else {
        println!("cell costs averaged over {cost_reps} generations; wall rates over {wall_reps};");
        println!("critical path = busiest of {THREADS} workers replaying the real schedule over");
        println!("measured per-cell costs (exact on any host core count)\n");
    }

    let mut current = Baseline::default();
    let mut assessments: Vec<Assessment> = Vec::new();
    let mut stochastic_kernels: Vec<StochasticKernelTiming> = Vec::new();
    let mut batch_study: Option<BatchKernelStudy> = None;

    if !scale_only {
        let skewed = skewed_mixed_workload(32, 24, 200, 20_130_521);
        let uniform = uniform_mixed_workload(16, 200, 20_130_521);
        assessments.push(assess(&skewed, cost_reps, wall_reps));
        assessments.push(assess(&uniform, cost_reps, wall_reps));

        // Per-game kernel timings (the criterion benches' numbers, recorded).
        let ladder_reps = if quick { 200 } else { 2000 };
        let ladder = measure_pure_ladder(ladder_reps);
        let stoch_reps = cost_reps.max(4);
        stochastic_kernels.push(measure_stochastic_kernel(&skewed, stoch_reps));
        stochastic_kernels.push(measure_stochastic_kernel(&uniform, stoch_reps));
        // The lane-width sweep of the batched stochastic kernel. Keyed
        // `batch_kernel/*` (deliberately not `*/kernel/*`: these rows are a
        // width ablation, not inputs to the median-ratio overhead gates).
        // A higher rep floor than the per-game kernels: the sweep is gated
        // on a ratio of minima, each rep of all six rungs costs ~3 ms, and
        // more interleaved minima is what rides out shared-host noise.
        let study = measure_batch_kernel(&skewed, stoch_reps.max(24));

        for a in &assessments {
            record(&mut current, a);
        }
        for m in &ladder {
            current.set(&m.key, m.ns_per_game);
        }
        for k in &stochastic_kernels {
            current.set(
                &format!("{}/kernel/paper_ns_per_game", k.label),
                k.paper_ns_per_game,
            );
            current.set(
                &format!("{}/kernel/compiled_ns_per_game", k.label),
                k.compiled_ns_per_game,
            );
        }
        current.set(
            &format!("batch_kernel/{}/single/ns_per_game", study.label),
            study.single_ns_per_game,
        );
        for t in &study.widths {
            current.set(
                &format!("batch_kernel/{}/w{}/ns_per_game", study.label, t.width),
                t.ns_per_game,
            );
        }
        current.set(
            &format!("batch_kernel/{}/best_width", study.label),
            study.best_width as f64,
        );
        batch_study = Some(study);
    }

    // The 10³–10⁵-rank scale study (strong + weak points): cost-model
    // priced, virtual-time replayed, deterministic on every machine. Always
    // computed — it is cheap.
    let scale_assessments: Vec<ScaleAssessment> = ScaleWorkload::canonical()
        .iter()
        .map(assess_scale)
        .collect();
    for s in &scale_assessments {
        record_scale(&mut current, s);
    }

    if has_flag("--save-baseline") {
        if scale_only {
            eprintln!("error: --save-baseline needs the measured layers; drop --scale-only");
            std::process::exit(1);
        }
        if let Err(e) = current.save(&path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!("saved baseline to {}", path.display());
    }

    let committed = Baseline::load(&path).ok();
    let mut table = CsvTable::new(&["measurement", "current", "committed", "committed/current"]);
    for (key, value) in &current.entries {
        let committed_value = committed.as_ref().and_then(|b| b.get(key));
        table.push_row(vec![
            key.clone(),
            fmt(*value, 0),
            committed_value.map_or("-".to_string(), |v| fmt(v, 0)),
            committed_value.map_or("-".to_string(), |v| fmt(v / value, 2)),
        ]);
    }
    print_table(
        "current vs committed baseline (ns, higher ratio = faster now)",
        &table,
    );

    println!("\n10^3-10^5-rank scale study (cost model + scheduled-executor replay):");
    for s in &scale_assessments {
        println!(
            "  {}: {} ranks on {} workers — static {} ms/gen, adaptive {} ms/gen \
             ({:.2}x, imbalance {:.3}, {} steals/gen, modelled comm {:.1} us/gen)",
            s.workload.label,
            s.workload.ranks,
            s.workload.workers,
            fmt(s.fixed.critical_path_ns() as f64 / 1e6, 1),
            fmt(s.adaptive.critical_path_ns() as f64 / 1e6, 1),
            s.speedup(),
            s.adaptive.imbalance(),
            s.adaptive.steals,
            s.comm_us,
        );
        println!(
            "    cost-guided partition: {} ms/gen ({:.2}x vs static), \
             steals {} -> {}, imbalance {:.3}",
            fmt(s.guided.critical_path_ns() as f64 / 1e6, 1),
            s.guided_speedup(),
            s.adaptive.steals,
            s.guided.steals,
            s.guided.imbalance(),
        );
    }

    // Reports are written before the gates so a failing CI run still
    // uploads its artifact and step summary.
    let report_json = arg_or("--report-json", String::new());
    if !report_json.is_empty() {
        let report_path = PathBuf::from(&report_json);
        if let Err(e) = current.save(&report_path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!("\nwrote JSON report to {report_json}");
    }
    let batch_report = arg_or("--batch-report", String::new());
    if !batch_report.is_empty() {
        let Some(study) = batch_study.as_ref() else {
            eprintln!("error: --batch-report needs the measured layers; drop --scale-only");
            std::process::exit(1);
        };
        if let Err(e) = std::fs::write(&batch_report, batch_report_json(study)) {
            eprintln!("error: cannot write batch report {batch_report}: {e}");
            std::process::exit(1);
        }
        println!("wrote batch-kernel report to {batch_report}");
    }
    let summary_md = arg_or("--summary-md", String::new());
    if !summary_md.is_empty() {
        let summary_path = PathBuf::from(&summary_md);
        if let Err(e) = write_summary_md(
            &summary_path,
            &current,
            committed.as_ref(),
            &scale_assessments,
            batch_study.as_ref(),
        ) {
            eprintln!("error: cannot write summary {summary_md}: {e}");
            std::process::exit(1);
        }
        println!("appended markdown summary to {summary_md}");
    }

    // Observability export: a live traced run next to the 10^4-rank
    // virtual-time replays on one Perfetto timeline (--trace-json, the CI
    // scale-smoke artifact), with the unified metrics summary table riding
    // along into --summary-md. Validated before writing: an unloadable
    // artifact is a failure, not a warning.
    let trace_json = arg_or("--trace-json", String::new());
    if !trace_json.is_empty() || !summary_md.is_empty() {
        let (timeline, metrics) = observability_timeline(quick);
        if !trace_json.is_empty() {
            if let Err(e) = validate_trace_json(&timeline) {
                eprintln!("error: exported trace JSON is invalid: {e}");
                std::process::exit(1);
            }
            if let Err(e) = std::fs::write(&trace_json, &timeline) {
                eprintln!("error: cannot write trace {trace_json}: {e}");
                std::process::exit(1);
            }
            println!(
                "wrote Perfetto timeline ({} bytes, validated) to {trace_json}",
                timeline.len()
            );
        }
        if !summary_md.is_empty() {
            let table = summary_table_md(&metrics);
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(PathBuf::from(&summary_md))
                .and_then(|mut out| writeln!(out, "{table}"));
            if let Err(e) = appended {
                eprintln!("error: cannot append metrics summary to {summary_md}: {e}");
                std::process::exit(1);
            }
            println!("appended metrics summary to {summary_md}");
        }
    }

    // Observability-overhead gate: every measured layer above runs with
    // tracing *disabled* (the default), so the per-game kernel numbers must
    // sit within `tol` of the committed baseline — if the disabled hot path
    // of the instrumentation cost anything, these same-workload per-game
    // costs are where it would show. Host noise hits individual wall-clock
    // measurements independently, while an instrumentation tax would shift
    // every kernel entry at once — so the gate tests the *median* ratio
    // across all kernel entries, which one or two noisy outliers can't move.
    let enforce_obs: f64 = arg_or("--enforce-obs-overhead", 0.0);
    if enforce_obs > 0.0 {
        if scale_only {
            eprintln!("error: --enforce-obs-overhead needs the kernel layer; drop --scale-only");
            std::process::exit(1);
        }
        match committed.as_ref() {
            None => println!(
                "no committed baseline at {} — obs-overhead gate skipped",
                path.display()
            ),
            Some(committed) => {
                let mut ratios: Vec<f64> = Vec::new();
                for (key, value) in &current.entries {
                    let kernel_key = key.starts_with("kernel_ladder/") || key.contains("/kernel/");
                    if !kernel_key {
                        continue;
                    }
                    let Some(committed_value) = committed.get(key) else {
                        continue;
                    };
                    if committed_value > 0.0 {
                        ratios.push(value / committed_value);
                    }
                }
                if ratios.is_empty() {
                    eprintln!(
                        "FAIL: the committed baseline has no kernel entries to gate against; \
                         re-record with --save-baseline"
                    );
                    std::process::exit(1);
                }
                ratios.sort_by(|a, b| a.total_cmp(b));
                let median = ratios[ratios.len() / 2];
                if median > 1.0 + enforce_obs {
                    eprintln!(
                        "FAIL: median kernel cost is {:.2}x the committed baseline across \
                         {} entries (tolerance {:.2}x) — the tracing-disabled path is \
                         taxing the kernels",
                        median,
                        ratios.len(),
                        1.0 + enforce_obs,
                    );
                    std::process::exit(1);
                }
                println!(
                    "PASS: median kernel cost {:.2}x the committed baseline across {} \
                     entries (tolerance {:.2}x) with tracing disabled",
                    median,
                    ratios.len(),
                    1.0 + enforce_obs,
                );
            }
        }
    }

    // Fault-injection-overhead gate: every measured and replayed layer above
    // runs with injection *disarmed* (the default), so the single relaxed
    // load guarding `deliver`/the rank generation loop is the only trace the
    // fault subsystem may leave. Two checks: the per-game kernel entries
    // must sit within `tol` of the committed baseline (median ratio across
    // all kernel entries — host noise moves individual measurements, a
    // fast-path tax moves them all), and the deterministic scale_*/
    // partition_* virtual-time entries must match the committed baseline
    // *exactly* (the modelled schedule must be untouched by the hook).
    let enforce_fault: f64 = arg_or("--enforce-fault-overhead", 0.0);
    if enforce_fault > 0.0 {
        if scale_only {
            eprintln!("error: --enforce-fault-overhead needs the kernel layer; drop --scale-only");
            std::process::exit(1);
        }
        if egd_fault::injection_armed() {
            eprintln!(
                "FAIL: fault injection is armed during the overhead gate — the measured \
                 layers above did not run on the disabled fast path"
            );
            std::process::exit(1);
        }
        match committed.as_ref() {
            None => println!(
                "no committed baseline at {} — fault-overhead gate skipped",
                path.display()
            ),
            Some(committed) => {
                let mut ratios: Vec<f64> = Vec::new();
                let mut scale_drift: Vec<String> = Vec::new();
                for (key, value) in &current.entries {
                    if key.starts_with("kernel_ladder/") || key.contains("/kernel/") {
                        if let Some(committed_value) = committed.get(key) {
                            if committed_value > 0.0 {
                                ratios.push(value / committed_value);
                            }
                        }
                    } else if key.starts_with("scale_") || key.starts_with("partition_") {
                        match committed.get(key) {
                            Some(committed_value) if committed_value == *value => {}
                            Some(committed_value) => {
                                scale_drift.push(format!("{key}: {committed_value} -> {value}"))
                            }
                            None => scale_drift.push(format!("{key}: missing from baseline")),
                        }
                    }
                }
                if !scale_drift.is_empty() {
                    eprintln!(
                        "FAIL: {} deterministic scale entries drifted with fault injection \
                         disarmed — the disabled path is altering the modelled schedule:",
                        scale_drift.len()
                    );
                    for line in scale_drift.iter().take(8) {
                        eprintln!("  {line}");
                    }
                    std::process::exit(1);
                }
                if ratios.is_empty() {
                    eprintln!(
                        "FAIL: the committed baseline has no kernel entries to gate against; \
                         re-record with --save-baseline"
                    );
                    std::process::exit(1);
                }
                ratios.sort_by(|a, b| a.total_cmp(b));
                let median = ratios[ratios.len() / 2];
                if median > 1.0 + enforce_fault {
                    eprintln!(
                        "FAIL: median kernel cost is {:.2}x the committed baseline across \
                         {} entries (tolerance {:.2}x) — the disabled injection path is \
                         taxing the kernels",
                        median,
                        ratios.len(),
                        1.0 + enforce_fault,
                    );
                    std::process::exit(1);
                }
                println!(
                    "PASS: fault-injection fast path free — median kernel cost {:.2}x the \
                     committed baseline across {} entries (tolerance {:.2}x), all scale \
                     entries bit-exact, injection disarmed",
                    median,
                    ratios.len(),
                    1.0 + enforce_fault,
                );
            }
        }
    }

    // Scale gate: the 10^4-rank static/adaptive critical-path ratio plus an
    // adaptive-imbalance ceiling, with a no-regression guard on the
    // 10^3-rank point. All inputs are fixed cost-model constants, so the
    // verdict is deterministic and machine-independent — which also means
    // the recorded scale_* keys must match the committed baseline *exactly*
    // (no tolerance band): any drift is a real scheduler/cost-model change
    // and needs a deliberate --save-baseline re-record.
    let enforce_scale: f64 = arg_or("--enforce-scale", 0.0);
    let enforce_steals = has_flag("--enforce-steals");
    if enforce_scale > 0.0 {
        if let Some(committed) = committed.as_ref() {
            for (key, value) in &current.entries {
                if !key.starts_with("scale_") && !key.starts_with("partition_") {
                    continue;
                }
                match committed.get(key) {
                    Some(committed_value) if committed_value == *value => {}
                    Some(committed_value) => {
                        eprintln!(
                            "FAIL: deterministic scale entry {key} drifted from the committed \
                             baseline ({committed_value} -> {value}); if intentional, re-record \
                             with --save-baseline"
                        );
                        std::process::exit(1);
                    }
                    None => {
                        eprintln!(
                            "FAIL: scale entry {key} is missing from the committed baseline; \
                             re-record with --save-baseline"
                        );
                        std::process::exit(1);
                    }
                }
            }
            println!("PASS: all scale_*/partition_* entries match the committed baseline exactly");
        }
        let ten_k = find_scale_point(&scale_assessments, "scale_1e4");
        let one_k = find_scale_point(&scale_assessments, "scale_1e3");
        if ten_k.speedup() < enforce_scale {
            eprintln!(
                "FAIL: 10^4-rank static/adaptive speedup {:.2}x is below the required {enforce_scale:.2}x",
                ten_k.speedup()
            );
            std::process::exit(1);
        }
        if ten_k.adaptive.imbalance() > SCALE_IMBALANCE_CEILING {
            eprintln!(
                "FAIL: 10^4-rank adaptive imbalance {:.3} exceeds the {SCALE_IMBALANCE_CEILING:.2} ceiling",
                ten_k.adaptive.imbalance()
            );
            std::process::exit(1);
        }
        if one_k.speedup() < 1.0 {
            eprintln!(
                "FAIL: 10^3-rank adaptive schedule regressed below the static split ({:.2}x)",
                one_k.speedup()
            );
            std::process::exit(1);
        }
        println!(
            "PASS: 10^4-rank speedup {:.2}x >= required {enforce_scale:.2}x \
             (imbalance {:.3} <= {SCALE_IMBALANCE_CEILING:.2}; 10^3-rank {:.2}x)",
            ten_k.speedup(),
            ten_k.adaptive.imbalance(),
            one_k.speedup()
        );
        // The collectives behind those worlds must actually be trees: run a
        // live 10^5-rank world and bound the observed root fan-out.
        enforce_tree_fanout(100_000);
    }

    // Cost-guided-partition gate: at the 10^4-rank skewed workload the
    // guided schedule must steal no more than the committed uniform-adaptive
    // baseline (the partition absorbs the skew up front) and must not
    // regress the critical path of this run's uniform-adaptive arm. All
    // inputs are fixed cost-model constants: deterministic on every machine.
    if enforce_steals {
        let ten_k = find_scale_point(&scale_assessments, "scale_1e4");
        let baseline_steals = committed
            .as_ref()
            .and_then(|b| b.get("scale_1e4/adaptive/steals_per_gen"))
            .unwrap_or(f64::INFINITY);
        if (ten_k.guided.steals as f64) > baseline_steals {
            eprintln!(
                "FAIL: 10^4-rank cost-guided steal count {} exceeds the committed \
                 uniform-adaptive baseline {baseline_steals}",
                ten_k.guided.steals
            );
            std::process::exit(1);
        }
        if ten_k.guided.critical_path_ns() > ten_k.adaptive.critical_path_ns() {
            eprintln!(
                "FAIL: 10^4-rank cost-guided critical path {} ns regressed past the \
                 uniform-adaptive arm {} ns",
                ten_k.guided.critical_path_ns(),
                ten_k.adaptive.critical_path_ns()
            );
            std::process::exit(1);
        }
        println!(
            "PASS: 10^4-rank cost-guided partition steals {} <= baseline {} \
             and critical path {} <= adaptive {}",
            ten_k.guided.steals,
            baseline_steals,
            ten_k.guided.critical_path_ns(),
            ten_k.adaptive.critical_path_ns()
        );
    }

    if scale_only {
        return;
    }

    let skewed_assessment = &assessments[0];
    println!("\nskewed mixed-strategy population, {THREADS} workers:");
    println!(
        "  static:   critical path {} us/gen, imbalance {:.2}, 0 steals",
        fmt(skewed_assessment.fixed.critical_path_ns() as f64 / 1e3, 1),
        skewed_assessment.fixed.imbalance(),
    );
    println!(
        "  adaptive: critical path {} us/gen, imbalance {:.2}, {} steals/gen (replay), {:.1} steals/gen (live engine)",
        fmt(skewed_assessment.adaptive.critical_path_ns() as f64 / 1e3, 1),
        skewed_assessment.adaptive.imbalance(),
        skewed_assessment.adaptive.steals,
        skewed_assessment.live_steals_per_gen,
    );
    println!(
        "  guided:   critical path {} us/gen, imbalance {:.2}, {} steals/gen \
         (cost-guided partition over *predicted* weights, measured costs)",
        fmt(skewed_assessment.guided.critical_path_ns() as f64 / 1e3, 1),
        skewed_assessment.guided.imbalance(),
        skewed_assessment.guided.steals,
    );
    let live_speedup = skewed_assessment.fixed.critical_path_ns() as f64
        / skewed_assessment.adaptive.critical_path_ns() as f64;
    println!("  live static/adaptive critical-path speedup: {live_speedup:.2}x");

    let committed_speedup = committed
        .as_ref()
        .and_then(|b| b.get(&format!("skewed_mixed/static/{THREADS}t/crit_ns_per_gen")))
        .map(|c| c / skewed_assessment.adaptive.critical_path_ns() as f64);
    match committed_speedup {
        Some(speedup) => println!(
            "  speedup vs the committed (static) baseline: {speedup:.2}x at {THREADS} threads"
        ),
        None => println!(
            "  no committed baseline at {} — run with --save-baseline to create one",
            path.display()
        ),
    }

    // Optional enforcement gate for CI / acceptance runs. Gates on the
    // live static/adaptive ratio: both sides come from the same per-cell
    // costs measured on *this* host, so the verdict tracks scheduler
    // quality, not the speed of the machine that recorded the committed
    // baseline (which stays informational in the table above).
    let enforce: f64 = arg_or("--enforce", 0.0);
    if enforce > 0.0 {
        if live_speedup < enforce {
            eprintln!(
                "FAIL: live static/adaptive speedup {live_speedup:.2}x is below the required {enforce:.2}x"
            );
            std::process::exit(1);
        }
        println!("PASS: live static/adaptive speedup {live_speedup:.2}x >= required {enforce:.2}x");
    }

    println!("\nstochastic kernel (paper-literal play vs compiled thresholds):");
    for k in &stochastic_kernels {
        println!(
            "  {}: {} stochastic pairs, paper {} ns/game, compiled {} ns/game, speedup {:.2}x",
            k.label,
            k.pairs,
            fmt(k.paper_ns_per_game, 0),
            fmt(k.compiled_ns_per_game, 0),
            k.speedup(),
        );
    }

    // Kernel gate: the skewed stochastic rung must beat the paper-literal
    // loop by the required factor, and the compiled kernel must not regress
    // the uniform workload. Both ratios are live same-host measurements.
    let enforce_kernel: f64 = arg_or("--enforce-kernel", 0.0);
    if enforce_kernel > 0.0 {
        let gate = |k: &StochasticKernelTiming, required: f64| {
            if k.speedup() < required {
                eprintln!(
                    "FAIL: {} stochastic-kernel speedup {:.2}x is below the required {required:.2}x",
                    k.label,
                    k.speedup()
                );
                std::process::exit(1);
            }
            println!(
                "PASS: {} stochastic-kernel speedup {:.2}x >= required {required:.2}x",
                k.label,
                k.speedup()
            );
        };
        gate(&stochastic_kernels[0], enforce_kernel);
        gate(&stochastic_kernels[1], 1.0); // no-regression guard
    }

    let study = batch_study
        .as_ref()
        .expect("batch study runs with the measured layers");
    println!(
        "\nbatched stochastic kernel width sweep ({}, {} pairs; single-game compiled {} ns/game):",
        study.label,
        study.pairs,
        fmt(study.single_ns_per_game, 0),
    );
    for t in &study.widths {
        println!(
            "  w{:<2} {} ns/game, speedup {:.2}x, lane efficiency {:.2}",
            t.width,
            fmt(t.ns_per_game, 0),
            t.speedup,
            t.efficiency,
        );
    }
    println!(
        "  best: w{} at {} ns/game ({:.2}x); bottleneck: {}",
        study.best_width,
        fmt(study.best_ns_per_game, 0),
        study.best_speedup(),
        study.bottleneck,
    );

    // Batch-kernel gate: the best batched width must beat the single-game
    // compiled kernel by the required factor on the skewed stochastic
    // workload. Both sides are measured on this host over the same pairs
    // and substreams (with outcomes asserted bit-identical during the
    // sweep), so the verdict is machine-independent; the committed
    // batch_kernel/* rows in the table above stay informational.
    let enforce_batch: f64 = arg_or("--enforce-batch-kernel", 0.0);
    if enforce_batch > 0.0 {
        let speedup = study.best_speedup();
        if speedup < enforce_batch {
            eprintln!(
                "FAIL: {} batched-kernel best-width speedup {speedup:.2}x (w{}) is below \
                 the required {enforce_batch:.2}x",
                study.label, study.best_width
            );
            std::process::exit(1);
        }
        println!(
            "PASS: {} batched-kernel best-width speedup {speedup:.2}x (w{}) >= required \
             {enforce_batch:.2}x",
            study.label, study.best_width
        );
    }
}
