//! Fig. 5 — runtime breakdown (computation vs communication) as the memory
//! depth grows from one to six.
//!
//! Paper setup: 2,048 SSets, 20 generations, PC rate 0.1, 2,048 Blue Gene/P
//! processors. Result: computation grows strongly with memory depth (state
//! handling gets more expensive) while communication stays roughly constant,
//! and the parallel efficiency changes by less than 2% as long as processors
//! stay saturated.
//!
//! This harness prints (a) the modelled split at paper scale from the cost
//! model calibrated against the real kernels, and (b) the real measured
//! per-game cost on this host for each memory depth.
//!
//! ```text
//! cargo run --release -p egd-bench --bin fig5_memory_steps [-- --calibrate]
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::{fmt, has_flag, print_table};
use egd_cluster::cost::{CostModel, OptimizationLevel};
use egd_cluster::machine::MachineSpec;
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_core::prelude::*;
use egd_parallel::kernel::{GameKernel, KernelVariant};
use std::time::Instant;

fn main() {
    let cost = if has_flag("--calibrate") {
        println!("(calibrating the cost model against the real kernels on this host)");
        egd_parallel::kernel::calibrated_cost_model()
    } else {
        CostModel::blue_gene_like()
    };
    let harness = ScalingHarness::new(
        MachineSpec::blue_gene_p(),
        cost,
        OptimizationLevel::INSTRUCTION,
    );
    let workload = Workload::paper(2_048, MemoryDepth::ONE, 20);

    println!(
        "Fig. 5 — per-memory-step runtime split, 2,048 SSets / 2,048 processors / 20 generations"
    );

    let mut table = CsvTable::new(&[
        "memory steps",
        "computation (s)",
        "communication (s)",
        "comm share (%)",
    ]);
    let rows = harness
        .memory_step_breakdown(2_048, &workload, &MemoryDepth::PAPER_RANGE)
        .expect("cost model");
    for (memory, estimate) in &rows {
        table.push_row(vec![
            memory.steps().to_string(),
            fmt(estimate.compute_seconds, 2),
            fmt(estimate.comm_seconds, 4),
            fmt(100.0 * estimate.comm_seconds / estimate.total_seconds, 2),
        ]);
    }
    print_table("Modelled split at paper scale (Blue Gene/P)", &table);

    // Real measurement on the host: per-game kernel time by memory depth.
    let mut measured = CsvTable::new(&["memory steps", "states", "optimized kernel per game (us)"]);
    for memory in MemoryDepth::PAPER_RANGE {
        let kernel = GameKernel::paper_defaults(KernelVariant::Optimized, memory);
        let mut rng = egd_core::rng::stream(
            9,
            egd_core::rng::StreamKind::Auxiliary,
            memory.steps() as u64,
        );
        let a = PureStrategy::random(memory, &mut rng);
        let b = PureStrategy::random(memory, &mut rng);
        let reps = 200;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = kernel.play(&a, &b).expect("play");
        }
        measured.push_row(vec![
            memory.steps().to_string(),
            memory.num_states().to_string(),
            fmt(start.elapsed().as_secs_f64() * 1e6 / reps as f64, 3),
        ]);
    }
    print_table("Measured per-game kernel cost on this host", &measured);

    println!("\nShape check vs the paper: total runtime rises steeply with the memory depth");
    println!("while the communication bars stay essentially flat, so the comm share shrinks.");
}
