//! Fig. 4 — strong scaling as a function of population size.
//!
//! The paper sweeps 1,024–32,768 SSets over up to 2,048 processors and shows
//! that parallel efficiency collapses once each processor handles fewer than
//! about one SSet, while large populations stay near 100%. This harness
//! prints the same family of efficiency curves from the Blue Gene/P cost
//! model (memory-one, the small-scale study's setting), then backs the
//! load-imbalance story with **measured** numbers: per-worker busy time,
//! steal counts and the critical-path speedup of the work-stealing
//! scheduler over the static split on a skewed mixed-strategy population
//! (replayed in virtual time over measured per-cell costs — see
//! `egd_sched::simulate`).
//!
//! ```text
//! cargo run --release -p egd-bench --bin fig4_strong_scaling
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::skew::{
    measure_cell_costs, measure_engine, predicted_cell_weights, skewed_mixed_workload,
};
use egd_bench::{fmt, print_table};
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_cluster::trace::LoadBalance;
use egd_core::prelude::*;
use egd_parallel::SchedPolicy;
use egd_sched::{simulate_schedule, simulate_schedule_guided, Policy};

fn main() {
    let processor_counts = [128usize, 256, 512, 1024, 2048];
    let populations = [1_024usize, 2_048, 4_096, 8_192, 16_384, 32_768];
    let harness = ScalingHarness::blue_gene_p();

    println!("Fig. 4 — strong scaling vs population size (parallel efficiency, %)");
    println!("Paper: efficiency drops once SSets/processor < 1; larger populations scale better.");

    let mut table = CsvTable::new(&[
        "SSets \\ processors",
        "128",
        "256",
        "512",
        "1024",
        "2048",
        "R at 2048",
    ]);
    for &num_ssets in &populations {
        let workload = Workload::paper(num_ssets, MemoryDepth::ONE, 100);
        let points = match harness.strong_scaling(&workload, &processor_counts) {
            Ok(points) => points,
            Err(error) => {
                eprintln!("fig4: scaling model failed for {num_ssets} SSets: {error}");
                std::process::exit(1);
            }
        };
        let Some(last) = points.last() else {
            eprintln!("fig4: scaling model returned no points for {num_ssets} SSets");
            std::process::exit(1);
        };
        let mut row = vec![format!("{num_ssets}")];
        for point in &points {
            row.push(fmt(point.efficiency_percent, 1));
        }
        row.push(fmt(last.ssets_per_processor, 2));
        table.push_row(row);
    }
    print_table(
        "Parallel efficiency (%) by population size and processor count",
        &table,
    );

    println!("\nReading the table: every population keeps > 99% efficiency while R = SSets per");
    println!("processor stays >= 1; the 1,024- and 2,048-SSet populations drop sharply at 2,048");
    println!("processors where R falls to 0.5 and 1.0 games can no longer cover the communication");
    println!("and load-imbalance overheads — the same qualitative picture as the paper's Fig. 4.");

    measured_load_balance();
}

/// Measured load balance on this machine: the static split vs the adaptive
/// work-stealing scheduler over a skewed mixed-strategy population.
fn measured_load_balance() {
    const WORKERS: usize = 4;
    let workload = skewed_mixed_workload(32, 24, 200, 20_130_521);
    let costs = measure_cell_costs(&workload, 20);
    let predicted = predicted_cell_weights(&workload);
    let fixed = simulate_schedule(WORKERS, &costs, Policy::Static);
    let adaptive = simulate_schedule(WORKERS, &costs, Policy::Adaptive);
    let guided = simulate_schedule_guided(WORKERS, &costs, &predicted, Policy::Adaptive);
    let live = measure_engine(&workload, WORKERS, SchedPolicy::Adaptive, 20);
    let live_balance = LoadBalance::from(&live.sched);

    let mut table = CsvTable::new(&[
        "policy",
        "critical path (us/gen)",
        "imbalance",
        "steals/gen",
    ]);
    table.push_row(vec![
        "static".into(),
        fmt(fixed.critical_path_ns() as f64 / 1e3, 1),
        fmt(fixed.imbalance(), 2),
        "0".into(),
    ]);
    table.push_row(vec![
        "adaptive".into(),
        fmt(adaptive.critical_path_ns() as f64 / 1e3, 1),
        fmt(adaptive.imbalance(), 2),
        fmt(adaptive.steals as f64, 0),
    ]);
    table.push_row(vec![
        "guided".into(),
        fmt(guided.critical_path_ns() as f64 / 1e3, 1),
        fmt(guided.imbalance(), 2),
        fmt(guided.steals as f64, 0),
    ]);
    print_table(
        "Measured load balance: skewed mixed-strategy population, 4 workers\n\
         (virtual-time replay of the real schedule over measured per-cell costs;\n\
         'guided' seeds the initial partition from the cost model's *predicted* weights)",
        &table,
    );
    println!(
        "\nCritical-path speedup from work stealing: {:.2}x; the live engine performed",
        fixed.critical_path_ns() as f64 / adaptive.critical_path_ns() as f64
    );
    println!(
        "{:.1} steals/generation across {} workers (byte-identical results either way).",
        live.steals_per_gen(),
        live_balance.workers
    );
}
