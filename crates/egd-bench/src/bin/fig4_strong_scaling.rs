//! Fig. 4 — strong scaling as a function of population size.
//!
//! The paper sweeps 1,024–32,768 SSets over up to 2,048 processors and shows
//! that parallel efficiency collapses once each processor handles fewer than
//! about one SSet, while large populations stay near 100%. This harness
//! prints the same family of efficiency curves from the Blue Gene/P cost
//! model (memory-one, the small-scale study's setting).
//!
//! ```text
//! cargo run --release -p egd-bench --bin fig4_strong_scaling
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::{fmt, print_table};
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_core::prelude::*;

fn main() {
    let processor_counts = [128usize, 256, 512, 1024, 2048];
    let populations = [1_024usize, 2_048, 4_096, 8_192, 16_384, 32_768];
    let harness = ScalingHarness::blue_gene_p();

    println!("Fig. 4 — strong scaling vs population size (parallel efficiency, %)");
    println!("Paper: efficiency drops once SSets/processor < 1; larger populations scale better.");

    let mut table = CsvTable::new(&[
        "SSets \\ processors",
        "128",
        "256",
        "512",
        "1024",
        "2048",
        "R at 2048",
    ]);
    for &num_ssets in &populations {
        let workload = Workload::paper(num_ssets, MemoryDepth::ONE, 100);
        let points = harness
            .strong_scaling(&workload, &processor_counts)
            .expect("scaling model");
        let mut row = vec![format!("{num_ssets}")];
        for point in &points {
            row.push(fmt(point.efficiency_percent, 1));
        }
        row.push(fmt(points.last().unwrap().ssets_per_processor, 2));
        table.push_row(row);
    }
    print_table(
        "Parallel efficiency (%) by population size and processor count",
        &table,
    );

    println!("\nReading the table: every population keeps > 99% efficiency while R = SSets per");
    println!("processor stays >= 1; the 1,024- and 2,048-SSet populations drop sharply at 2,048");
    println!("processors where R falls to 0.5 and 1.0 games can no longer cover the communication");
    println!("and load-imbalance overheads — the same qualitative picture as the paper's Fig. 4.");
}
