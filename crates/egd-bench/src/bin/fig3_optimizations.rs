//! Fig. 3 — the optimisation ladder: Original → Comm → Compiler → Instruction.
//!
//! The paper measures the wall-clock and communication time of 4,096 SSets,
//! memory-one, 100 generations on 256 processors as four successive
//! optimisations are applied. This harness reproduces the ladder twice:
//!
//! 1. **Modelled at paper scale** with the Blue Gene/P cost model (256 ranks,
//!    4,096 SSets, 100 generations), printing total and communication time
//!    per rung, and
//! 2. **Measured on the host** with the real kernels (per-game wall-clock of
//!    the naive / indexed / optimised kernels) and the real message-passing
//!    executor (point-to-point traffic of the blocking vs non-blocking
//!    protocol), confirming the same ordering with real code.
//!
//! ```text
//! cargo run --release -p egd-bench --bin fig3_optimizations
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::{fmt, print_table};
use egd_cluster::cost::{CommMode, CostModel, OptimizationLevel};
use egd_cluster::executor::{DistributedConfig, DistributedExecutor};
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_core::prelude::*;
use egd_parallel::kernel::{GameKernel, KernelVariant};
use std::time::Instant;

fn modelled_ladder() -> CsvTable {
    let workload = Workload::paper(4_096, MemoryDepth::ONE, 100);
    let mut table = CsvTable::new(&[
        "optimization",
        "wallclock (s)",
        "communication (s)",
        "computation (s)",
    ]);
    for level in OptimizationLevel::LADDER {
        let harness = ScalingHarness::new(
            egd_cluster::machine::MachineSpec::blue_gene_p(),
            CostModel::blue_gene_like(),
            level,
        );
        let estimate = harness.estimate(256, &workload).expect("estimate");
        table.push_row(vec![
            level.label().to_string(),
            fmt(estimate.total_seconds, 2),
            fmt(estimate.comm_seconds, 3),
            fmt(estimate.compute_seconds, 2),
        ]);
    }
    table
}

fn measured_kernels() -> CsvTable {
    let mut table = CsvTable::new(&["kernel", "per-game time on host (us)", "speedup vs naive"]);
    let memory = MemoryDepth::ONE;
    let mut rng = egd_core::rng::stream(3, egd_core::rng::StreamKind::Auxiliary, 0);
    let a = PureStrategy::random(memory, &mut rng);
    let b = PureStrategy::random(memory, &mut rng);
    let mut naive_time = 0.0;
    for variant in KernelVariant::LADDER {
        let kernel = GameKernel::paper_defaults(variant, memory);
        let reps = 500;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = kernel.play(&a, &b).expect("play");
        }
        let micros = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        if variant == KernelVariant::Naive {
            naive_time = micros;
        }
        table.push_row(vec![
            variant.label().to_string(),
            fmt(micros, 3),
            fmt(naive_time / micros, 2),
        ]);
    }
    table
}

fn measured_comm_protocols() -> CsvTable {
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(32)
        .agents_per_sset(2)
        .rounds_per_game(50)
        .generations(200)
        .seed(5)
        .build()
        .expect("config");
    let mut table = CsvTable::new(&[
        "protocol",
        "p2p messages",
        "p2p bytes",
        "gathers",
        "gather bytes",
        "wallclock on host (s)",
    ]);
    for (label, mode) in [
        ("Blocking (Original)", CommMode::Blocking),
        ("Non-blocking (Comm)", CommMode::NonBlocking),
    ] {
        let start = Instant::now();
        let summary = DistributedExecutor::new(
            config.clone(),
            DistributedConfig::with_workers(8).comm_mode(mode),
        )
        .expect("executor")
        .run()
        .expect("run");
        let elapsed = start.elapsed().as_secs_f64();
        let traffic = summary.traffic;
        table.push_row(vec![
            label.to_string(),
            traffic.p2p_messages.to_string(),
            traffic.p2p_bytes.to_string(),
            traffic.gathers.to_string(),
            traffic.gather_bytes.to_string(),
            fmt(elapsed, 2),
        ]);
    }
    table
}

fn main() {
    println!("Fig. 3 — impact of the optimisation ladder");
    println!("Paper setup: 4,096 SSets, memory-one, 100 generations, 256 processors.");
    println!("Paper result: runtime drops monotonically from ~4,600s to ~2,000s; the");
    println!("communication share stays small and roughly flat.");

    print_table(
        "Fig. 3 (modelled at paper scale, Blue Gene/P cost model)",
        &modelled_ladder(),
    );
    print_table(
        "Fig. 3 supporting measurement: real kernel cost on this host",
        &measured_kernels(),
    );
    print_table(
        "Fig. 3 supporting measurement: real communication protocols (32 SSets, 8 worker ranks, 200 generations)",
        &measured_comm_protocols(),
    );
}
