//! Table VI — parallel efficiency as a function of the SSets-per-processor
//! ratio R.
//!
//! Paper values: efficiency collapses to ~50–55% at R <= 1 and is >= 99.7%
//! for R >= 2. This harness evaluates the same ratios on the Blue Gene/P
//! cost model at 2,048 processors (memory-six, the large-run configuration).
//!
//! ```text
//! cargo run --release -p egd-bench --bin table6_ratio
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::{fmt, print_table};
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_core::prelude::*;

fn main() {
    let ratios = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    let paper = [50.0, 55.0, 99.7, 99.7, 99.9, 99.9, 99.9, 100.0, 100.0];
    let harness = ScalingHarness::blue_gene_p();
    let workload = Workload::paper(0, MemoryDepth::SIX, 20);
    let rows = harness
        .ratio_efficiency(2_048, &ratios, &workload)
        .expect("ratio model");

    println!("Table VI — parallel efficiency vs SSets-per-processor ratio R (2,048 processors)");
    let mut table = CsvTable::new(&["R", "efficiency (%) [this repo]", "efficiency (%) [paper]"]);
    for ((ratio, efficiency), paper_value) in rows.iter().zip(paper) {
        table.push_row(vec![
            fmt(*ratio, 1),
            fmt(*efficiency, 1),
            fmt(paper_value, 1),
        ]);
    }
    print_table("SSets per processor vs parallel efficiency", &table);

    println!("\nShape check: efficiency collapses once R < 1 (a processor cannot own less than a");
    println!("whole SSet without splitting) and saturates near 100% for R >= 2, matching the");
    println!("paper's cliff. The paper additionally reports a depressed value at exactly R = 1");
    println!("(55%), which our load-balance model places at ~100%; see EXPERIMENTS.md.");
}
