//! Fig. 6 — large-scale weak and strong scaling of memory-six production
//! runs on Blue Gene/P and Blue Gene/Q.
//!
//! * Fig. 6a (weak scaling): 4,096 SSets per processor, up to 294,912 BG/P
//!   processors and 16,384 BG/Q tasks; the paper reports ~99% efficiency
//!   (runtime varies by at most a second).
//! * Fig. 6b (strong scaling): 32,768 SSets, up to 262,144 processors; the
//!   paper reports 99% linear scaling through 16,384 processors and an 82%
//!   dip at 262,144 where SSets get split across processors.
//!
//! ```text
//! cargo run --release -p egd-bench --bin fig6_scaling [-- --weak | --strong]
//! ```

use egd_analysis::export::CsvTable;
use egd_bench::{fmt, has_flag, print_table};
use egd_cluster::perf::{ScalingHarness, ScalingPoint, Workload};
use egd_core::prelude::*;

fn render(points: &[ScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(&[
        "processors",
        "time (s)",
        "speedup",
        "efficiency (%)",
        "SSets/processor",
    ]);
    for point in points {
        table.push_row(vec![
            point.processors.to_string(),
            fmt(point.time_seconds, 2),
            fmt(point.speedup, 1),
            fmt(point.efficiency_percent, 2),
            fmt(point.ssets_per_processor, 3),
        ]);
    }
    table
}

fn weak_scaling() {
    let workload = Workload::paper(0, MemoryDepth::SIX, 20);
    let bgp = ScalingHarness::blue_gene_p()
        .weak_scaling(
            &workload,
            4_096,
            &[1_024, 4_096, 16_384, 65_536, 131_072, 294_912],
        )
        .expect("weak scaling BG/P");
    print_table(
        "Fig. 6a — weak scaling, memory-six, Blue Gene/P (4,096 SSets/processor)",
        &render(&bgp),
    );

    let bgq = ScalingHarness::blue_gene_q()
        .weak_scaling(&workload, 4_096, &[1_024, 2_048, 4_096, 8_192, 16_384])
        .expect("weak scaling BG/Q");
    print_table(
        "Fig. 6a — weak scaling, memory-six, Blue Gene/Q (hybrid 32 ranks x 2 threads)",
        &render(&bgq),
    );
    println!("\nPaper: >= 99% weak-scaling efficiency on both machines; the model stays > 99%.");
}

fn strong_scaling() {
    let workload = Workload::paper(32_768, MemoryDepth::SIX, 20);
    let bgp = ScalingHarness::blue_gene_p()
        .with_sset_splitting(1.2)
        .strong_scaling(&workload, &[1_024, 2_048, 8_192, 16_384, 262_144])
        .expect("strong scaling BG/P");
    print_table(
        "Fig. 6b — strong scaling, memory-six, 32,768 SSets, Blue Gene/P (sub-SSet splitting enabled)",
        &render(&bgp),
    );

    let bgq = ScalingHarness::blue_gene_q()
        .with_sset_splitting(1.2)
        .strong_scaling(&workload, &[1_024, 2_048, 8_192, 16_384])
        .expect("strong scaling BG/Q");
    print_table(
        "Fig. 6b — strong scaling, memory-six, Blue Gene/Q (through 16,384 tasks)",
        &render(&bgq),
    );
    println!("\nPaper: ~99% efficiency through 16,384 processors, 82% at 262,144 (R < 1);");
    println!("the model reproduces the near-ideal region and the dip once SSets are split.");
}

fn main() {
    println!("Fig. 6 — large-scale scaling of memory-six production runs");
    let weak_only = has_flag("--weak");
    let strong_only = has_flag("--strong");
    if weak_only || !strong_only {
        weak_scaling();
    }
    if strong_only || !weak_only {
        strong_scaling();
    }
}
