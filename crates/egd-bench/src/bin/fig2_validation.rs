//! Fig. 2 — validation run: WSLS takes over a memory-one population.
//!
//! The paper's full run uses 5,000 SSets (20,000 agents) for 10^7 generations
//! and reports that 85% of SSets adopt [0101] = WSLS. This harness runs the
//! same dynamics at a configurable scale (default 4% population with the
//! preset's proportionally scaled generations) and prints the initial
//! census, the final census, the k-means cluster summary (the Fig. 2a/2b
//! bitmaps in textual form) and the WSLS fraction.
//!
//! ```text
//! cargo run --release -p egd-bench --bin fig2_validation -- [--scale 0.04] [--generations N] [--seed S]
//! ```

use egd_analysis::census::NamedCensus;
use egd_analysis::export::CsvTable;
use egd_analysis::kmeans::KMeans;
use egd_bench::{arg_or, fmt, print_table};
use egd_core::prelude::*;
use egd_parallel::simulation::ParallelSimulation;
use egd_parallel::thread_pool::ThreadConfig;

fn census_table(census: &NamedCensus) -> CsvTable {
    let mut table = CsvTable::new(&["strategy", "share of SSets (%)"]);
    for (name, fraction) in &census.fractions {
        table.push_row(vec![name.clone(), fmt(fraction * 100.0, 1)]);
    }
    table.push_row(vec!["other".into(), fmt(census.other * 100.0, 1)]);
    table
}

fn main() {
    let scale: f64 = arg_or("--scale", 0.04);
    let seed: u64 = arg_or("--seed", 2013);

    let mut config = SimulationConfig::validation_run(scale, seed).expect("valid scale");
    // The preset scales generations with the population (the paper's ratio
    // of 2,000 generations per SSet); cutting the horizon short tends to
    // catch the run mid-transition, before the WSLS sweep.
    let generations: u64 = arg_or("--generations", config.generations);
    config.generations = generations;
    println!(
        "Fig. 2 validation run: {} SSets / {} agents, memory-one, {} generations, noise {}",
        config.num_ssets,
        config.total_agents(),
        config.generations,
        config.noise
    );
    println!("(paper: 5,000 SSets / 20,000 agents, 10^7 generations, 85% WSLS at the end)");

    let mut sim = ParallelSimulation::with_fitness_mode(
        config,
        ThreadConfig::AUTO,
        FitnessMode::ExpectedValue,
    )
    .expect("simulation");
    sim.set_record_interval((generations / 10).max(1));

    print_table(
        "Fig. 2a: initial population census (random strategies)",
        &census_table(&NamedCensus::of(sim.population())),
    );

    let report = sim.run();

    print_table(
        "Fig. 2b: final population census",
        &census_table(&NamedCensus::of(sim.population())),
    );

    // Dominance trajectory (the textual version of watching the bitmap converge).
    let mut trajectory = CsvTable::new(&[
        "generation",
        "dominant strategy share (%)",
        "distinct strategies",
    ]);
    for record in &report.history {
        trajectory.push_row(vec![
            record.generation.to_string(),
            fmt(record.dominant_fraction * 100.0, 1),
            record.distinct_strategies.to_string(),
        ]);
    }
    print_table("Dominance trajectory", &trajectory);

    let clusters = KMeans::new(8, 100, seed)
        .expect("kmeans")
        .cluster_population(sim.population())
        .expect("clustering");
    let census = NamedCensus::of(sim.population());
    let wsls = census.fraction_of(NamedStrategy::WinStayLoseShift);
    println!(
        "\nK-means (k=8, Lloyd): dominant cluster = {:.1}% of SSets after {} iterations",
        clusters.dominant_fraction() * 100.0,
        clusters.iterations
    );
    println!(
        "WSLS share: {:.1}%   (paper at full scale: 85%)",
        wsls * 100.0
    );
    println!(
        "Reproduction check: WSLS is {} the dominant strategy.",
        if census
            .fractions
            .first()
            .map(|(name, _)| name == "WSLS")
            .unwrap_or(false)
        {
            "indeed"
        } else {
            "NOT"
        }
    );
}
