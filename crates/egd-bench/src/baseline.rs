//! Committed performance baselines.
//!
//! A [`Baseline`] is a flat `name → value` table persisted as plain JSON
//! (`BENCH_baseline.json` at the repository root) so performance PRs can
//! claim *measured* wins: the `bench_diff` binary re-measures the current
//! tree and prints the ratio against the committed numbers.
//!
//! The vendored `serde_json` stand-in uses a binary codec, so the (tiny)
//! JSON emitter/parser for the human-readable committed file lives here.

use std::collections::BTreeMap;
use std::path::Path;

/// A named table of benchmark measurements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Measurement name → value (units encoded in the name).
    pub entries: BTreeMap<String, f64>,
}

impl Baseline {
    /// Inserts or replaces a measurement.
    pub fn set(&mut self, name: &str, value: f64) {
        self.entries.insert(name.to_string(), value);
    }

    /// Looks up a measurement.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.get(name).copied()
    }

    /// Serialises to pretty JSON (one entry per line, sorted by name).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!("  \"{name}\": {value:.1}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Parses the flat JSON produced by [`Baseline::to_json`].
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let body = text.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or_else(|| "baseline JSON must be a flat object".to_string())?;
        for piece in body.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let (name, value) = piece
                .split_once(':')
                .ok_or_else(|| format!("malformed baseline entry: {piece:?}"))?;
            let name = name
                .trim()
                .strip_prefix('"')
                .and_then(|n| n.strip_suffix('"'))
                .ok_or_else(|| format!("baseline key must be quoted: {name:?}"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("baseline value for {name:?} is not a number: {e}"))?;
            entries.insert(name.to_string(), value);
        }
        Ok(Baseline { entries })
    }

    /// Loads a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::from_json(&text)
    }

    /// Writes the baseline to a file.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut baseline = Baseline::default();
        baseline.set("skewed/static/crit_ns", 123456.7);
        baseline.set("skewed/adaptive/crit_ns", 65432.1);
        let text = baseline.to_json();
        let parsed = Baseline::from_json(&text).unwrap();
        assert_eq!(parsed.get("skewed/static/crit_ns"), Some(123456.7));
        assert_eq!(parsed.get("skewed/adaptive/crit_ns"), Some(65432.1));
        assert_eq!(parsed.entries.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Baseline::from_json("not json").is_err());
        assert!(Baseline::from_json("{\"a\" 1}").is_err());
        assert!(Baseline::from_json("{\"a\": x}").is_err());
        assert!(Baseline::from_json("{unquoted: 1}").is_err());
    }

    #[test]
    fn empty_object_parses() {
        let parsed = Baseline::from_json("{}\n").unwrap();
        assert!(parsed.entries.is_empty());
        assert_eq!(Baseline::default().to_json(), "{\n}\n");
    }
}
