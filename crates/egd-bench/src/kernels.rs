//! Per-game kernel timings for the baseline file.
//!
//! The criterion micro-benchmarks (`benches/game_kernel.rs`,
//! `benches/mixed_kernel.rs`) print to stdout only; this module measures the
//! same kernels with plain `Instant` spans so `bench_diff` can record the
//! numbers into `BENCH_baseline.json` and gate on them — closing the
//! ROADMAP item "wiring criterion numbers into the baseline file".
//!
//! Two families are measured:
//!
//! * [`measure_pure_ladder`] — the deterministic Fig. 3 rungs
//!   (naive → indexed → optimized) on the same memory-one random pair the
//!   criterion ladder bench uses.
//! * [`measure_stochastic_kernel`] — the new stochastic rung: the
//!   paper-literal `IpdGame::play` versus the compiled threshold kernel
//!   `IpdGame::play_compiled` over the stochastic pairs of a canonical
//!   workload's distinct-pair matrix, with identical per-pair substreams.
//!   Both sides are asserted to produce bit-identical payoffs while being
//!   timed, so the speedup can never come from divergent behaviour.

use crate::skew::Workload;
use egd_core::game::{BatchedDraws, CompiledPairTable, CompiledStrategy};
use egd_core::rng::{stream, substream, substream_state, StreamKind};
use egd_core::strategy::PureStrategy;
use egd_parallel::{GameKernel, KernelVariant, StrategyGrouping};
use std::time::Instant;

/// One measured kernel: baseline key plus nanoseconds per game.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Baseline entry name (e.g. `kernel_ladder/optimized/ns_per_game`).
    pub key: String,
    /// Average nanoseconds per game.
    pub ns_per_game: f64,
}

/// Times the deterministic Fig. 3 ladder (naive / indexed / optimized) at
/// memory one over `reps` games of the same random pair the criterion
/// `kernel_ladder_memory_one` group benches.
pub fn measure_pure_ladder(reps: u32) -> Vec<KernelMeasurement> {
    let mut rng = stream(1, StreamKind::Auxiliary, 0);
    let memory = egd_core::state::MemoryDepth::ONE;
    let a = PureStrategy::random(memory, &mut rng);
    let b = PureStrategy::random(memory, &mut rng);
    KernelVariant::LADDER
        .into_iter()
        .map(|variant| {
            let kernel = GameKernel::paper_defaults(variant, memory);
            // Warm-up, then measure.
            let mut sink = 0.0f64;
            for _ in 0..reps.min(16) {
                sink += kernel.play(&a, &b).expect("kernel plays").fitness_a;
            }
            let start = Instant::now();
            for _ in 0..reps.max(1) {
                sink += kernel.play(&a, &b).expect("kernel plays").fitness_a;
            }
            let ns = start.elapsed().as_nanos() as f64 / reps.max(1) as f64;
            std::hint::black_box(sink);
            KernelMeasurement {
                key: format!("kernel_ladder/{}/ns_per_game", variant.label()),
                ns_per_game: ns,
            }
        })
        .collect()
}

/// Paper-literal vs compiled timings of the stochastic kernel on one
/// workload's stochastic pairs.
#[derive(Debug, Clone)]
pub struct StochasticKernelTiming {
    /// The workload label the pairs came from.
    pub label: &'static str,
    /// Number of stochastic pairs in the distinct-pair matrix.
    pub pairs: usize,
    /// Paper-literal `play` nanoseconds per game.
    pub paper_ns_per_game: f64,
    /// Compiled-kernel nanoseconds per game (amortised compile included).
    pub compiled_ns_per_game: f64,
}

impl StochasticKernelTiming {
    /// Speedup of the compiled kernel over the paper-literal loop.
    pub fn speedup(&self) -> f64 {
        if self.compiled_ns_per_game > 0.0 {
            self.paper_ns_per_game / self.compiled_ns_per_game
        } else {
            f64::INFINITY
        }
    }
}

/// Measures the stochastic rung over every stochastic cell of the
/// workload's distinct-pair matrix (cells whose games cannot be cached),
/// averaged over `reps` generations. Streams are the engine's per-pair
/// substreams, and outcomes of the two kernels are asserted bit-identical.
pub fn measure_stochastic_kernel(workload: &Workload, reps: u32) -> StochasticKernelTiming {
    let game = workload.config.game().expect("workload game builds");
    let seed = workload.config.seed;
    let strategies = workload.population.strategies();
    let grouping = StrategyGrouping::of(strategies);
    let reps = reps.max(1);

    // The stochastic cells of the distinct-pair matrix, in engine order.
    let stochastic: Vec<(usize, usize)> = (0..grouping.num_groups() * grouping.num_groups())
        .map(|idx| {
            let g = idx / grouping.num_groups();
            let h = idx % grouping.num_groups();
            (grouping.group_rep[g], grouping.group_rep[h])
        })
        .filter(|&(i, j)| !game.is_deterministic_for(&strategies[i], &strategies[j]))
        .collect();
    assert!(
        !stochastic.is_empty(),
        "workload {} has no stochastic pairs to measure",
        workload.label
    );

    let games = (stochastic.len() as u32 * reps) as f64;

    // Paper-literal rung.
    let mut paper_outcomes = Vec::with_capacity(stochastic.len());
    let start = Instant::now();
    for rep in 0..reps {
        let generation = rep as u64;
        for &(i, j) in &stochastic {
            let pair_id = (i as u64) << 32 | j as u64;
            let mut rng = substream(seed, StreamKind::GamePlay, pair_id, generation);
            let outcome = game
                .play(&strategies[i], &strategies[j], &mut rng)
                .expect("paper kernel plays");
            if rep == 0 {
                paper_outcomes.push(outcome);
            }
        }
    }
    let paper_ns = start.elapsed().as_nanos() as f64 / games;

    // Compiled rung: per-generation interning (compile each distinct
    // strategy once per generation, exactly like the engine's interner).
    let start = Instant::now();
    let mut check = Vec::with_capacity(stochastic.len());
    for rep in 0..reps {
        let generation = rep as u64;
        let compiled: Vec<Option<CompiledStrategy>> = grouping
            .group_rep
            .iter()
            .map(|&i| {
                let involved = stochastic.iter().any(|&(a, b)| a == i || b == i);
                involved.then(|| CompiledStrategy::compile(&strategies[i]))
            })
            .collect();
        let compiled_of = |rep_index: usize| {
            let g = grouping.group_of[rep_index];
            compiled[g].as_ref().expect("stochastic rep compiled")
        };
        for &(i, j) in &stochastic {
            let pair_id = (i as u64) << 32 | j as u64;
            let mut rng = substream(seed, StreamKind::GamePlay, pair_id, generation);
            let outcome = game
                .play_compiled(compiled_of(i), compiled_of(j), &mut rng)
                .expect("compiled kernel plays");
            if rep == 0 {
                check.push(outcome);
            }
        }
    }
    let compiled_ns = start.elapsed().as_nanos() as f64 / games;

    for (slow, fast) in paper_outcomes.iter().zip(&check) {
        assert_eq!(
            slow.fitness_a.to_bits(),
            fast.fitness_a.to_bits(),
            "compiled kernel diverged from the paper-literal loop"
        );
        assert_eq!(slow.fitness_b.to_bits(), fast.fitness_b.to_bits());
    }

    StochasticKernelTiming {
        label: workload.label,
        pairs: stochastic.len(),
        paper_ns_per_game: paper_ns,
        compiled_ns_per_game: compiled_ns,
    }
}

/// Lane widths the batch harness sweeps (the simd-bench convention:
/// power-of-two widths up to the kernel's monomorphised maximum).
pub const BATCH_WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// One lane width's timing in the batch study.
#[derive(Debug, Clone)]
pub struct BatchWidthTiming {
    /// Lane width the kernel ran at.
    pub width: usize,
    /// Amortised nanoseconds per game at this width.
    pub ns_per_game: f64,
    /// Speedup over the single-game compiled kernel.
    pub speedup: f64,
    /// Lane efficiency: `speedup / width` (1.0 = ideal lane scaling).
    pub efficiency: f64,
}

/// The width sweep of the lane-parallel batched kernel on one workload.
#[derive(Debug, Clone)]
pub struct BatchKernelStudy {
    /// The workload label the pairs came from.
    pub label: &'static str,
    /// Number of stochastic pairs in the distinct-pair matrix.
    pub pairs: usize,
    /// Single-game compiled kernel nanoseconds per game (the rung the
    /// batched kernel must beat).
    pub single_ns_per_game: f64,
    /// Per-width timings, in [`BATCH_WIDTHS`] order.
    pub widths: Vec<BatchWidthTiming>,
    /// The fastest lane width.
    pub best_width: usize,
    /// Nanoseconds per game at the fastest width.
    pub best_ns_per_game: f64,
    /// Heuristic classification of what limits further width scaling:
    /// `"memory_or_registers"` (widest rung slower than the one below),
    /// `"tail_games"` (the block leaves a large sub-width tail) or
    /// `"rng_throughput"` (scaling limited by the serial multiply chain
    /// latency the lanes are hiding).
    pub bottleneck: &'static str,
}

impl BatchKernelStudy {
    /// Speedup of the best batched width over the single-game kernel.
    pub fn best_speedup(&self) -> f64 {
        if self.best_ns_per_game > 0.0 {
            self.single_ns_per_game / self.best_ns_per_game
        } else {
            f64::INFINITY
        }
    }
}

/// Sweeps the lane-parallel batched kernel
/// ([`egd_core::game::IpdGame::play_batched_width`]) across
/// [`BATCH_WIDTHS`] on the stochastic cells of the workload's distinct-pair
/// matrix, against the single-game compiled kernel as reference. Both sides
/// re-compile per generation (the engine interner's amortisation unit) and
/// play the engine's exact per-pair substreams; every width's outcomes are
/// asserted bit-identical to the reference while being timed.
pub fn measure_batch_kernel(workload: &Workload, reps: u32) -> BatchKernelStudy {
    let game = workload.config.game().expect("workload game builds");
    let seed = workload.config.seed;
    let strategies = workload.population.strategies();
    let grouping = StrategyGrouping::of(strategies);
    let reps = reps.max(1);

    // The stochastic cells of the distinct-pair matrix, in engine order.
    let stochastic: Vec<(usize, usize)> = (0..grouping.num_groups() * grouping.num_groups())
        .map(|idx| {
            let g = idx / grouping.num_groups();
            let h = idx % grouping.num_groups();
            (grouping.group_rep[g], grouping.group_rep[h])
        })
        .filter(|&(i, j)| !game.is_deterministic_for(&strategies[i], &strategies[j]))
        .collect();
    assert!(
        !stochastic.is_empty(),
        "workload {} has no stochastic pairs to measure",
        workload.label
    );
    // Compiled strategies and interned pair tables are built once, outside
    // every timed region: the engines amortise both through the
    // per-generation interner (repeated pairings share one `Arc`d table),
    // so neither belongs to the per-game cost of either rung. The timed
    // regions compare like with like — per-pair stream derivation plus the
    // kernel itself.
    let compiled: Vec<Option<CompiledStrategy>> = grouping
        .group_rep
        .iter()
        .map(|&i| {
            let involved = stochastic.iter().any(|&(a, b)| a == i || b == i);
            involved.then(|| CompiledStrategy::compile(&strategies[i]))
        })
        .collect();
    let compiled_of = |rep_index: usize| {
        let g = grouping.group_of[rep_index];
        compiled[g].as_ref().expect("stochastic rep compiled")
    };
    let tables: Vec<CompiledPairTable> = stochastic
        .iter()
        .map(|&(i, j)| CompiledPairTable::build(compiled_of(i), compiled_of(j)))
        .collect();

    // Each rung/rep is timed as its own ~half-millisecond block and the
    // study keeps the per-rep minimum: on shared hosts the mean folds
    // scheduler and neighbour noise into every rung, while the minimum
    // approaches the uncontended cost both rungs are being compared on.
    // Rungs are *interleaved* within each rep (single, w1, w2, …, w16, then
    // the next rep) so a multi-millisecond noise burst inflates one rep of
    // every rung rather than every rep of whichever rung it landed on —
    // the latter would sink that rung's minimum outright.
    let per_rep = stochastic.len() as f64;
    let mut reference = Vec::with_capacity(stochastic.len());
    let mut single_ns = f64::INFINITY;
    let mut width_ns = [f64::INFINITY; BATCH_WIDTHS.len()];
    // The batch fill (stream derivation + lane-major table copies) stays
    // inside the timed region — it is part of the batched design's per-game
    // cost — and the `BatchedDraws` buffers are reused like the engine's
    // scratch.
    let mut batch = BatchedDraws::new();
    for rep in 0..reps {
        let generation = rep as u64;
        let start = Instant::now();
        for &(i, j) in &stochastic {
            let pair_id = (i as u64) << 32 | j as u64;
            let mut rng = substream(seed, StreamKind::GamePlay, pair_id, generation);
            let outcome = game
                .play_compiled(compiled_of(i), compiled_of(j), &mut rng)
                .expect("compiled kernel plays");
            if rep == 0 {
                reference.push(outcome);
            }
        }
        single_ns = single_ns.min(start.elapsed().as_nanos() as f64 / per_rep);

        for (wi, &width) in BATCH_WIDTHS.iter().enumerate() {
            let start = Instant::now();
            batch.begin(game.memory().num_states());
            for (k, &(i, j)) in stochastic.iter().enumerate() {
                let pair_id = (i as u64) << 32 | j as u64;
                batch.push_game_table(
                    &tables[k],
                    substream_state(seed, StreamKind::GamePlay, pair_id, generation),
                );
            }
            game.play_batched_width(&mut batch, width)
                .expect("batched kernel plays");
            width_ns[wi] = width_ns[wi].min(start.elapsed().as_nanos() as f64 / per_rep);
            if rep == 0 {
                for (k, slow) in reference.iter().enumerate() {
                    assert_eq!(
                        slow.fitness_a.to_bits(),
                        batch.fitness_a[k].to_bits(),
                        "batched kernel (width {width}) diverged from the compiled kernel"
                    );
                    assert_eq!(slow.fitness_b.to_bits(), batch.fitness_b[k].to_bits());
                    assert_eq!(slow.cooperations_a, batch.cooperations_a[k]);
                    assert_eq!(slow.cooperations_b, batch.cooperations_b[k]);
                }
            }
        }
    }
    let widths: Vec<BatchWidthTiming> = BATCH_WIDTHS
        .iter()
        .zip(width_ns)
        .map(|(&width, ns)| {
            let speedup = if ns > 0.0 {
                single_ns / ns
            } else {
                f64::INFINITY
            };
            BatchWidthTiming {
                width,
                ns_per_game: ns,
                speedup,
                efficiency: speedup / width as f64,
            }
        })
        .collect();

    let best = widths
        .iter()
        .min_by(|a, b| a.ns_per_game.total_cmp(&b.ns_per_game))
        .expect("width sweep is non-empty");
    let (best_width, best_ns) = (best.width, best.ns_per_game);
    let widest = widths.last().expect("width sweep is non-empty");
    let runner_up = &widths[widths.len() - 2];
    let max_width = *BATCH_WIDTHS.last().expect("widths non-empty");
    let tail_fraction = (stochastic.len() % max_width) as f64 / stochastic.len() as f64;
    let bottleneck = if widest.ns_per_game > runner_up.ns_per_game * 1.05 {
        "memory_or_registers"
    } else if tail_fraction >= 0.25 {
        "tail_games"
    } else {
        "rng_throughput"
    };

    BatchKernelStudy {
        label: workload.label,
        pairs: stochastic.len(),
        single_ns_per_game: single_ns,
        widths,
        best_width,
        best_ns_per_game: best_ns,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skew::{skewed_mixed_workload, uniform_mixed_workload};

    #[test]
    fn pure_ladder_measures_all_rungs() {
        let measurements = measure_pure_ladder(20);
        assert_eq!(measurements.len(), 3);
        assert!(measurements.iter().all(|m| m.ns_per_game > 0.0));
        assert!(measurements[0].key.contains("naive"));
        assert!(measurements[2].key.contains("optimized"));
    }

    #[test]
    fn batch_kernel_study_sweeps_all_widths() {
        // The sweep itself asserts bit-identical outcomes at every width.
        let skewed = skewed_mixed_workload(12, 9, 30, 7);
        let study = measure_batch_kernel(&skewed, 2);
        assert_eq!(study.label, "skewed_mixed");
        assert!(study.pairs > 0);
        assert_eq!(study.widths.len(), BATCH_WIDTHS.len());
        for (timing, &width) in study.widths.iter().zip(&BATCH_WIDTHS) {
            assert_eq!(timing.width, width);
            assert!(timing.ns_per_game > 0.0);
            assert!(timing.efficiency > 0.0);
        }
        assert!(BATCH_WIDTHS.contains(&study.best_width));
        assert!(study.best_ns_per_game > 0.0);
        assert!(study.best_speedup() > 0.0);
        assert!(!study.bottleneck.is_empty());
    }

    #[test]
    fn stochastic_kernel_timing_is_validated() {
        // The measurement itself asserts bit-identical outcomes; this test
        // exercises that assertion on both canonical workloads.
        let skewed = skewed_mixed_workload(12, 9, 30, 7);
        let t = measure_stochastic_kernel(&skewed, 2);
        assert_eq!(t.label, "skewed_mixed");
        assert!(t.pairs > 0);
        assert!(t.paper_ns_per_game > 0.0 && t.compiled_ns_per_game > 0.0);
        let uniform = uniform_mixed_workload(8, 30, 7);
        let u = measure_stochastic_kernel(&uniform, 2);
        assert_eq!(u.pairs, 8 * 8);
    }
}
