//! Per-game kernel timings for the baseline file.
//!
//! The criterion micro-benchmarks (`benches/game_kernel.rs`,
//! `benches/mixed_kernel.rs`) print to stdout only; this module measures the
//! same kernels with plain `Instant` spans so `bench_diff` can record the
//! numbers into `BENCH_baseline.json` and gate on them — closing the
//! ROADMAP item "wiring criterion numbers into the baseline file".
//!
//! Two families are measured:
//!
//! * [`measure_pure_ladder`] — the deterministic Fig. 3 rungs
//!   (naive → indexed → optimized) on the same memory-one random pair the
//!   criterion ladder bench uses.
//! * [`measure_stochastic_kernel`] — the new stochastic rung: the
//!   paper-literal `IpdGame::play` versus the compiled threshold kernel
//!   `IpdGame::play_compiled` over the stochastic pairs of a canonical
//!   workload's distinct-pair matrix, with identical per-pair substreams.
//!   Both sides are asserted to produce bit-identical payoffs while being
//!   timed, so the speedup can never come from divergent behaviour.

use crate::skew::Workload;
use egd_core::game::CompiledStrategy;
use egd_core::rng::{stream, substream, StreamKind};
use egd_core::strategy::PureStrategy;
use egd_parallel::{GameKernel, KernelVariant, StrategyGrouping};
use std::time::Instant;

/// One measured kernel: baseline key plus nanoseconds per game.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Baseline entry name (e.g. `kernel_ladder/optimized/ns_per_game`).
    pub key: String,
    /// Average nanoseconds per game.
    pub ns_per_game: f64,
}

/// Times the deterministic Fig. 3 ladder (naive / indexed / optimized) at
/// memory one over `reps` games of the same random pair the criterion
/// `kernel_ladder_memory_one` group benches.
pub fn measure_pure_ladder(reps: u32) -> Vec<KernelMeasurement> {
    let mut rng = stream(1, StreamKind::Auxiliary, 0);
    let memory = egd_core::state::MemoryDepth::ONE;
    let a = PureStrategy::random(memory, &mut rng);
    let b = PureStrategy::random(memory, &mut rng);
    KernelVariant::LADDER
        .into_iter()
        .map(|variant| {
            let kernel = GameKernel::paper_defaults(variant, memory);
            // Warm-up, then measure.
            let mut sink = 0.0f64;
            for _ in 0..reps.min(16) {
                sink += kernel.play(&a, &b).expect("kernel plays").fitness_a;
            }
            let start = Instant::now();
            for _ in 0..reps.max(1) {
                sink += kernel.play(&a, &b).expect("kernel plays").fitness_a;
            }
            let ns = start.elapsed().as_nanos() as f64 / reps.max(1) as f64;
            std::hint::black_box(sink);
            KernelMeasurement {
                key: format!("kernel_ladder/{}/ns_per_game", variant.label()),
                ns_per_game: ns,
            }
        })
        .collect()
}

/// Paper-literal vs compiled timings of the stochastic kernel on one
/// workload's stochastic pairs.
#[derive(Debug, Clone)]
pub struct StochasticKernelTiming {
    /// The workload label the pairs came from.
    pub label: &'static str,
    /// Number of stochastic pairs in the distinct-pair matrix.
    pub pairs: usize,
    /// Paper-literal `play` nanoseconds per game.
    pub paper_ns_per_game: f64,
    /// Compiled-kernel nanoseconds per game (amortised compile included).
    pub compiled_ns_per_game: f64,
}

impl StochasticKernelTiming {
    /// Speedup of the compiled kernel over the paper-literal loop.
    pub fn speedup(&self) -> f64 {
        if self.compiled_ns_per_game > 0.0 {
            self.paper_ns_per_game / self.compiled_ns_per_game
        } else {
            f64::INFINITY
        }
    }
}

/// Measures the stochastic rung over every stochastic cell of the
/// workload's distinct-pair matrix (cells whose games cannot be cached),
/// averaged over `reps` generations. Streams are the engine's per-pair
/// substreams, and outcomes of the two kernels are asserted bit-identical.
pub fn measure_stochastic_kernel(workload: &Workload, reps: u32) -> StochasticKernelTiming {
    let game = workload.config.game().expect("workload game builds");
    let seed = workload.config.seed;
    let strategies = workload.population.strategies();
    let grouping = StrategyGrouping::of(strategies);
    let reps = reps.max(1);

    // The stochastic cells of the distinct-pair matrix, in engine order.
    let stochastic: Vec<(usize, usize)> = (0..grouping.num_groups() * grouping.num_groups())
        .map(|idx| {
            let g = idx / grouping.num_groups();
            let h = idx % grouping.num_groups();
            (grouping.group_rep[g], grouping.group_rep[h])
        })
        .filter(|&(i, j)| !game.is_deterministic_for(&strategies[i], &strategies[j]))
        .collect();
    assert!(
        !stochastic.is_empty(),
        "workload {} has no stochastic pairs to measure",
        workload.label
    );

    let games = (stochastic.len() as u32 * reps) as f64;

    // Paper-literal rung.
    let mut paper_outcomes = Vec::with_capacity(stochastic.len());
    let start = Instant::now();
    for rep in 0..reps {
        let generation = rep as u64;
        for &(i, j) in &stochastic {
            let pair_id = (i as u64) << 32 | j as u64;
            let mut rng = substream(seed, StreamKind::GamePlay, pair_id, generation);
            let outcome = game
                .play(&strategies[i], &strategies[j], &mut rng)
                .expect("paper kernel plays");
            if rep == 0 {
                paper_outcomes.push(outcome);
            }
        }
    }
    let paper_ns = start.elapsed().as_nanos() as f64 / games;

    // Compiled rung: per-generation interning (compile each distinct
    // strategy once per generation, exactly like the engine's interner).
    let start = Instant::now();
    let mut check = Vec::with_capacity(stochastic.len());
    for rep in 0..reps {
        let generation = rep as u64;
        let compiled: Vec<Option<CompiledStrategy>> = grouping
            .group_rep
            .iter()
            .map(|&i| {
                let involved = stochastic.iter().any(|&(a, b)| a == i || b == i);
                involved.then(|| CompiledStrategy::compile(&strategies[i]))
            })
            .collect();
        let compiled_of = |rep_index: usize| {
            let g = grouping.group_of[rep_index];
            compiled[g].as_ref().expect("stochastic rep compiled")
        };
        for &(i, j) in &stochastic {
            let pair_id = (i as u64) << 32 | j as u64;
            let mut rng = substream(seed, StreamKind::GamePlay, pair_id, generation);
            let outcome = game
                .play_compiled(compiled_of(i), compiled_of(j), &mut rng)
                .expect("compiled kernel plays");
            if rep == 0 {
                check.push(outcome);
            }
        }
    }
    let compiled_ns = start.elapsed().as_nanos() as f64 / games;

    for (slow, fast) in paper_outcomes.iter().zip(&check) {
        assert_eq!(
            slow.fitness_a.to_bits(),
            fast.fitness_a.to_bits(),
            "compiled kernel diverged from the paper-literal loop"
        );
        assert_eq!(slow.fitness_b.to_bits(), fast.fitness_b.to_bits());
    }

    StochasticKernelTiming {
        label: workload.label,
        pairs: stochastic.len(),
        paper_ns_per_game: paper_ns,
        compiled_ns_per_game: compiled_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skew::{skewed_mixed_workload, uniform_mixed_workload};

    #[test]
    fn pure_ladder_measures_all_rungs() {
        let measurements = measure_pure_ladder(20);
        assert_eq!(measurements.len(), 3);
        assert!(measurements.iter().all(|m| m.ns_per_game > 0.0));
        assert!(measurements[0].key.contains("naive"));
        assert!(measurements[2].key.contains("optimized"));
    }

    #[test]
    fn stochastic_kernel_timing_is_validated() {
        // The measurement itself asserts bit-identical outcomes; this test
        // exercises that assertion on both canonical workloads.
        let skewed = skewed_mixed_workload(12, 9, 30, 7);
        let t = measure_stochastic_kernel(&skewed, 2);
        assert_eq!(t.label, "skewed_mixed");
        assert!(t.pairs > 0);
        assert!(t.paper_ns_per_game > 0.0 && t.compiled_ns_per_game > 0.0);
        let uniform = uniform_mixed_workload(8, 30, 7);
        let u = measure_stochastic_kernel(&uniform, 2);
        assert_eq!(u.pairs, 8 * 8);
    }
}
