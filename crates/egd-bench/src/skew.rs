//! Skewed mixed-strategy workloads and load-balance measurement.
//!
//! The canonical skewed workload for the work-stealing scheduler: a
//! population whose first SSets hold **distinct pure** strategies (their
//! noise-free pair games are deterministic and cached, so after warm-up they
//! cost nanoseconds) and whose remaining SSets hold **distinct mixed**
//! strategies (every pair game involving one must be re-simulated per
//! generation, costing the full per-round loop). Under the legacy static
//! split the workers owning the mixed rows of the pair matrix become the
//! critical path; the adaptive scheduler steals that work back.
//!
//! Measurement happens in two layers, following the same philosophy as
//! `egd-cluster::perf` (measure what the hardware can execute, model what it
//! cannot):
//!
//! * [`measure_cell_costs`] times every distinct-pair matrix cell — the
//!   engine's actual parallel work items — **sequentially**, which is exact
//!   on any machine, and
//! * [`egd_sched::simulate_schedule`] replays the real scheduling algorithm
//!   over those measured costs in virtual time, yielding the per-policy
//!   critical path a machine with one core per worker would observe. This
//!   stays truthful on hosts with fewer cores than workers, where direct
//!   wall-clock A/B runs only measure time-sharing artefacts.
//!
//! [`measure_engine`] additionally executes the real engine and reports the
//! live scheduler statistics (steals actually happen; results stay
//! byte-identical across policies — the determinism suite enforces that).

use egd_core::config::SimulationConfig;
use egd_core::population::Population;
use egd_core::rng::{stream, StreamKind};
use egd_core::simulation::FitnessMode;
use egd_core::state::MemoryDepth;
use egd_core::strategy::{MixedStrategy, PureStrategy, StrategyKind, StrategySpace};
use egd_parallel::{
    ConcurrentPairEvaluator, ParallelEngine, SchedPolicy, SchedStats, StrategyGrouping,
    ThreadConfig,
};
use std::collections::HashSet;
use std::time::Instant;

/// A benchmark workload: a configuration plus a fixed population.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The simulation configuration (game parameters, seed).
    pub config: SimulationConfig,
    /// The population whose generation fitness is evaluated.
    pub population: Population,
    /// Short label used in baseline keys.
    pub label: &'static str,
}

/// Builds the skewed workload: `num_ssets` SSets, the first `pure_count`
/// holding distinct pure strategies (cheap once cached), the rest distinct
/// mixed strategies (expensive every generation).
pub fn skewed_mixed_workload(
    num_ssets: usize,
    pure_count: usize,
    rounds: u32,
    seed: u64,
) -> Workload {
    let memory = MemoryDepth::TWO;
    let config = SimulationConfig::builder()
        .memory(memory)
        .num_ssets(num_ssets)
        .agents_per_sset(2)
        .rounds_per_game(rounds)
        .seed(seed)
        .build()
        .expect("valid workload configuration");

    let mut rng = stream(seed, StreamKind::InitialStrategy, 0xBE7C);
    let mut strategies: Vec<StrategyKind> = Vec::with_capacity(num_ssets);
    let mut seen: HashSet<u64> = HashSet::new();
    while strategies.len() < pure_count.min(num_ssets) {
        let candidate = StrategyKind::Pure(PureStrategy::random(memory, &mut rng));
        if seen.insert(candidate.fingerprint()) {
            strategies.push(candidate);
        }
    }
    while strategies.len() < num_ssets {
        let candidate = StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng));
        if seen.insert(candidate.fingerprint()) {
            strategies.push(candidate);
        }
    }
    let population = Population::from_strategies(StrategySpace::mixed(memory), 2, strategies)
        .expect("explicit strategies build a population");
    Workload {
        config,
        population,
        label: "skewed_mixed",
    }
}

/// A uniform all-mixed workload (no cheap rows): the regression guard that
/// shows adaptive scheduling does not cost throughput when there is no skew
/// to exploit.
pub fn uniform_mixed_workload(num_ssets: usize, rounds: u32, seed: u64) -> Workload {
    let mut workload = skewed_mixed_workload(num_ssets, 0, rounds, seed);
    workload.label = "uniform_mixed";
    workload
}

/// Predicted per-cell weights of the workload's distinct-pair matrix under
/// the shared cost model — the exact vector the engine's cost-guided
/// initial partition seeds from (cells ordered like [`measure_cell_costs`]).
pub fn predicted_cell_weights(workload: &Workload) -> Vec<u64> {
    let game = workload.config.game().expect("workload game builds");
    let strategies = workload.population.strategies();
    let grouping = StrategyGrouping::of(strategies);
    egd_cost::predict::cell_weights(
        &egd_cost::CostModel::blue_gene_like(),
        &game,
        strategies,
        &grouping.group_rep,
    )
}

/// Measures the per-cell cost (ns) of the workload's distinct-pair payoff
/// matrix — the engine's parallel work items — sequentially, averaged over
/// `reps` generations after a cache warm-up. Cell order matches the
/// engine's: `cell = g * num_groups + h`.
pub fn measure_cell_costs(workload: &Workload, reps: u32) -> Vec<u64> {
    let evaluator = ConcurrentPairEvaluator::new(&workload.config, FitnessMode::Simulated)
        .expect("evaluator builds");
    let strategies = workload.population.strategies();

    // Group identically to the engine so representative indices (and random
    // streams) coincide, and evaluate through the same per-generation
    // context the engine's cell loop uses.
    let grouping = StrategyGrouping::of(strategies);
    let group_rep = &grouping.group_rep;
    let num_groups = grouping.num_groups();

    // Warm-up: fill the deterministic pair cache.
    for generation in 0..2 {
        let ctx = evaluator.generation_context(generation, strategies, group_rep);
        for idx in 0..num_groups * num_groups {
            evaluator
                .cell_payoff(
                    &ctx,
                    strategies,
                    group_rep,
                    idx / num_groups,
                    idx % num_groups,
                    generation,
                )
                .expect("payoff evaluates");
        }
    }

    let mut totals = vec![0u64; num_groups * num_groups];
    for rep in 0..reps.max(1) {
        let generation = 2 + rep as u64;
        let ctx = evaluator.generation_context(generation, strategies, group_rep);
        for (idx, total) in totals.iter_mut().enumerate() {
            let (g, h) = (idx / num_groups, idx % num_groups);
            let start = Instant::now();
            evaluator
                .cell_payoff(&ctx, strategies, group_rep, g, h, generation)
                .expect("payoff evaluates");
            *total += start.elapsed().as_nanos() as u64;
        }
    }
    totals
        .into_iter()
        .map(|total| total / reps.max(1) as u64)
        .collect()
}

/// Result of a real-execution measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The policy measured.
    pub policy: SchedPolicy,
    /// Worker threads used.
    pub threads: usize,
    /// Generations evaluated (after warm-up).
    pub reps: u32,
    /// Total wall-clock nanoseconds over all reps.
    pub wall_ns: u64,
    /// Scheduler statistics merged over all reps.
    pub sched: SchedStats,
}

impl Measurement {
    /// Wall-clock per generation (ns) on *this* machine.
    pub fn wall_ns_per_gen(&self) -> f64 {
        self.wall_ns as f64 / self.reps.max(1) as f64
    }

    /// Steals per generation.
    pub fn steals_per_gen(&self) -> f64 {
        self.sched.steals as f64 / self.reps.max(1) as f64
    }
}

/// Measures repeated generation-fitness evaluations of `workload` with an
/// engine configured for `threads` workers under `policy` (real execution).
pub fn measure_engine(
    workload: &Workload,
    threads: usize,
    policy: SchedPolicy,
    reps: u32,
) -> Measurement {
    let engine = ParallelEngine::new(
        &workload.config,
        FitnessMode::Simulated,
        ThreadConfig::with_threads(threads).with_policy(policy),
    )
    .expect("engine builds");

    // Warm-up: populates the deterministic pair cache so the steady state
    // (cheap pure rows, expensive mixed rows) is what gets measured.
    for generation in 0..2 {
        engine
            .compute_fitness(&workload.population, generation)
            .expect("fitness computes");
    }

    let mut sched = SchedStats::default();
    let started = Instant::now();
    for rep in 0..reps {
        engine
            .compute_fitness(&workload.population, 2 + rep as u64)
            .expect("fitness computes");
        if let Some(stats) = engine.last_sched_stats() {
            sched.merge(&stats);
        }
    }
    Measurement {
        policy,
        threads,
        reps,
        wall_ns: started.elapsed().as_nanos() as u64,
        sched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_sched::{simulate_schedule, Policy};

    #[test]
    fn skewed_workload_shape() {
        let workload = skewed_mixed_workload(16, 12, 50, 7);
        assert_eq!(workload.population.num_ssets(), 16);
        let pure = workload
            .population
            .strategies()
            .iter()
            .filter(|s| matches!(s, StrategyKind::Pure(_)))
            .count();
        assert_eq!(pure, 12);
        // All strategies distinct: grouping keeps full skew.
        let mut fingerprints: Vec<u64> = workload
            .population
            .strategies()
            .iter()
            .map(|s| s.fingerprint())
            .collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), 16);
    }

    #[test]
    fn measurements_agree_across_policies() {
        let workload = skewed_mixed_workload(12, 9, 20, 11);
        let engine_a = ParallelEngine::new(
            &workload.config,
            FitnessMode::Simulated,
            ThreadConfig::with_threads(4),
        )
        .unwrap();
        let engine_s = ParallelEngine::new(
            &workload.config,
            FitnessMode::Simulated,
            ThreadConfig::with_threads(4).with_policy(SchedPolicy::Static),
        )
        .unwrap();
        for generation in 0..3 {
            assert_eq!(
                engine_a
                    .compute_fitness(&workload.population, generation)
                    .unwrap(),
                engine_s
                    .compute_fitness(&workload.population, generation)
                    .unwrap()
            );
        }
    }

    #[test]
    fn cell_costs_expose_the_skew() {
        let workload = skewed_mixed_workload(12, 9, 40, 13);
        let costs = measure_cell_costs(&workload, 2);
        assert_eq!(costs.len(), 12 * 12);
        // Pure-pure cells (rows/cols < 9) are cache hits; mixed cells are
        // full simulations and must dominate them by a wide margin.
        let pure_pure: Vec<u64> = (0..12 * 12)
            .filter(|idx| idx / 12 < 9 && idx % 12 < 9)
            .map(|idx| costs[idx])
            .collect();
        let mixed: Vec<u64> = (0..12 * 12)
            .filter(|idx| idx / 12 >= 9 || idx % 12 >= 9)
            .map(|idx| costs[idx])
            .collect();
        // Medians, not means: a single OS-scheduling hiccup on this one-CPU
        // box can inflate one ~100 ns cache-hit measurement by orders of
        // magnitude and drag the pure-cell mean with it.
        let median = |v: &[u64]| {
            let mut sorted = v.to_vec();
            sorted.sort_unstable();
            sorted[sorted.len() / 2]
        };
        assert!(
            median(&mixed) > 5 * median(&pure_pure),
            "mixed cells ({} ns) should dwarf cached pure cells ({} ns)",
            median(&mixed),
            median(&pure_pure)
        );
    }

    #[test]
    fn replayed_schedule_prefers_adaptive_on_skew() {
        let workload = skewed_mixed_workload(16, 12, 40, 17);
        let costs = measure_cell_costs(&workload, 2);
        let fixed = simulate_schedule(4, &costs, Policy::Static);
        let adaptive = simulate_schedule(4, &costs, Policy::Adaptive);
        assert!(adaptive.steals > 0);
        assert!(
            adaptive.critical_path_ns() < fixed.critical_path_ns(),
            "adaptive {} vs static {}",
            adaptive.critical_path_ns(),
            fixed.critical_path_ns()
        );
    }

    #[test]
    fn predicted_weights_track_measured_skew() {
        let workload = skewed_mixed_workload(12, 9, 40, 13);
        let predicted = predicted_cell_weights(&workload);
        assert_eq!(predicted.len(), 12 * 12);
        // The prediction marks exactly the mixed rows/columns as expensive
        // — same shape the measured costs have.
        let expensive = |idx: usize| idx / 12 >= 9 || idx % 12 >= 9;
        let cheap_max = (0..144)
            .filter(|&i| !expensive(i))
            .map(|i| predicted[i])
            .max()
            .unwrap();
        let costly_min = (0..144)
            .filter(|&i| expensive(i))
            .map(|i| predicted[i])
            .min()
            .unwrap();
        assert!(costly_min > 5 * cheap_max, "{costly_min} vs {cheap_max}");
        // The static split of the *prediction* is as skewed as the measured
        // reality, and the guided replay over measured costs with predicted
        // weights recovers a near-balanced schedule with few steals.
        assert!(egd_cost::balance::static_skew(&predicted, 4) > 1.3);
        let measured = measure_cell_costs(&workload, 2);
        let guided =
            egd_sched::simulate_schedule_guided(4, &measured, &predicted, Policy::Adaptive);
        let uniform = simulate_schedule(4, &measured, Policy::Adaptive);
        assert!(
            guided.critical_path_ns() <= uniform.critical_path_ns() * 11 / 10,
            "guided {} vs uniform {}",
            guided.critical_path_ns(),
            uniform.critical_path_ns()
        );
    }

    #[test]
    fn measure_engine_produces_stats() {
        let workload = skewed_mixed_workload(12, 9, 20, 13);
        let m = measure_engine(&workload, 2, SchedPolicy::Adaptive, 3);
        assert_eq!(m.reps, 3);
        assert!(m.sched.items > 0);
        assert!(m.wall_ns_per_gen() > 0.0);
    }
}
