//! Multi-tenant throughput study: cost-model-priced sessions replayed over
//! the cooperative pool's scheduling discipline in virtual time.
//!
//! Same philosophy as the [`scale`](crate::scale) harness: the per-generation
//! price comes from the `egd-cost` predictor (fixed model constants), and the
//! pool's cooperative round-robin — every session yields at each generation
//! boundary, any free worker picks up the next runnable session — is replayed
//! exactly in virtual time. Inputs are deterministic, so the recorded
//! makespans and efficiencies are bit-identical on every machine; the table
//! answers the serving question the wall clock can't answer portably: *how
//! does throughput scale as tenants are packed onto a fixed pool?*

use egd_core::config::SimulationConfig;
use egd_core::prelude::MemoryDepth;
use egd_cost::CostModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual-time outcome of multiplexing `sessions` identical tenants onto
/// `workers` pool workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSimOutcome {
    /// Concurrent sessions offered.
    pub sessions: usize,
    /// Pool workers.
    pub workers: usize,
    /// Virtual time until the last session completes (ns).
    pub makespan_ns: u64,
    /// Sum of all generation costs (ns) — the serial work admitted.
    pub total_work_ns: u64,
    /// `total_work / (workers × makespan)`: 1.0 = perfectly packed pool.
    pub efficiency: f64,
    /// Completed sessions per virtual second.
    pub sessions_per_s: f64,
    /// Mean session latency (submission at t=0 to completion, ns): what one
    /// tenant experiences under co-scheduling.
    pub mean_latency_ns: u64,
}

/// The canonical serving tenant: the 16-SSet mixed-strategy workload every
/// engine golden uses, priced per generation by the cost model.
pub fn canonical_session_price_ns(generations: u64) -> (u64, u64) {
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(16)
        .agents_per_sset(2)
        .rounds_per_game(200)
        .generations(generations)
        .seed(20_130_521)
        .build()
        .expect("canonical serve config is valid");
    let game = config.game().expect("canonical game");
    let population = config.initial_population().expect("canonical population");
    let model = CostModel::blue_gene_like();
    let per_generation =
        egd_cost::predict::generation_weight_ns(&model, &game, population.strategies()).max(1);
    (per_generation, generations)
}

/// Replays the cooperative pool in virtual time: sessions are serial chains
/// of equally priced generations, every boundary is a yield point, and the
/// earliest-free worker always picks the longest-waiting runnable session
/// (FIFO — exactly the executor's queue discipline).
pub fn simulate_serve(
    sessions: usize,
    workers: usize,
    generations: u64,
    per_generation_ns: u64,
) -> ServeSimOutcome {
    // (ready_at, session) — FIFO among equal ready times via the session id.
    let mut ready: BinaryHeap<Reverse<(u64, usize)>> =
        (0..sessions).map(|s| Reverse((0u64, s))).collect();
    let mut worker_free: BinaryHeap<Reverse<(u64, usize)>> =
        (0..workers).map(|w| Reverse((0u64, w))).collect();
    let mut remaining: Vec<u64> = vec![generations; sessions];
    let mut completion: Vec<u64> = vec![0; sessions];

    while let Some(Reverse((ready_at, session))) = ready.pop() {
        let Reverse((free_at, worker)) = worker_free.pop().expect("workers is at least 1");
        let start = ready_at.max(free_at);
        let end = start + per_generation_ns;
        worker_free.push(Reverse((end, worker)));
        remaining[session] -= 1;
        if remaining[session] > 0 {
            ready.push(Reverse((end, session)));
        } else {
            completion[session] = end;
        }
    }

    let makespan_ns = completion.iter().copied().max().unwrap_or(0);
    let total_work_ns = per_generation_ns * generations * sessions as u64;
    let efficiency = if makespan_ns == 0 {
        0.0
    } else {
        total_work_ns as f64 / (workers as f64 * makespan_ns as f64)
    };
    let sessions_per_s = if makespan_ns == 0 {
        0.0
    } else {
        sessions as f64 * 1e9 / makespan_ns as f64
    };
    let mean_latency_ns = if sessions == 0 {
        0
    } else {
        completion.iter().sum::<u64>() / sessions as u64
    };
    ServeSimOutcome {
        sessions,
        workers,
        makespan_ns,
        total_work_ns,
        efficiency,
        sessions_per_s,
        mean_latency_ns,
    }
}

/// The EXPERIMENTS.md study: 1 / 8 / 32 canonical tenants on a 4-worker pool.
pub fn canonical_serve_study() -> Vec<ServeSimOutcome> {
    let (per_generation_ns, generations) = canonical_session_price_ns(50);
    [1usize, 8, 32]
        .iter()
        .map(|&sessions| simulate_serve(sessions, 4, generations, per_generation_ns))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_session_on_one_worker_is_serial() {
        let outcome = simulate_serve(1, 1, 10, 100);
        assert_eq!(outcome.makespan_ns, 1000);
        assert_eq!(outcome.total_work_ns, 1000);
        assert!((outcome.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscribed_pool_stays_fully_packed() {
        // 32 equal sessions on 4 workers: no idle gaps, efficiency 1.0,
        // makespan = total work / workers.
        let outcome = simulate_serve(32, 4, 8, 50);
        assert_eq!(outcome.makespan_ns, 32 * 8 * 50 / 4);
        assert!((outcome.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undersubscribed_pool_is_latency_bound() {
        // 1 session cannot use 4 workers: the chain is serial, so the
        // makespan is the chain length and efficiency is 1/workers.
        let outcome = simulate_serve(1, 4, 10, 100);
        assert_eq!(outcome.makespan_ns, 1000);
        assert!((outcome.efficiency - 0.25).abs() < 1e-12);
    }

    #[test]
    fn canonical_study_is_deterministic() {
        assert_eq!(canonical_serve_study(), canonical_serve_study());
    }
}
