//! # egd-bench
//!
//! Benchmark and reproduction harness for the IPDPS 2013 paper. Two kinds of
//! targets live here:
//!
//! * **Reproduction binaries** (`src/bin/`), one per table / figure of the
//!   paper's evaluation section. Each prints the same rows or series the
//!   paper reports (Table I–VI, Fig. 2–6) using the workspace crates, and is
//!   the entry point recorded in `EXPERIMENTS.md`.
//! * **Criterion micro-benchmarks** (`benches/`) for the performance-critical
//!   kernels: the game-play kernels across memory depths (the measured basis
//!   of Fig. 5), full parallel generations, the exact Markov engine, and a
//!   distributed-executor step.
//!
//! The library part contains the small helpers the binaries share, the
//! committed-baseline format ([`baseline`]), the skewed-workload
//! load-balance measurement used by `bench_diff` and the Fig. 4 harness
//! ([`skew`]), the per-game kernel timings that wire the criterion
//! benchmark numbers into the baseline file ([`kernels`]), and the
//! 10³–10⁴-rank cost-model × scheduled-executor scale harness ([`scale`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod kernels;
pub mod scale;
pub mod serve;
pub mod skew;

use egd_analysis::export::CsvTable;

/// Parses a `--flag value`-style argument from `std::env::args`, falling back
/// to a default. Used by the reproduction binaries for lightweight CLI
/// handling without a dependency.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Returns true when a bare `--flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Validates an argument vector against the flags a binary understands:
/// `value_flags` consume the following operand, `bool_flags` stand alone.
/// Returns the first unrecognized `--flag`, if any.
///
/// Testable core of [`require_known_flags`].
pub fn check_known_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if value_flags.iter().any(|f| f == arg) {
            i += 2; // skip the flag's operand
        } else if bool_flags.iter().any(|f| f == arg) {
            i += 1;
        } else if arg.starts_with("--") {
            return Err(arg.clone());
        } else {
            i += 1;
        }
    }
    Ok(())
}

/// Exits with an error (status 2) and the binary's usage text when the
/// command line contains a `--flag` the binary does not understand.
///
/// `arg_or`/`has_flag` look flags up by name and silently ignore everything
/// else, so a typo like `--enforce-scael 1.3` used to run an un-gated
/// benchmark and report success; gating binaries must fail loudly instead.
pub fn require_known_flags(usage: &str, value_flags: &[&str], bool_flags: &[&str]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(unknown) = check_known_flags(&args, value_flags, bool_flags) {
        eprintln!("error: unrecognized flag `{unknown}`");
        eprintln!("{usage}");
        std::process::exit(2);
    }
}

/// Prints a table both as an aligned terminal table and, when `--csv` was
/// passed, as CSV.
pub fn print_table(title: &str, table: &CsvTable) {
    println!("\n== {title} ==");
    if has_flag("--csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_aligned());
    }
}

/// Formats a float with a fixed number of decimals (helper for table rows).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_formats() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn arg_or_returns_default_when_missing() {
        assert_eq!(arg_or("--definitely-not-passed", 42u32), 42);
        assert!(!has_flag("--definitely-not-passed"));
    }

    #[test]
    fn check_known_flags_accepts_known_rejects_unknown() {
        let to_vec = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let value_flags = ["--enforce", "--baseline"];
        let bool_flags = ["--quick", "--csv"];
        assert_eq!(
            check_known_flags(
                &to_vec(&["--quick", "--enforce", "1.3", "--csv"]),
                &value_flags,
                &bool_flags,
            ),
            Ok(())
        );
        // A value flag's operand is not itself parsed as a flag…
        assert_eq!(
            check_known_flags(
                &to_vec(&["--baseline", "--weird.json"]),
                &value_flags,
                &bool_flags
            ),
            Ok(())
        );
        // …but a typo'd flag is a hard error, not silently ignored.
        assert_eq!(
            check_known_flags(
                &to_vec(&["--enforce-scael", "1.3"]),
                &value_flags,
                &bool_flags,
            ),
            Err("--enforce-scael".to_string())
        );
    }

    #[test]
    fn print_table_does_not_panic() {
        let mut table = CsvTable::new(&["a", "b"]);
        table.push_row(vec!["1".into(), "2".into()]);
        print_table("test", &table);
    }
}
