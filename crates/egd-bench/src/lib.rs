//! # egd-bench
//!
//! Benchmark and reproduction harness for the IPDPS 2013 paper. Two kinds of
//! targets live here:
//!
//! * **Reproduction binaries** (`src/bin/`), one per table / figure of the
//!   paper's evaluation section. Each prints the same rows or series the
//!   paper reports (Table I–VI, Fig. 2–6) using the workspace crates, and is
//!   the entry point recorded in `EXPERIMENTS.md`.
//! * **Criterion micro-benchmarks** (`benches/`) for the performance-critical
//!   kernels: the game-play kernels across memory depths (the measured basis
//!   of Fig. 5), full parallel generations, the exact Markov engine, and a
//!   distributed-executor step.
//!
//! The library part contains the small helpers the binaries share, the
//! committed-baseline format ([`baseline`]), the skewed-workload
//! load-balance measurement used by `bench_diff` and the Fig. 4 harness
//! ([`skew`]), the per-game kernel timings that wire the criterion
//! benchmark numbers into the baseline file ([`kernels`]), and the
//! 10³–10⁴-rank cost-model × scheduled-executor scale harness ([`scale`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod kernels;
pub mod scale;
pub mod skew;

use egd_analysis::export::CsvTable;

/// Parses a `--flag value`-style argument from `std::env::args`, falling back
/// to a default. Used by the reproduction binaries for lightweight CLI
/// handling without a dependency.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Returns true when a bare `--flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Prints a table both as an aligned terminal table and, when `--csv` was
/// passed, as CSV.
pub fn print_table(title: &str, table: &CsvTable) {
    println!("\n== {title} ==");
    if has_flag("--csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_aligned());
    }
}

/// Formats a float with a fixed number of decimals (helper for table rows).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_formats() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn arg_or_returns_default_when_missing() {
        assert_eq!(arg_or("--definitely-not-passed", 42u32), 42);
        assert!(!has_flag("--definitely-not-passed"));
    }

    #[test]
    fn print_table_does_not_panic() {
        let mut table = CsvTable::new(&["a", "b"]);
        table.push_row(vec!["1".into(), "2".into()]);
        print_table("test", &table);
    }
}
