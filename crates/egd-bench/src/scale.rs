//! The 10³–10⁵-rank scale harness: cost model × scheduled-executor replay.
//!
//! The paper's headline regime — worker ranks far outnumbering physical
//! cores, load balance decided by how tasks are multiplexed — cannot be
//! wall-clocked on the CI box (one physical core), and even on a big host
//! 10⁴ OS threads would measure the kernel's scheduler, not ours. This
//! harness therefore composes the two honest instruments the workspace
//! already trusts:
//!
//! 1. **The cost model** (`egd_cluster::cost`, fixed Blue-Gene-like
//!    constants) prices each rank's per-generation game-play phase — SSets
//!    per rank × opponents × per-game time at the rank's memory depth. The
//!    first ⅛ of the ranks own memory-six blocks (deep-memory
//!    subpopulations sit in contiguous SSet blocks, exactly how
//!    `SSetPartition` deals them out), the rest memory-one: the same
//!    front-loaded skew profile as the committed `bench_diff` workload.
//! 2. **`egd_sched::simulate_schedule`** replays the *actual* scheduled-
//!    executor algorithm (segmentation, adaptive block growth, back-half
//!    steals — and, for the static A/B arm, the retired one-chunk-per-worker
//!    split) over those per-rank costs in virtual time.
//!
//! Because both inputs are deterministic, the resulting critical paths,
//! imbalances and steal counts are *exactly* reproducible on any machine —
//! which is what lets CI gate them (`bench_diff --enforce-scale`) against
//! `BENCH_baseline.json` without tolerance bands.

use egd_cluster::cost::{CommMode, ComputeOptimization, CostModel, TopologyCost};
use egd_cluster::topology::ClusterTopology;
use egd_core::state::MemoryDepth;
use egd_sched::{simulate_schedule, simulate_schedule_guided, Policy, SimOutcome};

/// A synthetic rank-level workload for the scale studies.
#[derive(Debug, Clone, Copy)]
pub struct ScaleWorkload {
    /// Baseline key prefix (e.g. `scale_1e4`).
    pub label: &'static str,
    /// Number of simulated ranks (tasks per generation).
    pub ranks: usize,
    /// Number of scheduler workers multiplexing the rank tasks.
    pub workers: usize,
    /// SSets owned by each rank.
    pub ssets_per_rank: usize,
    /// Rounds per game.
    pub rounds: u32,
    /// Opponents per SSet. `None` (the strong-scaling points) derives it
    /// from the world size — every SSet plays every other — so per-rank
    /// work *grows* with the world. `Some(n)` pins it (the weak-scaling
    /// points): fixed work per rank while the world grows, the paper's
    /// Fig. 6a regime.
    pub fixed_opponents: Option<usize>,
}

/// Opponents per SSet shared by every weak-scaling point: the 10³-rank
/// world's opponent count, so `scale_weak_1e3` doubles as the weak
/// baseline.
const WEAK_OPPONENTS: usize = 4 * 1_000 - 1;

impl ScaleWorkload {
    /// The canonical scale points, all gated exactly by
    /// `bench_diff --enforce-scale`:
    ///
    /// * **strong scaling** — 10³ and 10⁴ ranks on a 4-worker pool (the CI
    ///   reference shape), 10⁴ ranks on 64 workers to show the static split
    ///   degrading as the pool grows while stealing holds, and 10⁵ ranks on
    ///   64 workers (the ceiling the tree collectives lifted);
    /// * **weak scaling** — fixed per-rank work ([`WEAK_OPPONENTS`]) with
    ///   ranks and workers growing in proportion (250 ranks per worker), so
    ///   the critical path should stay flat from 10³ to 10⁵ ranks.
    pub fn canonical() -> [ScaleWorkload; 7] {
        [
            ScaleWorkload {
                label: "scale_1e3",
                ranks: 1_000,
                workers: 4,
                ssets_per_rank: 4,
                rounds: 200,
                fixed_opponents: None,
            },
            ScaleWorkload {
                label: "scale_1e4",
                ranks: 10_000,
                workers: 4,
                ssets_per_rank: 4,
                rounds: 200,
                fixed_opponents: None,
            },
            ScaleWorkload {
                label: "scale_1e4_64w",
                ranks: 10_000,
                workers: 64,
                ssets_per_rank: 4,
                rounds: 200,
                fixed_opponents: None,
            },
            ScaleWorkload {
                label: "scale_1e5",
                ranks: 100_000,
                workers: 64,
                ssets_per_rank: 4,
                rounds: 200,
                fixed_opponents: None,
            },
            ScaleWorkload {
                label: "scale_weak_1e3",
                ranks: 1_000,
                workers: 4,
                ssets_per_rank: 4,
                rounds: 200,
                fixed_opponents: Some(WEAK_OPPONENTS),
            },
            ScaleWorkload {
                label: "scale_weak_1e4",
                ranks: 10_000,
                workers: 40,
                ssets_per_rank: 4,
                rounds: 200,
                fixed_opponents: Some(WEAK_OPPONENTS),
            },
            ScaleWorkload {
                label: "scale_weak_1e5",
                ranks: 100_000,
                workers: 400,
                ssets_per_rank: 4,
                rounds: 200,
                fixed_opponents: Some(WEAK_OPPONENTS),
            },
        ]
    }

    /// The 10⁶-rank stretch point. Deliberately *not* in [`Self::canonical`]
    /// (and so not in the committed baseline): it exists for the `#[ignore]`d
    /// stretch test the CI scale-smoke job runs in release mode.
    pub fn stretch_1e6() -> ScaleWorkload {
        ScaleWorkload {
            label: "scale_1e6",
            ranks: 1_000_000,
            workers: 4_000,
            ssets_per_rank: 4,
            rounds: 200,
            fixed_opponents: Some(WEAK_OPPONENTS),
        }
    }

    /// Number of ranks whose blocks hold memory-six SSets (the heavy
    /// prefix): the first eighth, mirroring the committed skewed workload.
    pub fn heavy_ranks(&self) -> usize {
        self.ranks / 8
    }

    /// Per-rank virtual cost (ns) of one generation's game-play phase under
    /// the cost model: every SSet in the rank's block plays its opponents —
    /// every other SSet for the strong points, the pinned
    /// [`ScaleWorkload::fixed_opponents`] for the weak ones — at the block's
    /// memory depth.
    pub fn rank_costs_ns(&self, model: &CostModel) -> Vec<u64> {
        let total_ssets = self.ranks * self.ssets_per_rank;
        let opponents = self
            .fixed_opponents
            .unwrap_or_else(|| total_ssets.saturating_sub(1)) as f64;
        let heavy = self.heavy_ranks();
        let game_us = |memory: MemoryDepth| {
            model.game_time_us(memory, self.rounds, ComputeOptimization::Intrinsics, 1.0)
        };
        let heavy_us = self.ssets_per_rank as f64 * opponents * game_us(MemoryDepth::SIX)
            + model.per_generation_overhead_us;
        let light_us = self.ssets_per_rank as f64 * opponents * game_us(MemoryDepth::ONE)
            + model.per_generation_overhead_us;
        (0..self.ranks)
            .map(|rank| {
                let us = if rank < heavy { heavy_us } else { light_us };
                (us * 1e3) as u64
            })
            .collect()
    }

    /// Modelled per-generation communication time (µs) for this rank count
    /// on the Blue Gene/P collective + torus networks (paper §V rates:
    /// PC 10%, mutation 5%) — reported next to the compute critical path so
    /// the compute/comm ratio of the scale points stays visible.
    pub fn modeled_comm_us(&self) -> f64 {
        let topology =
            ClusterTopology::blue_gene_p_virtual_node(self.ranks, self.ranks * self.ssets_per_rank)
                .expect("scale topology is valid");
        CostModel::blue_gene_like().generation_comm_time_us(
            &topology,
            MemoryDepth::SIX,
            0.1,
            0.05,
            CommMode::NonBlocking,
        )
    }
}

/// Virtual-time outcome of one scale point under the three scheduling
/// regimes: uniform static split, uniform split + adaptive stealing, and
/// cost-guided initial partition + adaptive stealing.
#[derive(Debug, Clone)]
pub struct ScaleAssessment {
    /// The workload replayed.
    pub workload: ScaleWorkload,
    /// Outcome under the retired static one-chunk-per-worker split.
    pub fixed: SimOutcome,
    /// Outcome under the adaptive work-stealing scheduler (uniform initial
    /// split).
    pub adaptive: SimOutcome,
    /// Outcome with the **cost-guided initial partition** active: per-worker
    /// rank segments sized by the cost model's predicted rank cost, adaptive
    /// stealing correcting the residue — the two-level contract the live
    /// `ScheduledExecutor` runs.
    pub guided: SimOutcome,
    /// Modelled per-generation communication time (µs).
    pub comm_us: f64,
}

impl ScaleAssessment {
    /// Static over adaptive critical path (>1 = stealing wins).
    pub fn speedup(&self) -> f64 {
        self.fixed.critical_path_ns() as f64 / self.adaptive.critical_path_ns().max(1) as f64
    }

    /// Static over guided critical path (>1 = the two-level partition wins).
    pub fn guided_speedup(&self) -> f64 {
        self.fixed.critical_path_ns() as f64 / self.guided.critical_path_ns().max(1) as f64
    }
}

/// Replays one scale workload through the cost model + scheduler.
pub fn assess_scale(workload: &ScaleWorkload) -> ScaleAssessment {
    let model = CostModel::blue_gene_like();
    let costs = workload.rank_costs_ns(&model);
    ScaleAssessment {
        workload: *workload,
        fixed: simulate_schedule(workload.workers, &costs, Policy::Static),
        adaptive: simulate_schedule(workload.workers, &costs, Policy::Adaptive),
        // The predictions fed to the partition are the same cost-model
        // prices the replay charges, mirroring the live executor (which
        // predicts with the very model that defines this workload's costs).
        guided: simulate_schedule_guided(workload.workers, &costs, &costs, Policy::Adaptive),
        comm_us: workload.modeled_comm_us(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_prefix_is_costlier() {
        let workload = ScaleWorkload::canonical()[0];
        let costs = workload.rank_costs_ns(&CostModel::blue_gene_like());
        assert_eq!(costs.len(), 1000);
        let heavy = workload.heavy_ranks();
        assert_eq!(heavy, 125);
        assert!(costs[0] > 2 * costs[heavy]);
        // Uniform within each region.
        assert!(costs[..heavy].iter().all(|&c| c == costs[0]));
        assert!(costs[heavy..].iter().all(|&c| c == costs[heavy]));
    }

    #[test]
    fn ten_thousand_ranks_replay_deterministically() {
        let workload = ScaleWorkload::canonical()[1];
        assert_eq!(workload.ranks, 10_000);
        let a = assess_scale(&workload);
        let b = assess_scale(&workload);
        // Bit-identical across runs: the CI gate needs no tolerance band.
        assert_eq!(a.fixed, b.fixed);
        assert_eq!(a.adaptive, b.adaptive);
        assert_eq!(a.adaptive.total_work_ns, a.fixed.total_work_ns);
    }

    #[test]
    fn stealing_beats_static_split_at_scale() {
        for workload in ScaleWorkload::canonical() {
            let assessment = assess_scale(&workload);
            assert_eq!(assessment.fixed.steals, 0);
            assert!(assessment.adaptive.steals > 0, "{}", workload.label);
            assert!(
                assessment.speedup() > 1.3,
                "{}: speedup {:.3}",
                workload.label,
                assessment.speedup()
            );
            assert!(
                assessment.adaptive.imbalance() < 1.2,
                "{}: imbalance {:.3}",
                workload.label,
                assessment.adaptive.imbalance()
            );
            assert!(assessment.comm_us > 0.0);
        }
    }

    #[test]
    fn guided_partition_beats_uniform_adaptive_at_scale() {
        for workload in ScaleWorkload::canonical() {
            let assessment = assess_scale(&workload);
            // The cost-guided initial partition starts balanced, so it
            // steals less than the uniform split needs to...
            assert!(
                assessment.guided.steals < assessment.adaptive.steals,
                "{}: guided {} vs adaptive {} steals",
                workload.label,
                assessment.guided.steals,
                assessment.adaptive.steals
            );
            // ...without giving back any critical path.
            assert!(
                assessment.guided.critical_path_ns() <= assessment.adaptive.critical_path_ns(),
                "{}: guided {} vs adaptive {} ns",
                workload.label,
                assessment.guided.critical_path_ns(),
                assessment.adaptive.critical_path_ns()
            );
            assert!(
                assessment.guided.imbalance() < 1.05,
                "{}: guided imbalance {:.3}",
                workload.label,
                assessment.guided.imbalance()
            );
            assert_eq!(
                assessment.guided.total_work_ns,
                assessment.adaptive.total_work_ns
            );
            // Shared balance helpers agree on the initial split quality.
            let costs = workload.rank_costs_ns(&CostModel::blue_gene_like());
            let fixed_skew = egd_cost::balance::static_skew(&costs, workload.workers);
            let guided_skew = egd_cost::balance::weighted_skew(&costs, workload.workers);
            assert!(
                guided_skew < fixed_skew,
                "{}: weighted skew {guided_skew:.3} vs static {fixed_skew:.3}",
                workload.label
            );
            assert!(guided_skew < 1.05, "{}: {guided_skew:.3}", workload.label);
        }
    }

    #[test]
    fn weak_scaling_keeps_critical_path_flat() {
        let weak: Vec<ScaleAssessment> = ScaleWorkload::canonical()
            .iter()
            .filter(|w| w.fixed_opponents.is_some())
            .map(assess_scale)
            .collect();
        assert_eq!(weak.len(), 3);
        // Fixed work per rank, 250 ranks per worker: total work grows exactly
        // linearly with the world...
        assert_eq!(
            weak[1].guided.total_work_ns,
            10 * weak[0].guided.total_work_ns
        );
        assert_eq!(
            weak[2].guided.total_work_ns,
            100 * weak[0].guided.total_work_ns
        );
        // ...while the guided critical path stays flat from 10³ to 10⁵ ranks
        // (within 10% of the smallest world — weak-scaling efficiency ≥ 0.9).
        let base = weak[0].guided.critical_path_ns() as f64;
        for a in &weak {
            let ratio = a.guided.critical_path_ns() as f64 / base;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{}: critical-path ratio {ratio:.3}",
                a.workload.label
            );
        }
    }

    #[test]
    #[ignore = "10^6-rank replay: run in release mode via the CI scale-smoke job"]
    fn scale_million_rank_replay_holds_balance() {
        // The stretch point past the gated set: 10⁶ rank tasks on 4,000
        // virtual workers, weak-scaling work profile.
        let workload = ScaleWorkload::stretch_1e6();
        let a = assess_scale(&workload);
        assert_eq!(a.guided.total_work_ns, a.adaptive.total_work_ns);
        assert!(a.speedup() > 1.3, "speedup {:.3}", a.speedup());
        assert!(a.adaptive.imbalance() < 1.2);
        assert!(a.guided.imbalance() < 1.05);
        // Bit-identical on replay, like every other scale point.
        let b = assess_scale(&workload);
        assert_eq!(a.adaptive, b.adaptive);
        assert_eq!(a.guided, b.guided);
    }

    #[test]
    fn wider_pools_degrade_static_but_not_adaptive() {
        // With the heavy prefix pinned to the first chunk, growing the pool
        // makes the static split *worse* (the heavy chunk shrinks less than
        // the mean), while stealing stays near-balanced.
        let four = assess_scale(&ScaleWorkload::canonical()[1]);
        let sixty_four = assess_scale(&ScaleWorkload::canonical()[2]);
        assert!(sixty_four.fixed.imbalance() > four.fixed.imbalance());
        assert!(sixty_four.adaptive.imbalance() < 1.2);
        assert!(sixty_four.speedup() > four.speedup());
    }
}
