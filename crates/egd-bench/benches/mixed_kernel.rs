//! Criterion benchmarks of the *stochastic* game kernel — the mixed-strategy
//! rung of the Fig. 3 optimisation ladder.
//!
//! Compares the paper-literal engine (`IpdGame::play`: dynamic strategy
//! dispatch, per-round `gen_bool` float compares, two view advances) against
//! the compiled threshold kernel (`IpdGame::play_compiled`), which produces
//! bit-identical outcomes from the same RNG stream. Also benches the
//! interned block path that the parallel engine's agent-plan uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egd_core::prelude::*;
use egd_core::rng::{stream, substream, StreamKind};
use std::hint::black_box;
use std::time::Duration;

fn random_mixed_pair(memory: MemoryDepth, seed: u64) -> (StrategyKind, StrategyKind) {
    let mut rng = stream(seed, StreamKind::InitialStrategy, 0);
    (
        StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng)),
        StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng)),
    )
}

/// Paper-literal vs compiled on a mixed-vs-mixed pairing (every round draws
/// twice), across memory depths one and two.
fn bench_mixed_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_kernel_mixed");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for memory in [MemoryDepth::ONE, MemoryDepth::TWO] {
        let (a, b) = random_mixed_pair(memory, memory.steps() as u64);
        let game = IpdGame::paper_defaults(memory);
        group.bench_with_input(
            BenchmarkId::new("paper", memory.steps()),
            &game,
            |bench, game| {
                bench.iter(|| {
                    let mut rng = substream(7, StreamKind::GamePlay, 1, 0);
                    black_box(game.play(black_box(&a), black_box(&b), &mut rng).unwrap())
                });
            },
        );
        let ca = CompiledStrategy::compile(&a);
        let cb = CompiledStrategy::compile(&b);
        group.bench_with_input(
            BenchmarkId::new("compiled", memory.steps()),
            &game,
            |bench, game| {
                bench.iter(|| {
                    let mut rng = substream(7, StreamKind::GamePlay, 1, 0);
                    black_box(
                        game.play_compiled(black_box(&ca), black_box(&cb), &mut rng)
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// Paper-literal vs compiled on a noisy pure-vs-pure pairing (the other
/// uncacheable family: strategy draws never fire, noise draws always do).
fn bench_noisy_pure(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_kernel_noisy_pure");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let game = IpdGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.02).unwrap();
    let a = StrategyKind::Pure(NamedStrategy::TitForTat.to_pure());
    let b = StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure());
    group.bench_function("paper", |bench| {
        bench.iter(|| {
            let mut rng = substream(9, StreamKind::GamePlay, 2, 0);
            black_box(game.play(black_box(&a), black_box(&b), &mut rng).unwrap())
        });
    });
    let ca = CompiledStrategy::compile(&a);
    let cb = CompiledStrategy::compile(&b);
    group.bench_function("compiled", |bench| {
        bench.iter(|| {
            let mut rng = substream(9, StreamKind::GamePlay, 2, 0);
            black_box(
                game.play_compiled(black_box(&ca), black_box(&cb), &mut rng)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

/// The interned block path: one agent's whole opponent block of stochastic
/// pairings through `StochasticBlock` (amortised substream setup + SoA
/// scratch), as used by the agent-level work plan.
fn bench_stochastic_block(c: &mut Criterion) {
    use egd_core::simulation::FitnessMode;
    use egd_parallel::{ConcurrentPairEvaluator, StochasticBlock, StochasticScratch};

    let mut group = c.benchmark_group("stochastic_block");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let config = egd_core::config::SimulationConfig::builder()
        .memory(MemoryDepth::TWO)
        .num_ssets(16)
        .rounds_per_game(200)
        .noise(0.02)
        .seed(11)
        .build()
        .unwrap();
    let population = config.initial_population().unwrap();
    let strategies = population.strategies();
    let evaluator = ConcurrentPairEvaluator::new(&config, FitnessMode::Simulated).unwrap();
    let opponents: Vec<(usize, &StrategyKind)> =
        (1..strategies.len()).map(|j| (j, &strategies[j])).collect();
    group.bench_function(BenchmarkId::new("block", opponents.len()), |bench| {
        let block = StochasticBlock::new(&evaluator);
        let mut scratch = StochasticScratch::new();
        bench.iter(|| {
            block
                .play(0, &strategies[0], &opponents, 0, &mut scratch)
                .unwrap();
            black_box(scratch.fitness_a.iter().sum::<f64>())
        });
    });
    group.finish();
}

/// The lane-parallel batch kernel vs the one-game-at-a-time compiled kernel
/// on a block of mixed pairings — the batched rung of the ladder. Each
/// iteration replays the whole block so ns/iter divides by `BLOCK` games.
fn bench_batched_block(c: &mut Criterion) {
    use egd_core::game::compiled::BatchedDraws;
    use egd_core::game::CompiledPairTable;
    use egd_core::rng::substream_state;
    use rand_pcg::Pcg64Mcg;

    const BLOCK: usize = 64;
    let mut group = c.benchmark_group("stochastic_kernel_batched");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let memory = MemoryDepth::TWO;
    let game = IpdGame::paper_defaults(memory);
    let pairs: Vec<(CompiledStrategy, CompiledStrategy)> = (0..BLOCK)
        .map(|i| {
            let (a, b) = random_mixed_pair(memory, 1000 + i as u64);
            (CompiledStrategy::compile(&a), CompiledStrategy::compile(&b))
        })
        .collect();
    let tables: Vec<CompiledPairTable> = pairs
        .iter()
        .map(|(ca, cb)| CompiledPairTable::build(ca, cb))
        .collect();

    group.bench_function(BenchmarkId::new("single", BLOCK), |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for (k, (ca, cb)) in pairs.iter().enumerate() {
                let mut rng = Pcg64Mcg::new(substream_state(13, StreamKind::GamePlay, k as u64, 0));
                let outcome = game.play_compiled(ca, cb, &mut rng).unwrap();
                acc += outcome.fitness_a;
            }
            black_box(acc)
        });
    });

    for width in [2usize, BatchedDraws::MAX_WIDTH] {
        group.bench_function(
            BenchmarkId::new(format!("batched_w{width}"), BLOCK),
            |bench| {
                let mut batch = BatchedDraws::new();
                bench.iter(|| {
                    batch.begin(memory.num_states());
                    for (k, table) in tables.iter().enumerate() {
                        batch.push_game_table(
                            table,
                            substream_state(13, StreamKind::GamePlay, k as u64, 0),
                        );
                    }
                    game.play_batched_width(&mut batch, width).unwrap();
                    black_box(batch.fitness_a.iter().sum::<f64>())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mixed_ladder,
    bench_noisy_pure,
    bench_stochastic_block,
    bench_batched_block
);
criterion_main!(benches);
