//! Criterion benchmarks of the simulated-cluster substrate: communicator
//! collectives, full distributed runs at several worker counts, and the
//! analytic scaling model evaluation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egd_cluster::executor::{DistributedConfig, DistributedExecutor};
use egd_cluster::mpi::SimWorld;
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_mpi_collectives");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("broadcast_and_reduce", ranks),
            &ranks,
            |bench, &ranks| {
                bench.iter(|| {
                    let world = SimWorld::new(ranks).unwrap();
                    let (results, _) = world
                        .run(|mut comm| async move {
                            let value = if comm.rank() == 0 {
                                Some(vec![1.0f64; 64])
                            } else {
                                None
                            };
                            let v = comm.broadcast(0, value).await?;
                            comm.allreduce_sum(&v).await
                        })
                        .unwrap();
                    black_box(results)
                });
            },
        );
    }
    group.finish();
}

fn bench_distributed_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_executor_run");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let cfg = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(16)
        .agents_per_sset(2)
        .rounds_per_game(50)
        .generations(50)
        .seed(3)
        .build()
        .unwrap();
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |bench, &workers| {
                bench.iter(|| {
                    let executor = DistributedExecutor::new(
                        cfg.clone(),
                        DistributedConfig::with_workers(workers),
                    )
                    .unwrap();
                    black_box(executor.run().unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_scaling_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_scaling_model");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let harness = ScalingHarness::blue_gene_p();
    let workload = Workload::paper(32_768, MemoryDepth::SIX, 20);
    let counts: Vec<usize> = vec![1_024, 2_048, 8_192, 16_384, 262_144];
    group.bench_function("strong_scaling_sweep", |bench| {
        bench.iter(|| black_box(harness.strong_scaling(&workload, &counts).unwrap()));
    });
    group.bench_function("weak_scaling_sweep", |bench| {
        bench.iter(|| {
            black_box(
                harness
                    .weak_scaling(&Workload::paper(0, MemoryDepth::SIX, 20), 4_096, &counts)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_collectives,
    bench_distributed_run,
    bench_scaling_model
);
criterion_main!(benches);
