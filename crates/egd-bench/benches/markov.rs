//! Criterion benchmarks of the exact Markov-chain payoff engine across
//! memory depths and noise levels — the analytic fast path used by the
//! validation harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egd_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn random_kind(memory: MemoryDepth, seed: u64) -> StrategyKind {
    let mut rng = egd_core::rng::stream(seed, egd_core::rng::StreamKind::Auxiliary, 1);
    StrategyKind::Pure(PureStrategy::random(memory, &mut rng))
}

fn bench_finite_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_finite_horizon");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    for memory in [
        MemoryDepth::ONE,
        MemoryDepth::TWO,
        MemoryDepth::THREE,
        MemoryDepth::FOUR,
    ] {
        let game = MarkovGame::new(memory, 200, PayoffMatrix::PAPER, 0.01).unwrap();
        let a = random_kind(memory, 1);
        let b = random_kind(memory, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(memory.steps()),
            &game,
            |bench, game| {
                bench
                    .iter(|| black_box(game.finite_horizon(black_box(&a), black_box(&b)).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_stationary(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_stationary");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    for noise in [0.0, 0.01, 0.05] {
        let game = MarkovGame::new(MemoryDepth::TWO, 200, PayoffMatrix::PAPER, noise).unwrap();
        let a = StrategyKind::Pure(
            NamedStrategy::WinStayLoseShift
                .to_pure_with_memory(MemoryDepth::TWO)
                .unwrap(),
        );
        let b = random_kind(MemoryDepth::TWO, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("noise_{noise}")),
            &game,
            |bench, game| {
                bench.iter(|| black_box(game.stationary(black_box(&a), black_box(&b)).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_markov_vs_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_vs_simulated_noisy_game");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    let memory = MemoryDepth::ONE;
    let markov = MarkovGame::new(memory, 200, PayoffMatrix::PAPER, 0.02).unwrap();
    let simulated = IpdGame::new(memory, 200, PayoffMatrix::PAPER, 0.02).unwrap();
    let a = StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure());
    let b = StrategyKind::Pure(NamedStrategy::TitForTat.to_pure());

    group.bench_function("markov_exact", |bench| {
        bench.iter(|| black_box(markov.finite_horizon(&a, &b).unwrap()));
    });
    group.bench_function("single_sampled_game", |bench| {
        let mut rng = egd_core::rng::stream(5, egd_core::rng::StreamKind::GamePlay, 0);
        bench.iter(|| black_box(simulated.play(&a, &b, &mut rng).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_finite_horizon,
    bench_stationary,
    bench_markov_vs_simulation
);
criterion_main!(benches);
