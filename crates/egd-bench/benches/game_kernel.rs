//! Criterion benchmarks of the game-play kernels: the measured basis of the
//! Fig. 3 optimisation ladder and of the Fig. 5 memory-depth cost growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egd_core::prelude::*;
use egd_parallel::kernel::{GameKernel, KernelVariant};
use std::hint::black_box;
use std::time::Duration;

fn random_pair(memory: MemoryDepth, seed: u64) -> (PureStrategy, PureStrategy) {
    let mut rng = egd_core::rng::stream(seed, egd_core::rng::StreamKind::Auxiliary, 0);
    (
        PureStrategy::random(memory, &mut rng),
        PureStrategy::random(memory, &mut rng),
    )
}

/// Kernel-variant ladder at memory-one (Fig. 3's compute rungs).
fn bench_kernel_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_ladder_memory_one");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let (a, b) = random_pair(MemoryDepth::ONE, 1);
    for variant in KernelVariant::LADDER {
        let kernel = GameKernel::paper_defaults(variant, MemoryDepth::ONE);
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &kernel,
            |bench, kernel| {
                bench.iter(|| black_box(kernel.play(black_box(&a), black_box(&b)).unwrap()));
            },
        );
    }
    group.finish();
}

/// Batched kernel play on the work-stealing scheduler: the full memory-one
/// pure-strategy round-robin (16 x 16 pairings) as one `play_batch` call.
fn bench_batched_round_robin(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_batch_round_robin");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let strategies: Vec<PureStrategy> = (0..16)
        .map(|id| PureStrategy::from_id(MemoryDepth::ONE, id).unwrap())
        .collect();
    let pairs: Vec<(&PureStrategy, &PureStrategy)> = strategies
        .iter()
        .flat_map(|a| strategies.iter().map(move |b| (a, b)))
        .collect();
    let kernel = GameKernel::paper_defaults(KernelVariant::Optimized, MemoryDepth::ONE);
    for threads in [1usize, 4] {
        let pool = egd_parallel::ThreadConfig::with_threads(threads)
            .build_pool()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("play_batch", threads),
            &pairs,
            |bench, pairs| {
                bench.iter(|| pool.install(|| black_box(kernel.play_batch(pairs).unwrap())));
            },
        );
    }
    group.finish();
}

/// Optimised kernel across memory depths (the measured ingredient of Fig. 5).
fn bench_memory_depths(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimized_kernel_by_memory");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for memory in MemoryDepth::PAPER_RANGE {
        let (a, b) = random_pair(memory, memory.steps() as u64);
        let kernel = GameKernel::paper_defaults(KernelVariant::Optimized, memory);
        group.bench_with_input(
            BenchmarkId::from_parameter(memory.steps()),
            &kernel,
            |bench, kernel| {
                bench.iter(|| black_box(kernel.play(black_box(&a), black_box(&b)).unwrap()));
            },
        );
    }
    group.finish();
}

/// The naive kernel across memory depths — shows the linear state-scan blowup
/// that the paper's "Original" implementation suffers from.
fn bench_naive_by_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_kernel_by_memory");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    for memory in [
        MemoryDepth::ONE,
        MemoryDepth::TWO,
        MemoryDepth::THREE,
        MemoryDepth::FOUR,
    ] {
        let (a, b) = random_pair(memory, memory.steps() as u64);
        let kernel = GameKernel::paper_defaults(KernelVariant::Naive, memory);
        group.bench_with_input(
            BenchmarkId::from_parameter(memory.steps()),
            &kernel,
            |bench, kernel| {
                bench.iter(|| black_box(kernel.play(black_box(&a), black_box(&b)).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_ladder,
    bench_batched_round_robin,
    bench_memory_depths,
    bench_naive_by_memory
);
criterion_main!(benches);
