//! Criterion benchmarks of full generations: the sequential reference, the
//! shared-memory parallel engine at several thread counts, and the grouped vs
//! agent-level (work-plan) decomposition — the ablation for the SSet
//! abstraction that the paper's §IV argues for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egd_core::prelude::*;
use egd_parallel::engine::ParallelEngine;
use egd_parallel::partition::WorkPlan;
use egd_parallel::thread_pool::ThreadConfig;
use std::hint::black_box;
use std::time::Duration;

fn config(num_ssets: usize, memory: MemoryDepth) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(memory)
        .num_ssets(num_ssets)
        .agents_per_sset(4)
        .rounds_per_game(200)
        .seed(17)
        .build()
        .unwrap()
}

/// One full generation of fitness evaluation, sequential vs parallel threads.
fn bench_generation_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation_fitness_threads");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let cfg = config(96, MemoryDepth::TWO);
    let population = cfg.initial_population().unwrap();

    group.bench_function("sequential_reference", |bench| {
        bench.iter(|| {
            let mut evaluator = PairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
            black_box(compute_generation_fitness(&population, &mut evaluator, 0).unwrap())
        });
    });

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let engine = ParallelEngine::new(
                        &cfg,
                        FitnessMode::Simulated,
                        ThreadConfig::with_threads(threads),
                    )
                    .unwrap();
                    black_box(engine.compute_fitness(&population, 0).unwrap())
                });
            },
        );
    }
    group.finish();
}

/// Grouped (SSet-level) vs work-plan (agent-level) decomposition: the benefit
/// of the paper's SSet abstraction for deterministic strategies.
fn bench_decomposition_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition_ablation");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let cfg = config(64, MemoryDepth::ONE);
    let population = cfg.initial_population().unwrap();
    let plan = WorkPlan::for_population(&population);

    group.bench_function("grouped_ssets", |bench| {
        bench.iter(|| {
            let engine =
                ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(4))
                    .unwrap();
            black_box(engine.compute_fitness(&population, 0).unwrap())
        });
    });
    group.bench_function("agent_level_workplan", |bench| {
        bench.iter(|| {
            let engine =
                ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(4))
                    .unwrap();
            black_box(
                engine
                    .compute_fitness_via_plan(&population, &plan, 0)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

/// Full short simulations end to end (including population dynamics).
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_generations");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for memory in [MemoryDepth::ONE, MemoryDepth::THREE] {
        let cfg = SimulationConfig::builder()
            .memory(memory)
            .num_ssets(32)
            .agents_per_sset(2)
            .rounds_per_game(200)
            .generations(50)
            .seed(23)
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("sequential_50_generations", memory.steps()),
            &cfg,
            |bench, cfg| {
                bench.iter(|| {
                    let mut sim = Simulation::new(cfg.clone()).unwrap();
                    black_box(sim.run())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generation_threads,
    bench_decomposition_ablation,
    bench_end_to_end
);
criterion_main!(benches);
