//! Seeded, serialisable fault schedules.

use serde::{Deserialize, Serialize};

/// One scheduled fault. Ranks and generations refer to the world the plan is
/// armed against; message ordinals count sends on one `(from, to)` channel in
/// the sender's program order, which is deterministic regardless of pool size
/// or scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The rank's task fails at the start of the given generation — the
    /// injected analogue of a node crash at a bulk-synchronous boundary.
    CrashAtGeneration {
        /// Rank that crashes.
        rank: usize,
        /// Generation boundary at which it crashes.
        generation: u64,
    },
    /// The `nth` message (0-based) from `from` to `to` is silently dropped.
    /// Dropping a protocol message strands its receiver, which the deadlock
    /// detector converts into a detected stall — a *transient* fault for the
    /// supervisor.
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based ordinal of the message on the `(from, to)` channel.
        nth: u64,
    },
    /// The `nth` message from `from` to `to` is held back until `held_for`
    /// further messages (world-wide) have been delivered, then released.
    /// Per-channel FIFO order is preserved: later messages on the same
    /// channel queue behind the held one instead of overtaking it.
    DelayMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 0-based ordinal of the message on the `(from, to)` channel.
        nth: u64,
        /// How many subsequent deliveries the message is held across.
        held_for: u64,
    },
    /// The rank yields `yields` extra times at the start of the generation —
    /// a slow rank that perturbs scheduling without corrupting state.
    SlowRank {
        /// Rank that stalls.
        rank: usize,
        /// Generation at which it stalls.
        generation: u64,
        /// Number of extra cooperative yields.
        yields: u32,
    },
}

impl FaultEvent {
    /// The rank a crash or stall targets, if this is a rank-scoped event.
    pub fn target_rank(&self) -> Option<usize> {
        match self {
            FaultEvent::CrashAtGeneration { rank, .. } | FaultEvent::SlowRank { rank, .. } => {
                Some(*rank)
            }
            _ => None,
        }
    }

    /// Short machine-readable kind name, used in reports and span payloads.
    pub fn kind_label(&self) -> &'static str {
        match self {
            FaultEvent::CrashAtGeneration { .. } => "crash",
            FaultEvent::DropMessage { .. } => "drop",
            FaultEvent::DelayMessage { .. } => "delay",
            FaultEvent::SlowRank { .. } => "slow",
        }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::CrashAtGeneration { rank, generation } => {
                write!(f, "crash(rank={rank}, generation={generation})")
            }
            FaultEvent::DropMessage { from, to, nth } => {
                write!(f, "drop(from={from}, to={to}, nth={nth})")
            }
            FaultEvent::DelayMessage {
                from,
                to,
                nth,
                held_for,
            } => write!(f, "delay(from={from}, to={to}, nth={nth}, held={held_for})"),
            FaultEvent::SlowRank {
                rank,
                generation,
                yields,
            } => write!(
                f,
                "slow(rank={rank}, generation={generation}, yields={yields})"
            ),
        }
    }
}

/// A seeded schedule of faults. Event indices double as stable event ids in
/// reports and on the observability timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-written plans). Recorded
    /// so a chaos failure can name the exact plan that produced it.
    pub seed: u64,
    /// The scheduled events; the index of an event is its id.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with a seed label.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends an event, returning `self` for chaining.
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Generates a random plan inside the survivable envelope of a world of
    /// `ranks` ranks running `generations` generations: every event targets a
    /// live rank and a reachable generation, and fires at most once, so a
    /// checkpointing supervisor always makes progress past it.
    ///
    /// The generator is a self-contained splitmix64 walk over `seed`, so the
    /// same seed always yields the same plan.
    pub fn random(seed: u64, ranks: usize, generations: u64, num_events: usize) -> Self {
        let mut state = seed ^ 0x6A09_E667_F3BC_C908;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut events = Vec::with_capacity(num_events);
        for _ in 0..num_events {
            let rank = (next() as usize) % ranks.max(1);
            let generation = next() % generations.max(1);
            let event = match next() % 4 {
                0 => FaultEvent::CrashAtGeneration { rank, generation },
                1 => FaultEvent::DropMessage {
                    from: rank,
                    to: (next() as usize) % ranks.max(1),
                    // Early ordinals so drops land on traffic that actually
                    // occurs; later ordinals would be silent no-ops.
                    nth: next() % (generations.max(1) * 2),
                },
                2 => FaultEvent::DelayMessage {
                    from: rank,
                    to: (next() as usize) % ranks.max(1),
                    nth: next() % (generations.max(1) * 2),
                    held_for: 1 + next() % 8,
                },
                _ => FaultEvent::SlowRank {
                    rank,
                    generation,
                    yields: 1 + (next() % 16) as u32,
                },
            };
            events.push(event);
        }
        FaultPlan { seed, events }
    }

    /// Number of crash events in the plan.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::CrashAtGeneration { .. }))
            .count()
    }

    /// A bound on the attempts a supervisor needs: one per event that can
    /// fail an attempt (crashes and drops), plus the fault-free final pass.
    pub fn survivable_attempts(&self) -> u32 {
        let disruptive = self
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    FaultEvent::CrashAtGeneration { .. }
                        | FaultEvent::DropMessage { .. }
                        | FaultEvent::DelayMessage { .. }
                )
            })
            .count() as u32;
        disruptive + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_in_envelope() {
        let a = FaultPlan::random(42, 8, 10, 12);
        let b = FaultPlan::random(42, 8, 10, 12);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 12);
        for event in &a.events {
            match *event {
                FaultEvent::CrashAtGeneration { rank, generation }
                | FaultEvent::SlowRank {
                    rank, generation, ..
                } => {
                    assert!(rank < 8);
                    assert!(generation < 10);
                }
                FaultEvent::DropMessage { from, to, .. } => {
                    assert!(from < 8 && to < 8);
                }
                FaultEvent::DelayMessage {
                    from, to, held_for, ..
                } => {
                    assert!(from < 8 && to < 8);
                    assert!(held_for >= 1);
                }
            }
        }
        assert_ne!(FaultPlan::random(43, 8, 10, 12), a);
    }

    #[test]
    fn survivable_attempts_counts_disruptive_events() {
        let plan = FaultPlan::new(0)
            .with(FaultEvent::CrashAtGeneration {
                rank: 1,
                generation: 2,
            })
            .with(FaultEvent::SlowRank {
                rank: 0,
                generation: 1,
                yields: 3,
            })
            .with(FaultEvent::DropMessage {
                from: 0,
                to: 1,
                nth: 0,
            });
        assert_eq!(plan.crash_count(), 1);
        assert_eq!(plan.survivable_attempts(), 3);
    }

    #[test]
    fn plans_round_trip_through_serde() {
        let plan = FaultPlan::random(7, 16, 20, 6);
        let bytes = serde_json::to_vec(&plan).unwrap();
        let back: FaultPlan = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn event_display_names_parameters() {
        let e = FaultEvent::DelayMessage {
            from: 1,
            to: 2,
            nth: 3,
            held_for: 4,
        };
        assert_eq!(e.to_string(), "delay(from=1, to=2, nth=3, held=4)");
        assert_eq!(e.kind_label(), "delay");
        assert_eq!(e.target_rank(), None);
        let c = FaultEvent::CrashAtGeneration {
            rank: 5,
            generation: 6,
        };
        assert_eq!(c.target_rank(), Some(5));
    }
}
