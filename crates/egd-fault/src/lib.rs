//! Deterministic fault injection and checkpoint stores for the simulated
//! cluster.
//!
//! The paper's target machines operate at rank counts where component failure
//! is an expected condition, not an exception. This crate supplies the three
//! ingredients the cluster layer needs to *test* that regime reproducibly:
//!
//! * [`FaultPlan`] — a seeded, serialisable schedule of faults (rank crashes
//!   at generation boundaries, message drops, message delays, slow-rank
//!   stalls). A plan is a schedule over the *run's history*, not per attempt:
//!   every event fires at most once, so a supervisor that replays from a
//!   checkpoint makes progress past the fault deterministically.
//! * the injection switch ([`arm`] / [`injection_armed`]) — off by default
//!   with a single-relaxed-load fast path, mirroring `egd-obs`'s tracing
//!   switch, so production transports pay one predictable branch.
//! * [`CheckpointStore`] — the byte-oriented snapshot store (in-memory and
//!   on-disk backends) behind generation-granular checkpoint/restart.
//!
//! The crate is deliberately transport-agnostic: it never sees a packet or a
//! rank task, only `(from, to)` message ordinals and `(rank, generation)`
//! boundaries that the cluster layer reports. That keeps it at the bottom of
//! the dependency graph, next to `egd-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod plan;
pub mod switch;

pub use checkpoint::{CheckpointStore, DirStore, MemoryStore};
pub use plan::{FaultEvent, FaultPlan};
pub use switch::{
    arm, crash_fault, fired_count, fired_events, injection_armed, injection_report, message_fate,
    note_stale_rejected, slow_fault, FiredFault, InjectionReport, InjectionSession, MessageFate,
};
